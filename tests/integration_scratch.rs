//! Per-edge hot-path scratch reuse: equivalence and allocation regression.
//!
//! The tentpole contract is that scratch reuse is *invisible*: threading
//! warm [`sp_iso::SearchScratch`] buffers, registry-owned search caches and
//! recycled match-store buckets through the pipeline must not change the
//! reported `(query, match)` multiset for any strategy or worker count.
//! The feature-gated test at the bottom pins the point of the exercise:
//! with reuse on, the steady-state per-edge path stops allocating.

use sp_datasets::NetflowConfig;
use sp_query::QueryGraph;
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{
    FnSink, QueryId, Schema, Strategy, StrategySpec, StreamProcessor, SubgraphMatch,
};

/// Worker counts under test: `RUNTIME_WORKERS` (e.g. `2` or `1,2,4`) or the
/// default sweep, mirroring `integration_parallel.rs`.
fn worker_counts() -> Vec<usize> {
    match std::env::var("RUNTIME_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad RUNTIME_WORKERS entry '{p}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// An overlapping netflow rule pack (identical chains, a proper-prefix
/// overlap, disjoint rules) so the reuse paths in all three pipeline stages
/// — shared join tables, the shared leaf cache and private engines — run
/// against warm buffers.
fn pack(schema: &Schema) -> Vec<(QueryGraph, Option<u64>)> {
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, schema.edge_type(p).unwrap());
            prev = next;
        }
        q
    };
    vec![
        (chain("exfil", &["TCP", "ESP"]), Some(5_000)),
        (chain("exfil-wide", &["TCP", "ESP"]), None),
        (chain("bounce", &["TCP", "ESP", "TCP"]), Some(5_000)),
        (chain("scan", &["ICMP", "TCP"]), Some(2_000)),
        (chain("relay", &["TCP", "TCP"]), Some(1_000)),
    ]
}

/// Sorted `(query slot, match fingerprint)` multiset of a full run.
fn multiset_of<F>(mut process_all: F) -> Vec<(usize, String)>
where
    F: FnMut(&mut dyn FnMut(usize, SubgraphMatch)),
{
    let mut out = Vec::new();
    process_all(&mut |slot, m| {
        out.push((slot, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    out.sort();
    out
}

#[test]
fn scratch_reuse_is_semantics_preserving_across_strategies() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    let specs: [StrategySpec; 5] = [
        Strategy::Single.into(),
        Strategy::SingleLazy.into(),
        Strategy::Path.into(),
        Strategy::PathLazy.into(),
        StrategySpec::Auto,
    ];
    for spec in specs {
        let run = |scratch_reuse: bool, interning: bool| {
            let mut proc = StreamProcessor::new(schema.clone())
                .with_estimator(estimator.clone())
                .with_statistics(false)
                .with_scratch_reuse(scratch_reuse)
                .with_match_interning(interning);
            let ids: Vec<QueryId> = rules
                .iter()
                .map(|(q, w)| proc.register(q.clone(), spec, *w).unwrap())
                .collect();
            multiset_of(|emit| {
                let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                    emit(ids.iter().position(|&i| i == q).unwrap(), m);
                });
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            })
        };
        let reused = run(true, true);
        let released = run(false, true);
        let materialized = run(true, false);
        assert!(
            !reused.is_empty(),
            "workload found no matches under {spec:?}"
        );
        assert_eq!(
            reused, released,
            "scratch reuse changed the multiset under {spec:?}"
        );
        assert_eq!(
            reused, materialized,
            "interned match rows changed the multiset under {spec:?}"
        );

        // Pre-sharing architecture: one independent single-query processor
        // per rule, with every reuse and sharing stage disabled.
        let independent = multiset_of(|emit| {
            for (slot, (q, w)) in rules.iter().enumerate() {
                let mut proc = StreamProcessor::new(schema.clone())
                    .with_estimator(estimator.clone())
                    .with_statistics(false)
                    .with_sharing(false)
                    .with_join_sharing(false)
                    .with_scratch_reuse(false)
                    .with_match_interning(false);
                proc.register(q.clone(), spec, *w).unwrap();
                let mut sink = FnSink(|_q: QueryId, m: SubgraphMatch| emit(slot, m));
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            }
        });
        assert_eq!(
            reused, independent,
            "warm scratch diverges from independent processors under {spec:?}"
        );
    }
}

#[test]
fn scratch_reuse_matches_parallel_runtime_across_worker_counts() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    // Sequential reference with per-edge scratch release and materialized
    // matches (the conservative configuration), against the parallel
    // runtime's always-warm workers storing interned rows — so every worker
    // count is also a cross-representation parity check.
    let mut seq = StreamProcessor::new(schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false)
        .with_scratch_reuse(false)
        .with_match_interning(false);
    let seq_ids: Vec<QueryId> = rules
        .iter()
        .map(|(q, w)| seq.register(q.clone(), Strategy::SingleLazy, *w).unwrap())
        .collect();
    let expected = multiset_of(|emit| {
        let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
            emit(seq_ids.iter().position(|&i| i == q).unwrap(), m);
        });
        for ev in dataset.events() {
            seq.process_into(ev, &mut sink);
        }
    });

    for workers in worker_counts() {
        let mut runtime = ParallelStreamProcessor::new(
            schema.clone(),
            RuntimeConfig::with_workers(workers).statistics(false),
        )
        .with_estimator(estimator.clone());
        let ids: Vec<QueryId> = rules
            .iter()
            .map(|(q, w)| {
                runtime
                    .register(q.clone(), Strategy::SingleLazy, *w)
                    .unwrap()
            })
            .collect();
        let got = multiset_of(|emit| {
            let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                emit(ids.iter().position(|&i| i == q).unwrap(), m);
            });
            runtime.process_all_into(dataset.events().iter(), &mut sink);
        });
        assert_eq!(got, expected, "multiset diverged at {workers} workers");
    }
}

/// Steady-state allocation regression, only meaningful under the counting
/// global allocator (`--features count-allocs`). Two claims:
///
/// 1. **The per-edge machinery is allocation-free.** A cyber stream whose
///    steady-state slice is all gated-leaf traffic (esp edges in a region
///    no tcp partial ever touched, under Lazy Search) drives the full
///    dispatch path — ingest, candidate lookup, shared-leaf fan-out, lazy
///    gate — without materializing new matches or partials. After warmup
///    that slice must average (almost) zero allocations per edge; the
///    residue is amortized container growth, not per-edge churn.
/// 2. **Reuse also wins when matches flow.** On a match-heavy netflow
///    workload (where per-match materialization is irreducible), warm
///    scratch must still allocate measurably less than the conservative
///    per-edge-release configuration.
#[cfg(feature = "count-allocs")]
mod alloc_regression {
    use super::*;
    use sp_graph::{EdgeEvent, Timestamp};

    fn cyber_schema() -> Schema {
        let mut schema = Schema::new();
        schema.intern_vertex_type("ip");
        schema.intern_edge_type("tcp");
        schema.intern_edge_type("esp");
        schema
    }

    #[test]
    fn gated_steady_state_is_allocation_free() {
        let schema = cyber_schema();
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();

        // tcp -> esp chain under Lazy Search: the tcp leaf is primary, the
        // esp leaf is gated per vertex and only enabled where a tcp partial
        // lands. Region A (hosts 0..40) sees completions during warmup;
        // region B (hosts 100..140) sees esp traffic only, so its gate
        // never opens.
        let mut q = sp_query::QueryGraph::new("exfil");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(b, c, esp);

        // A purge cadence well inside the window keeps the retained graph
        // (and thus every container's high-water mark) bounded, so warmup
        // actually reaches a steady state instead of growing forever.
        let mut proc = StreamProcessor::new(schema.clone())
            .with_statistics(false)
            .with_purge_interval(512);
        proc.register(q, Strategy::SingleLazy, Some(1_000)).unwrap();

        let warm = 8_000u64;
        let metered = 4_000u64;
        let mut sink = streampattern::CountSink::new();
        // `j` is the per-region sequence number (drives the host walk and
        // the tcp/esp mix), `i` the global one (drives the clock).
        let event = |i: u64, j: u64, region_b: bool| {
            let (base, span, t) = if region_b {
                (100, 40, esp)
            } else {
                (0, 40, if j % 4 == 0 { tcp } else { esp })
            };
            let src = base + j % span;
            let dst = base + (j + 1) % span;
            EdgeEvent::homogeneous(src, dst, ip, t, Timestamp(i))
        };
        for i in 0..warm {
            proc.process_into(&event(i, i / 2, i % 2 == 0), &mut sink);
        }
        assert!(sink.matches > 0, "warmup produced no matches");
        let warm_matches = sink.matches;

        let (a0, b0) = sp_metrics::alloc_counts();
        for i in warm..warm + metered {
            proc.process_into(&event(i, warm / 2 + (i - warm), true), &mut sink);
        }
        let (a1, b1) = sp_metrics::alloc_counts();
        assert_eq!(sink.matches, warm_matches, "gated slice completed a match");
        let allocs_per_edge = (a1 - a0) as f64 / metered as f64;
        let bytes_per_edge = (b1 - b0) as f64 / metered as f64;
        println!(
            "gated steady state: {allocs_per_edge:.4} allocs/edge, {bytes_per_edge:.1} bytes/edge"
        );
        assert!(
            allocs_per_edge < 0.1,
            "gated steady-state path allocates per edge: {allocs_per_edge:.4} allocs/edge"
        );
    }

    /// The shared-join delivery path is allocation-light even when every
    /// edge cycle reports matches through the trie: prefix-root emissions
    /// ride the recycled feed-buffer pool, rebases stay inline
    /// (`MATCH_INLINE_BINDINGS`), and store buckets recycle through the
    /// purge — so a match-heavy nested-prefix stream settles near zero
    /// allocations per edge after warmup.
    #[test]
    fn shared_join_match_delivery_is_allocation_light() {
        let schema = cyber_schema();
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();

        let chain = |name: &str, types: &[sp_graph::EdgeType]| {
            let mut q = sp_query::QueryGraph::new(name);
            let mut prev = q.add_any_vertex();
            for &t in types {
                let next = q.add_any_vertex();
                q.add_edge(prev, next, t);
                prev = next;
            }
            q
        };
        let mut proc = StreamProcessor::new(schema.clone())
            .with_statistics(false)
            .with_purge_interval(512);
        // Two [tcp,esp] subscribers on the parent node, two [tcp,esp,tcp]
        // subscribers on its trie child: every completed cycle reports four
        // matches, two of them through the parent-feed path.
        for name in ["exfil-a", "exfil-b"] {
            proc.register(chain(name, &[tcp, esp]), Strategy::SingleLazy, Some(300))
                .unwrap();
        }
        for name in ["bounce-a", "bounce-b"] {
            proc.register(
                chain(name, &[tcp, esp, tcp]),
                Strategy::SingleLazy,
                Some(300),
            )
            .unwrap();
        }
        assert_eq!(proc.shared_join_stats().tables, 2);
        assert_eq!(proc.shared_join_stats().max_depth, 3);

        // Disjoint 4-host chains from a rotating pool; the 300-tick window
        // expires a group's edges well before its hosts are reused (every
        // 384 ticks), so state and match fan-out stay bounded.
        let mut sink = streampattern::CountSink::new();
        let mut run = |cycles: std::ops::Range<u64>, sink: &mut streampattern::CountSink| {
            for c in cycles {
                let b = (c % 128) * 4;
                let t = 3 * c;
                proc.process_into(
                    &EdgeEvent::homogeneous(b, b + 1, ip, tcp, Timestamp(t)),
                    sink,
                );
                proc.process_into(
                    &EdgeEvent::homogeneous(b + 1, b + 2, ip, esp, Timestamp(t + 1)),
                    sink,
                );
                proc.process_into(
                    &EdgeEvent::homogeneous(b + 2, b + 3, ip, tcp, Timestamp(t + 2)),
                    sink,
                );
            }
        };
        run(0..3_000, &mut sink);
        let warm_matches = sink.matches;
        assert!(warm_matches > 0, "warmup produced no matches");

        let metered = 1_500u64;
        let (a0, _) = sp_metrics::alloc_counts();
        run(3_000..3_000 + metered, &mut sink);
        let (a1, _) = sp_metrics::alloc_counts();
        let delivered = sink.matches - warm_matches;
        assert_eq!(
            delivered,
            4 * metered,
            "each metered cycle must deliver all four subscribers' matches"
        );
        let allocs_per_edge = (a1 - a0) as f64 / (3 * metered) as f64;
        let allocs_per_match = (a1 - a0) as f64 / delivered as f64;
        println!(
            "shared-join match delivery: {allocs_per_edge:.4} allocs/edge, \
             {allocs_per_match:.4} allocs/match"
        );
        assert!(
            allocs_per_match < 0.5,
            "match delivery through the trie allocates: {allocs_per_match:.4} allocs/match"
        );
    }

    /// The interned-row contract on the spill regime: storing a partial
    /// match wider than `MATCH_INLINE_BINDINGS` must not touch the
    /// allocator in steady state. A 9-edge chain over nine distinct
    /// protocols (9 edge + 10 vertex bindings when full; every partial from
    /// depth 4 onward spills the inline capacity) is driven by a ring walk
    /// whose type sequence cycles `p0..p7, keepalive` — the ninth protocol
    /// `p8` never arrives, so the metered slice stores deep spilled
    /// partials without ever completing a match, isolating the storage
    /// path from copy-on-emit materialization. The ring keeps every vertex
    /// permanently live (no REMOVE-SUBGRAPH vertex eviction/re-creation
    /// noise) and the join keys recurrent, so arena rows, buckets and
    /// adjacency lists all recycle. With interning on, the slice must
    /// average <0.1 allocations per stored match; the materialized
    /// reference path, which heap-allocates each spilled binding map, must
    /// allocate strictly more.
    #[test]
    fn interned_wide_pattern_storage_is_allocation_free_per_stored_match() {
        // Nine *distinct* protocols so each stream edge matches exactly one
        // leaf shape — the stored-match population is then dominated by the
        // deep (spilled) internal partials the test is about, not by
        // shallow leaf inserts.
        let mut schema = Schema::new();
        schema.intern_vertex_type("ip");
        let types: Vec<sp_graph::EdgeType> = (0..9)
            .map(|i| schema.intern_edge_type(&format!("p{i}")))
            .collect();
        let keepalive = schema.intern_edge_type("keepalive");
        let ip = schema.vertex_type("ip").unwrap();

        let mut wide = sp_query::QueryGraph::new("wide-lateral");
        let mut prev = wide.add_any_vertex();
        for &t in &types {
            let next = wide.add_any_vertex();
            wide.add_edge(prev, next, t);
            prev = next;
        }

        // 64-host ring, one edge per tick: host h is touched every 64 ticks,
        // well inside the 150-tick window, so no vertex ever drops to degree
        // zero. A (ring position, protocol) pair recurs every
        // lcm(64, 9) = 576 ticks — far outside the window — so each partial
        // chain has exactly one live extension and match multiplicity stays
        // bounded.
        const HOSTS: u64 = 64;
        let metered = |interning: bool| -> (f64, u64) {
            let mut proc = StreamProcessor::new(schema.clone())
                .with_statistics(false)
                .with_purge_interval(256)
                .with_match_interning(interning);
            proc.register(wide.clone(), Strategy::Single, Some(150))
                .unwrap();
            let mut sink = streampattern::CountSink::new();
            let run = |proc: &mut StreamProcessor,
                       ticks: std::ops::Range<u64>,
                       sink: &mut streampattern::CountSink| {
                for t in ticks {
                    let ty = match (t % 9) as usize {
                        8 => keepalive, // the chain's ninth edge never arrives
                        k => types[k],
                    };
                    proc.process_into(
                        &EdgeEvent::homogeneous(t % HOSTS, (t + 1) % HOSTS, ip, ty, Timestamp(t)),
                        sink,
                    );
                }
            };
            run(&mut proc, 0..16_000, &mut sink);
            let s0 = proc.stored_matches();
            let (a0, _) = sp_metrics::alloc_counts();
            run(&mut proc, 16_000..24_000, &mut sink);
            let (a1, _) = sp_metrics::alloc_counts();
            let s1 = proc.stored_matches();
            assert_eq!(
                sink.matches, 0,
                "the p0..p7 runs must never complete the 9-edge chain"
            );
            let stored = s1 - s0;
            assert!(stored > 0, "metered slice stored no partial matches");
            ((a1 - a0) as f64 / stored as f64, stored)
        };

        let (interned, stored_on) = metered(true);
        let (materialized, stored_off) = metered(false);
        assert_eq!(
            stored_on, stored_off,
            "interning changed how many partials were stored"
        );
        println!(
            "wide-pattern steady state ({stored_on} partials stored): \
             interned {interned:.4} vs materialized {materialized:.4} allocs/stored match"
        );
        assert!(
            interned < 0.1,
            "interned wide-row storage allocates in steady state: \
             {interned:.4} allocs/stored match"
        );
        assert!(
            interned < materialized,
            "interned storage must allocate strictly less than the materialized \
             reference path ({interned:.4} >= {materialized:.4})"
        );
    }

    #[test]
    fn scratch_reuse_reduces_allocations_on_a_match_heavy_stream() {
        let dataset = NetflowConfig {
            num_hosts: 300,
            num_edges: 6_000,
            ..NetflowConfig::tiny()
        }
        .generate();
        let schema = dataset.schema.clone();
        let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
        let rules = pack(&schema);

        let metered = |scratch_reuse: bool| -> f64 {
            let mut proc = StreamProcessor::new(schema.clone())
                .with_estimator(estimator.clone())
                .with_statistics(false)
                .with_scratch_reuse(scratch_reuse);
            for (q, w) in &rules {
                proc.register(q.clone(), Strategy::SingleLazy, *w).unwrap();
            }
            let events = dataset.events();
            let warm = events.len() / 2;
            let mut sink = streampattern::CountSink::new();
            for ev in &events[..warm] {
                proc.process_into(ev, &mut sink);
            }
            let (a0, _) = sp_metrics::alloc_counts();
            for ev in &events[warm..] {
                proc.process_into(ev, &mut sink);
            }
            let (a1, _) = sp_metrics::alloc_counts();
            assert!(sink.matches > 0, "workload found no matches");
            (a1 - a0) as f64 / (events.len() - warm) as f64
        };

        let warm_allocs = metered(true);
        let cold_allocs = metered(false);
        println!("allocs/edge: warm scratch {warm_allocs:.3}, per-edge release {cold_allocs:.3}");
        assert!(
            warm_allocs < cold_allocs * 0.9,
            "scratch reuse no longer reduces steady-state allocator traffic: \
             warm {warm_allocs:.3} vs released {cold_allocs:.3} allocs/edge"
        );
    }
}
