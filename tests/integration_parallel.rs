//! Cross-crate integration: the parallel runtime against generated dataset
//! streams, asserting exact match-multiset equivalence with the sequential
//! processor for every worker count.
//!
//! The worker counts default to `1, 2, 4`; CI overrides them through the
//! `RUNTIME_WORKERS` environment variable (a single count or a
//! comma-separated list).

use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{FnSink, QueryId, Strategy, StreamProcessor, SubgraphMatch};

/// Worker counts under test: `RUNTIME_WORKERS` (e.g. `2` or `1,2,4`) or the
/// default sweep.
fn worker_counts() -> Vec<usize> {
    match std::env::var("RUNTIME_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad RUNTIME_WORKERS entry '{p}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

#[test]
fn netflow_multi_query_equivalence_across_worker_counts() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 4_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 47);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 3 }, 6, &estimator);
    assert!(queries.len() >= 3, "generator produced too few queries");

    // Sequential reference: full (query, match) multiset.
    let mut seq = StreamProcessor::new(dataset.schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    for q in &queries {
        seq.register(q.clone(), Strategy::SingleLazy, Some(5_000))
            .unwrap();
    }
    let mut expected: Vec<(QueryId, String)> = Vec::new();
    let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
        expected.push((q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    for ev in dataset.events() {
        seq.process_into(ev, &mut sink);
    }
    expected.sort();
    assert!(!expected.is_empty(), "workload produced no matches");

    for workers in worker_counts() {
        let mut runtime = ParallelStreamProcessor::new(
            dataset.schema.clone(),
            RuntimeConfig::with_workers(workers).statistics(false),
        )
        .with_estimator(estimator.clone());
        for q in &queries {
            runtime
                .register(q.clone(), Strategy::SingleLazy, Some(5_000))
                .unwrap();
        }
        let mut got: Vec<(QueryId, String)> = Vec::new();
        let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
            got.push((q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
        });
        runtime.process_all_into(dataset.events().iter(), &mut sink);
        got.sort();
        assert_eq!(
            got.len(),
            expected.len(),
            "match count diverged at {workers} workers"
        );
        assert_eq!(
            got, expected,
            "match multiset diverged at {workers} workers"
        );
    }
}

#[test]
fn auto_strategy_registration_matches_sequential_choice() {
    // `StrategySpec::Auto` consults the ingest-path statistics; the facade
    // maintains them exactly like the sequential processor does, so both
    // must pick the same strategy for a query registered mid-stream.
    let dataset = NetflowConfig {
        num_hosts: 200,
        num_edges: 2_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 1234);
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 3, &estimator);
    assert!(!queries.is_empty());
    let (prefix, suffix) = dataset.events().split_at(dataset.len() / 2);

    let mut seq = StreamProcessor::new(dataset.schema.clone());
    seq.process_all(prefix.iter());
    let mut runtime =
        ParallelStreamProcessor::new(dataset.schema.clone(), RuntimeConfig::with_workers(2));
    runtime.process_all(prefix.iter());

    for q in &queries {
        let seq_id = seq
            .register(q.clone(), streampattern::StrategySpec::Auto, None)
            .unwrap();
        let par_id = runtime
            .register(q.clone(), streampattern::StrategySpec::Auto, None)
            .unwrap();
        assert_eq!(seq_id, par_id, "id assignment diverged");
    }
    let seq_found = seq.process_all(suffix.iter());
    let par_found = runtime.process_all(suffix.iter());
    assert_eq!(seq_found, par_found, "post-registration matches diverged");
}
