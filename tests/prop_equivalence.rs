//! Randomized equivalence tests: on arbitrary small streams and arbitrary
//! path queries, every strategy — including the non-incremental VF2 baseline
//! — must report exactly the same set of matches, and the lazy variants must
//! never do more isomorphism work than their eager counterparts.
//!
//! The workspace builds offline, so instead of `proptest` these tests draw
//! scenarios from a seeded PRNG; failures print the scenario so a case can
//! be replayed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{EdgeEvent, EdgeType, Schema, Timestamp, VertexType};
use sp_query::QueryGraph;
use std::collections::HashSet;
use streampattern::{ContinuousQueryEngine, SelectivityEstimator, Strategy, StreamProcessor};

const NUM_EDGE_TYPES: u32 = 3;
const NUM_VERTICES: u64 = 10;
const CASES: u64 = 48;

#[derive(Debug, Clone)]
struct Scenario {
    stream: Vec<(u64, u64, u32)>,
    query_types: Vec<u32>,
    window: Option<u64>,
}

fn random_scenario(rng: &mut SmallRng) -> Scenario {
    let len = rng.gen_range(1usize..120);
    let stream = (0..len)
        .map(|_| {
            (
                rng.gen_range(0..NUM_VERTICES),
                rng.gen_range(0..NUM_VERTICES),
                rng.gen_range(0..NUM_EDGE_TYPES),
            )
        })
        .collect();
    let query_len = rng.gen_range(1usize..4);
    let query_types = (0..query_len)
        .map(|_| rng.gen_range(0..NUM_EDGE_TYPES))
        .collect();
    let window = if rng.gen_bool(0.5) {
        Some(rng.gen_range(5u64..200))
    } else {
        None
    };
    Scenario {
        stream,
        query_types,
        window,
    }
}

fn scenarios() -> impl Iterator<Item = Scenario> {
    (0..CASES).map(|seed| {
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ seed);
        random_scenario(&mut rng)
    })
}

fn build_schema() -> (Schema, VertexType, Vec<EdgeType>) {
    let mut schema = Schema::new();
    let vt = schema.intern_vertex_type("v");
    let types = (0..NUM_EDGE_TYPES)
        .map(|i| schema.intern_edge_type(&format!("t{i}")))
        .collect();
    (schema, vt, types)
}

fn build_query(types: &[EdgeType], query_types: &[u32]) -> QueryGraph {
    let mut q = QueryGraph::new("prop-path");
    let mut prev = q.add_any_vertex();
    for &t in query_types {
        let next = q.add_any_vertex();
        q.add_edge(prev, next, types[t as usize]);
        prev = next;
    }
    q
}

/// Runs one strategy over the scenario; returns the canonical match set and
/// the number of isomorphism searches performed.
fn run(scenario: &Scenario, strategy: Strategy) -> (HashSet<Vec<(usize, u64)>>, u64) {
    let (schema, vt, types) = build_schema();
    let query = build_query(&types, &scenario.query_types);
    // The estimator sees the whole stream up front (the paper collects
    // statistics from a prefix; for equivalence any statistics are valid).
    let mut estimator = SelectivityEstimator::new();
    for (i, &(s, d, t)) in scenario.stream.iter().enumerate() {
        estimator.observe_edge(&sp_graph::EdgeData {
            id: sp_graph::EdgeId(i as u64),
            src: sp_graph::VertexId(s),
            dst: sp_graph::VertexId(d),
            edge_type: types[t as usize],
            timestamp: Timestamp(i as u64),
        });
    }
    let engine = ContinuousQueryEngine::new(query, strategy, &estimator, scenario.window)
        .expect("engine builds");
    let mut proc = StreamProcessor::with_engine(schema, engine)
        .with_purge_interval(16)
        .with_statistics(false);
    let mut found = HashSet::new();
    for (i, &(s, d, t)) in scenario.stream.iter().enumerate() {
        if s == d {
            continue; // self-loops are legal but uninteresting here
        }
        let ev = EdgeEvent::homogeneous(s, d, vt, types[t as usize], Timestamp(i as u64));
        for (_, m) in proc.process(&ev) {
            let key: Vec<(usize, u64)> = m.edge_pairs().map(|(q, e)| (q.0, e.0)).collect();
            found.insert(key);
        }
    }
    (found, proc.profile().iso_searches)
}

/// Single, SingleLazy, Path, PathLazy and the VF2 baseline agree on every
/// randomly generated stream/query/window combination.
#[test]
fn all_strategies_report_identical_match_sets() {
    for scenario in scenarios() {
        let (reference, _) = run(&scenario, Strategy::Vf2Baseline);
        for strategy in Strategy::SJ_TREE {
            let (found, _) = run(&scenario, strategy);
            assert_eq!(
                found,
                reference,
                "{strategy} disagrees with VF2 ({} vs {} matches) on {scenario:?}",
                found.len(),
                reference.len()
            );
        }
    }
}

/// The lazy variants never perform more leaf searches than their eager
/// counterparts.
#[test]
fn lazy_never_searches_more_than_eager() {
    for scenario in scenarios() {
        let (_, eager_single) = run(&scenario, Strategy::Single);
        let (_, lazy_single) = run(&scenario, Strategy::SingleLazy);
        assert!(lazy_single <= eager_single, "scenario: {scenario:?}");
        let (_, eager_path) = run(&scenario, Strategy::Path);
        let (_, lazy_path) = run(&scenario, Strategy::PathLazy);
        assert!(lazy_path <= eager_path, "scenario: {scenario:?}");
    }
}

/// Every reported match respects the time window.
#[test]
fn reported_matches_respect_the_window() {
    for scenario in scenarios() {
        let Some(w) = scenario.window else {
            continue;
        };
        let (schema, vt, types) = build_schema();
        let query = build_query(&types, &scenario.query_types);
        let estimator = SelectivityEstimator::new();
        let engine = ContinuousQueryEngine::new(query, Strategy::PathLazy, &estimator, Some(w))
            .expect("engine builds");
        let mut proc = StreamProcessor::with_engine(schema, engine)
            .with_purge_interval(8)
            .with_statistics(false);
        for (i, &(s, d, t)) in scenario.stream.iter().enumerate() {
            if s == d {
                continue;
            }
            let ev = EdgeEvent::homogeneous(s, d, vt, types[t as usize], Timestamp(i as u64));
            for (_, m) in proc.process(&ev) {
                assert!(
                    m.duration() < w,
                    "match spans {} >= window {w}; scenario: {scenario:?}",
                    m.duration()
                );
            }
        }
    }
}
