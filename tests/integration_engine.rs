//! End-to-end integration tests: generated streams, injected patterns,
//! cyclic queries and persisted decompositions.

use sp_datasets::{LsbenchConfig, NetflowConfig};
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use streampattern::{ContinuousQueryEngine, Schema, Strategy, StreamProcessor};

/// Builds the Figure-1c exfiltration query over the netflow schema.
fn exfiltration_query(schema: &Schema) -> QueryGraph {
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let gre = schema.edge_type("GRE").unwrap();
    let mut q = QueryGraph::new("exfiltration");
    let attacker = q.add_vertex(ip);
    let victim = q.add_vertex(ip);
    let c2 = q.add_vertex(ip);
    let sink = q.add_vertex(ip);
    q.add_edge(attacker, victim, tcp);
    q.add_edge(victim, c2, esp);
    q.add_edge(c2, sink, gre);
    q
}

/// Injects `count` instances of the exfiltration pattern into a copy of the
/// stream, using host ids far outside the generator's range.
fn inject_attacks(events: &mut Vec<EdgeEvent>, schema: &Schema, count: u64) {
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let gre = schema.edge_type("GRE").unwrap();
    let step = events.len() / (count as usize + 1);
    for k in 0..count {
        let base = 5_000_000 + 10 * k;
        let at = step * (k as usize + 1);
        let t0 = events[at].timestamp.0;
        let attack = [
            EdgeEvent::homogeneous(base, base + 1, ip, tcp, Timestamp(t0)),
            EdgeEvent::homogeneous(base + 1, base + 2, ip, esp, Timestamp(t0 + 1)),
            EdgeEvent::homogeneous(base + 2, base + 3, ip, gre, Timestamp(t0 + 2)),
        ];
        for (i, e) in attack.iter().enumerate() {
            events.insert(at + i, *e);
        }
    }
}

#[test]
fn injected_attacks_are_detected_by_every_strategy() {
    let dataset = NetflowConfig {
        num_hosts: 500,
        num_edges: 4_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let query = exfiltration_query(&dataset.schema);

    let mut events = dataset.events.clone();
    inject_attacks(&mut events, &dataset.schema, 4);

    let mut counts = Vec::new();
    for strategy in Strategy::SJ_TREE {
        let engine = ContinuousQueryEngine::new(query.clone(), strategy, &estimator, None)
            .expect("engine builds");
        let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine);
        let found = proc.process_all(events.iter());
        counts.push((strategy, found));
    }
    // All strategies agree with each other...
    let reference = counts[0].1;
    for (strategy, found) in &counts {
        assert_eq!(*found, reference, "{strategy} disagrees");
    }
    // ...and at least the injected attacks are found (the random background
    // may contribute extra legitimate occurrences of the pattern).
    assert!(reference >= 4, "found only {reference} matches");
}

#[test]
fn cyclic_query_is_supported_end_to_end() {
    // author -knows-> friend, author -createsPost-> post, friend -likesPost-> post
    let dataset = LsbenchConfig {
        num_persons: 150,
        num_edges: 2_000,
        ..LsbenchConfig::tiny()
    }
    .generate();
    let schema = &dataset.schema;
    let person = schema.vertex_type("person").unwrap();
    let post = schema.vertex_type("post").unwrap();
    let knows = schema.edge_type("knows").unwrap();
    let creates = schema.edge_type("createsPost").unwrap();
    let likes = schema.edge_type("likesPost").unwrap();
    let mut q = QueryGraph::new("friend-likes-my-post");
    let author = q.add_vertex(person);
    let friend = q.add_vertex(person);
    let p = q.add_vertex(post);
    q.add_edge(author, friend, knows);
    q.add_edge(author, p, creates);
    q.add_edge(friend, p, likes);

    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut results = Vec::new();
    for strategy in Strategy::ALL {
        let engine = ContinuousQueryEngine::new(q.clone(), strategy, &estimator, None)
            .expect("engine builds");
        let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine);
        let found = proc.process_all(dataset.events().iter());
        results.push((strategy, found));
    }
    let reference = results[0].1;
    for (strategy, found) in &results {
        assert_eq!(
            *found, reference,
            "{strategy} disagrees on the cyclic query"
        );
    }
}

#[test]
fn profile_counters_reflect_the_workload() {
    let dataset = NetflowConfig::tiny().generate();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let query = exfiltration_query(&dataset.schema);
    let engine = ContinuousQueryEngine::new(query, Strategy::PathLazy, &estimator, None).unwrap();
    let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine);
    proc.process_all(dataset.events().iter());
    let p = proc.profile();
    assert_eq!(p.edges_processed, dataset.len() as u64);
    assert!(p.iso_searches > 0);
    assert!(p.iso_searches <= p.edges_processed * 3);
    // Subgraph isomorphism dominates the processing time (Section 6.4 claims
    // ≥95% on the paper's workloads). Wall-clock splits are noisy on a tiny
    // test stream and a loaded machine, so only require a meaningful share
    // here; the `profile` experiment measures the real split.
    assert!(
        p.iso_time_fraction() > 0.2,
        "iso fraction = {}",
        p.iso_time_fraction()
    );
}

#[test]
fn persisted_sjtree_produces_identical_results() {
    let dataset = NetflowConfig::tiny().generate();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let query = exfiltration_query(&dataset.schema);

    // Decomposition step: build and "store to disk" (JSON round trip).
    let engine = ContinuousQueryEngine::new(query, Strategy::PathLazy, &estimator, None).unwrap();
    let json = engine.tree().unwrap().to_json().unwrap();

    // Query-processing step: load the tree and run.
    let tree = streampattern::SjTree::from_json(&json).unwrap();
    let restored = ContinuousQueryEngine::from_tree(tree, true, None).unwrap();

    let mut a = StreamProcessor::with_engine(dataset.schema.clone(), engine);
    let mut b = StreamProcessor::with_engine(dataset.schema.clone(), restored);
    let found_a = a.process_all(dataset.events().iter());
    let found_b = b.process_all(dataset.events().iter());
    assert_eq!(found_a, found_b);
}

#[test]
fn multi_edge_streams_are_handled() {
    // The same host pair exchanging many flows of the same protocol must not
    // confuse the matcher (multigraph semantics).
    let dataset = NetflowConfig::tiny().generate();
    let schema = dataset.schema.clone();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let esp = schema.edge_type("ESP").unwrap();

    let mut q = QueryGraph::new("esp-tcp");
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    q.add_edge(a, b, esp);
    q.add_edge(b, c, tcp);

    let estimator = dataset.estimator_from_prefix(dataset.len());
    for strategy in Strategy::ALL {
        let engine = ContinuousQueryEngine::new(q.clone(), strategy, &estimator, None).unwrap();
        let mut proc = StreamProcessor::with_engine(schema.clone(), engine);
        // 1 esp edge followed by 3 parallel tcp edges: 3 distinct matches.
        let events = [
            EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)),
            EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)),
            EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(3)),
            EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(4)),
        ];
        let found = proc.process_all(events.iter());
        assert_eq!(found, 3, "strategy {strategy}");
    }
}
