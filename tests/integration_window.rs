//! Sliding-window semantics across the whole stack: the data graph forgets
//! old edges, the match store purges stale partial matches, and only matches
//! whose time span is below `tW` are reported (Section 2.1's τ(g) < tW).

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use streampattern::{
    ContinuousQueryEngine, Schema, SelectivityEstimator, Strategy, StreamProcessor,
};

fn two_hop_query(schema: &Schema) -> QueryGraph {
    let esp = schema.edge_type("ESP").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let mut q = QueryGraph::new("esp-tcp");
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    q.add_edge(a, b, esp);
    q.add_edge(b, c, tcp);
    q
}

#[test]
fn matches_slower_than_the_window_are_not_reported() {
    let dataset = NetflowConfig::tiny().generate();
    let schema = dataset.schema.clone();
    let ip = schema.vertex_type("ip").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let query = two_hop_query(&schema);
    let estimator = dataset.estimator_from_prefix(dataset.len());

    // Pattern 1 completes within 5 ticks; pattern 2 takes 500 ticks.
    let events = [
        EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(0)),
        EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(5)),
        EdgeEvent::homogeneous(10, 11, ip, esp, Timestamp(100)),
        EdgeEvent::homogeneous(11, 12, ip, tcp, Timestamp(600)),
    ];
    for strategy in Strategy::ALL {
        let engine =
            ContinuousQueryEngine::new(query.clone(), strategy, &estimator, Some(50)).unwrap();
        let mut proc = StreamProcessor::with_engine(schema.clone(), engine).with_purge_interval(1);
        let found = proc.process_all(events.iter());
        assert_eq!(found, 1, "strategy {strategy}");
    }
}

#[test]
fn graph_stays_bounded_under_a_window() {
    let schema = {
        let mut s = Schema::new();
        s.intern_vertex_type("ip");
        s.intern_edge_type("TCP");
        s.intern_edge_type("ESP");
        s
    };
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let query = {
        let mut q = QueryGraph::new("tcp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(b, c, tcp);
        q
    };
    let estimator = SelectivityEstimator::new();
    let engine =
        ContinuousQueryEngine::new(query, Strategy::SingleLazy, &estimator, Some(100)).unwrap();
    let mut proc = StreamProcessor::with_engine(schema, engine).with_purge_interval(64);

    // 10 000 edges spread over 100 000 ticks: at any point only ~1% of them
    // fit in the window.
    for i in 0..10_000u64 {
        let ev = EdgeEvent::homogeneous(i % 97, (i * 7) % 89 + 100, ip, tcp, Timestamp(i * 10));
        proc.process(&ev);
    }
    assert!(
        proc.graph().num_edges() < 200,
        "graph kept {} edges despite the window",
        proc.graph().num_edges()
    );
    assert_eq!(proc.graph().total_edges_seen(), 10_000);
}

#[test]
fn partial_matches_are_purged_with_the_window() {
    let schema = {
        let mut s = Schema::new();
        s.intern_vertex_type("ip");
        s.intern_edge_type("TCP");
        s.intern_edge_type("ESP");
        s
    };
    let ip = schema.vertex_type("ip").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let tcp = schema.edge_type("TCP").unwrap();
    let query = {
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        q
    };
    let estimator = SelectivityEstimator::new();
    let engine = ContinuousQueryEngine::new(query, Strategy::Single, &estimator, Some(50)).unwrap();
    let mut proc = StreamProcessor::with_engine(schema, engine).with_purge_interval(16);

    // Thousands of esp edges that never complete: without purging, the store
    // would grow linearly.
    for i in 0..5_000u64 {
        let ev = EdgeEvent::homogeneous(i, i + 1_000_000, ip, esp, Timestamp(i * 10));
        proc.process(&ev);
    }
    let live = proc
        .engine()
        .store_stats()
        .expect("sj-tree strategy")
        .total_live_matches;
    assert!(
        live < 100,
        "store kept {live} partial matches despite the window"
    );
    assert!(proc.profile().partial_matches_purged > 4_000);

    // The engine still works after heavy purging.
    let found = proc.process(&EdgeEvent::homogeneous(
        4_999 + 1_000_000,
        7,
        ip,
        tcp,
        Timestamp(5_000 * 10 + 1),
    ));
    assert_eq!(found.len(), 1);
}

#[test]
fn window_equivalence_between_lazy_and_eager() {
    // With a window, lazy and eager must still report the same matches on a
    // realistic stream (the purge schedule differs but windowed results must
    // not).
    let dataset = NetflowConfig {
        num_hosts: 200,
        num_edges: 2_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let query = two_hop_query(&dataset.schema);
    let window = Some(500);

    let mut totals = Vec::new();
    for strategy in Strategy::SJ_TREE {
        let engine =
            ContinuousQueryEngine::new(query.clone(), strategy, &estimator, window).unwrap();
        let mut proc =
            StreamProcessor::with_engine(dataset.schema.clone(), engine).with_purge_interval(128);
        totals.push((strategy, proc.process_all(dataset.events().iter())));
    }
    let reference = totals[0].1;
    for (strategy, found) in &totals {
        assert_eq!(*found, reference, "{strategy} disagrees under a window");
    }
}
