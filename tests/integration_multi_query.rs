//! Multi-query behavior of the shared-graph [`StreamProcessor`]: edge-type
//! dispatch provably skips unrelated engines, windows are per query over one
//! shared graph, queries can be deregistered mid-stream, and the shared
//! execution reports exactly what independent single-query processors would.

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use streampattern::{ContinuousQueryEngine, Schema, Strategy, StreamProcessor};

/// x -[a]-> y -[b]-> z
fn two_hop(schema: &Schema, name: &str, a: &str, b: &str) -> QueryGraph {
    let ta = schema.edge_type(a).unwrap();
    let tb = schema.edge_type(b).unwrap();
    let mut q = QueryGraph::new(name);
    let x = q.add_any_vertex();
    let y = q.add_any_vertex();
    let z = q.add_any_vertex();
    q.add_edge(x, y, ta);
    q.add_edge(y, z, tb);
    q
}

#[test]
fn dispatch_index_skips_engines_with_disjoint_edge_types() {
    let mut schema = Schema::new();
    let ip = schema.intern_vertex_type("ip");
    let tcp = schema.intern_edge_type("TCP");
    let esp = schema.intern_edge_type("ESP");
    let udp = schema.intern_edge_type("UDP");
    let icmp = schema.intern_edge_type("ICMP");

    let mut proc = StreamProcessor::new(schema.clone());
    // Two queries with disjoint edge-type sets.
    let q_tcp_esp = proc
        .register(
            two_hop(&schema, "tcp-esp", "TCP", "ESP"),
            Strategy::SingleLazy,
            None,
        )
        .unwrap();
    let q_udp_icmp = proc
        .register(
            two_hop(&schema, "udp-icmp", "UDP", "ICMP"),
            Strategy::SingleLazy,
            None,
        )
        .unwrap();

    let events = [
        EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(1)),
        EdgeEvent::homogeneous(2, 3, ip, esp, Timestamp(2)), // completes tcp-esp
        EdgeEvent::homogeneous(10, 11, ip, udp, Timestamp(3)),
        EdgeEvent::homogeneous(20, 21, ip, tcp, Timestamp(4)),
        EdgeEvent::homogeneous(11, 12, ip, icmp, Timestamp(5)), // completes udp-icmp
    ];
    let mut per_query = vec![0u64; 2];
    for ev in &events {
        for (qid, _) in proc.process(ev) {
            if qid == q_tcp_esp {
                per_query[0] += 1;
            } else {
                per_query[1] += 1;
            }
        }
    }
    assert_eq!(per_query, vec![1, 1]);

    // The dispatch index provably skipped the other engine: each engine's
    // own counter saw only its types (3 tcp/esp edges, 2 udp/icmp edges),
    // while the processor ingested all 5 into the one shared graph.
    assert_eq!(proc.profile_for(q_tcp_esp).unwrap().edges_processed, 3);
    assert_eq!(proc.profile_for(q_udp_icmp).unwrap().edges_processed, 2);
    assert_eq!(proc.profile().edges_processed, 5);
    assert_eq!(proc.graph().num_edges(), 5);
}

#[test]
fn per_query_windows_share_one_graph() {
    let mut schema = Schema::new();
    let ip = schema.intern_vertex_type("ip");
    let tcp = schema.intern_edge_type("TCP");
    let esp = schema.intern_edge_type("ESP");

    let mut proc = StreamProcessor::new(schema.clone()).with_purge_interval(1);
    let query = two_hop(&schema, "tcp-esp", "TCP", "ESP");
    let narrow = proc
        .register(query.clone(), Strategy::Single, Some(10))
        .unwrap();
    let wide = proc.register(query, Strategy::Single, Some(1_000)).unwrap();

    // Instance 1 completes in 5 ticks (inside both windows); instance 2
    // takes 100 ticks (only inside the wide window).
    let events = [
        EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(0)),
        EdgeEvent::homogeneous(2, 3, ip, esp, Timestamp(5)),
        EdgeEvent::homogeneous(10, 11, ip, tcp, Timestamp(200)),
        EdgeEvent::homogeneous(11, 12, ip, esp, Timestamp(300)),
    ];
    let mut narrow_found = 0u64;
    let mut wide_found = 0u64;
    for ev in &events {
        for (qid, m) in proc.process(ev) {
            if qid == narrow {
                narrow_found += 1;
                assert!(m.duration() < 10);
            } else {
                wide_found += 1;
                assert!(m.duration() < 1_000);
            }
        }
    }
    assert_eq!(
        narrow_found, 1,
        "narrow window must reject the slow instance"
    );
    assert_eq!(wide_found, 2, "wide window sees both instances");

    // Graph retention follows the *largest* registered window: the edges at
    // t=0/5 are still live relative to t=300 under tW=1000, even though the
    // narrow query has long forgotten them.
    assert_eq!(proc.graph().num_edges(), 4);
    assert_eq!(proc.graph().window(), Some(1_000));

    // Dropping the wide query shrinks retention to the narrow window.
    proc.deregister(wide);
    assert_eq!(proc.graph().window(), Some(10));
}

#[test]
fn deregistration_mid_stream_stops_one_query_only() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let q_a = two_hop(&schema, "tcp-esp", "TCP", "ESP");
    let q_b = two_hop(&schema, "udp-gre", "UDP", "GRE");
    let half = dataset.len() / 2;

    // Shared processor: deregister query A halfway through the stream.
    let mut proc = StreamProcessor::new(schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    let a_id = proc
        .register(q_a.clone(), Strategy::SingleLazy, None)
        .unwrap();
    let b_id = proc
        .register(q_b.clone(), Strategy::SingleLazy, None)
        .unwrap();
    let mut a_found = 0u64;
    let mut b_found = 0u64;
    for (i, ev) in dataset.events().iter().enumerate() {
        if i == half {
            let engine = proc.deregister(a_id).expect("a registered");
            assert!(engine.profile().edges_processed > 0);
        }
        for (qid, _) in proc.process(ev) {
            if qid == a_id {
                a_found += 1;
            } else {
                assert_eq!(qid, b_id);
                b_found += 1;
            }
        }
    }
    assert_eq!(proc.num_queries(), 1);

    // Reference runs: A over the first half only, B over the whole stream.
    let ref_a = {
        let engine =
            ContinuousQueryEngine::new(q_a, Strategy::SingleLazy, &estimator, None).unwrap();
        let mut p = StreamProcessor::with_engine(schema.clone(), engine).with_statistics(false);
        p.process_all(dataset.events()[..half].iter())
    };
    let ref_b = {
        let engine =
            ContinuousQueryEngine::new(q_b, Strategy::SingleLazy, &estimator, None).unwrap();
        let mut p = StreamProcessor::with_engine(schema, engine).with_statistics(false);
        p.process_all(dataset.events().iter())
    };
    assert_eq!(
        a_found, ref_a,
        "query A must stop exactly at deregistration"
    );
    assert_eq!(b_found, ref_b, "query B must be unaffected by A's removal");
}

#[test]
fn shared_graph_equals_independent_processors() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 3_000,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let queries = [
        two_hop(&schema, "tcp-esp", "TCP", "ESP"),
        two_hop(&schema, "udp-udp", "UDP", "UDP"),
        two_hop(&schema, "icmp-tcp", "ICMP", "TCP"),
    ];

    // One shared processor for all three queries.
    let mut shared = StreamProcessor::new(schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    let ids: Vec<_> = queries
        .iter()
        .map(|q| {
            shared
                .register(q.clone(), Strategy::SingleLazy, Some(5_000))
                .unwrap()
        })
        .collect();
    let mut shared_counts = vec![0u64; queries.len()];
    for ev in dataset.events() {
        for (qid, _) in shared.process(ev) {
            let slot = ids.iter().position(|&i| i == qid).unwrap();
            shared_counts[slot] += 1;
        }
    }

    // Independent single-query processors, each with its own graph copy.
    for (slot, query) in queries.iter().enumerate() {
        let engine = ContinuousQueryEngine::new(
            query.clone(),
            Strategy::SingleLazy,
            &estimator,
            Some(5_000),
        )
        .unwrap();
        let mut p = StreamProcessor::with_engine(schema.clone(), engine).with_statistics(false);
        let found = p.process_all(dataset.events().iter());
        assert_eq!(
            shared_counts[slot],
            found,
            "shared execution disagrees with the independent run of {}",
            query.name()
        );
    }

    // All three queries really did share one graph.
    assert_eq!(shared.num_queries(), 3);
    assert!(shared.graph().num_edges() > 0);
}

#[test]
fn estimator_feeds_auto_registration_mid_stream() {
    let dataset = NetflowConfig {
        num_hosts: 200,
        num_edges: 1_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    // Statistics collection on (the default): the processor learns the
    // stream's distribution while processing.
    let mut proc = StreamProcessor::new(schema.clone());
    let half = dataset.len() / 2;
    for ev in &dataset.events()[..half] {
        proc.process(ev);
    }
    assert_eq!(proc.estimator().num_edges_observed(), half as u64);
    // Register a query mid-stream with Auto strategy, driven by the live
    // statistics; it starts matching from here on.
    let qid = proc
        .register(
            two_hop(&schema, "tcp-esp", "TCP", "ESP"),
            streampattern::StrategySpec::Auto,
            None,
        )
        .unwrap();
    assert!(proc.engine_for(qid).unwrap().strategy().is_lazy());
    for ev in &dataset.events()[half..] {
        proc.process(ev);
    }
    assert_eq!(
        proc.profile_for(qid).unwrap().edges_processed as usize,
        dataset.events()[half..]
            .iter()
            .filter(|e| {
                let t = schema.edge_type("TCP").unwrap();
                let s = schema.edge_type("ESP").unwrap();
                e.edge_type == t || e.edge_type == s
            })
            .count()
    );
}
