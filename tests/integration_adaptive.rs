//! Cross-crate integration: drift-adaptive re-decomposition is
//! semantics-preserving. On a stream whose protocol mix flips mid-way, the
//! adaptive processor must report exactly the match multiset of (a) the
//! same processor with adaptivity off, and (b) independent fresh
//! single-query processors — across every strategy and, for the parallel
//! runtime, across worker counts (`RUNTIME_WORKERS` overrides the sweep,
//! mirroring `integration_parallel.rs`).

use sp_bench::experiments::drift_rule_pack;
use sp_datasets::{Dataset, NetflowDriftConfig};
use sp_graph::{EdgeEvent, Schema, Timestamp};
use sp_query::QueryGraph;
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{
    ContinuousQueryEngine, DriftConfig, FnSink, QueryId, SelectivityEstimator, StatsMode, Strategy,
    StrategySpec, StreamProcessor, SubgraphMatch,
};

/// Worker counts under test: `RUNTIME_WORKERS` (e.g. `2` or `1,2,4`) or the
/// default sweep.
fn worker_counts() -> Vec<usize> {
    match std::env::var("RUNTIME_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad RUNTIME_WORKERS entry '{p}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn drift_dataset() -> Dataset {
    NetflowDriftConfig {
        num_hosts: 2_000,
        num_edges: 2_400,
        shift_at: 1_000,
        popularity_exponent: 0.5,
        ..NetflowDriftConfig::default()
    }
    .generate()
}

/// Rules pairing protocols from opposite ends of the phase-1 rank order, so
/// the flip inverts their optimal leaf order — the benchmark's pack, minus
/// the mid-rank pairs that are not flip-sensitive, to keep the sweep fast.
fn drift_pack(schema: &Schema) -> Vec<QueryGraph> {
    let mut pack = drift_rule_pack(schema, 4);
    pack.retain(|q| q.name() != "tunnel-gre");
    pack
}

/// Decayed estimator seeded from the stream's pre-shift prefix, so every
/// arm registers against identical phase-1 statistics.
fn seeded_estimator(dataset: &Dataset, prefix: usize) -> SelectivityEstimator {
    Dataset::estimator_from_events(
        &dataset.events()[..prefix.min(dataset.len())],
        StatsMode::Decayed(128),
    )
}

fn drift_config() -> DriftConfig {
    DriftConfig {
        check_interval: 64,
        min_observations: 64,
        confirm_checks: 1,
    }
}

/// Runs the pack on one shared-graph processor and returns the sorted
/// `(registration slot, match fingerprint)` multiset plus the number of
/// re-decompositions performed.
fn run_shared(
    dataset: &Dataset,
    pack: &[QueryGraph],
    spec: StrategySpec,
    window: Option<u64>,
    adaptive: bool,
) -> (Vec<(usize, String)>, u64) {
    let mut proc = StreamProcessor::new(dataset.schema.clone())
        .with_estimator(seeded_estimator(dataset, 500))
        .with_statistics(true);
    if adaptive {
        proc = proc.with_adaptive(drift_config());
    }
    let mut ids = Vec::new();
    for q in pack {
        ids.push(proc.register(q.clone(), spec, window).unwrap());
    }
    let slot = |id: QueryId| ids.iter().position(|&x| x == id).unwrap();
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
        out.push((slot(q), format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    for ev in dataset.events() {
        proc.process_into(ev, &mut sink);
    }
    let redecompositions = proc.profile().redecompositions;
    out.sort();
    (out, redecompositions)
}

#[test]
fn adaptive_equals_fixed_and_independent_for_every_strategy() {
    let dataset = drift_dataset();
    let pack = drift_pack(&dataset.schema);
    let window = Some(240);
    for spec in [
        StrategySpec::Fixed(Strategy::Single),
        StrategySpec::Fixed(Strategy::SingleLazy),
        StrategySpec::Fixed(Strategy::Path),
        StrategySpec::Fixed(Strategy::PathLazy),
        StrategySpec::Auto,
    ] {
        let (adaptive, redecompositions) = run_shared(&dataset, &pack, spec, window, true);
        let (fixed, _) = run_shared(&dataset, &pack, spec, window, false);
        assert_eq!(
            adaptive, fixed,
            "adaptivity changed the match multiset under {spec:?}"
        );
        assert!(!adaptive.is_empty(), "workload produced no matches");
        assert!(
            redecompositions >= 1,
            "the flip never triggered a rebuild under {spec:?}"
        );

        // Independent fresh processors, one per query, same registration
        // statistics: the ground truth the shared adaptive run must match.
        let mut independent: Vec<(usize, String)> = Vec::new();
        for (slot, query) in pack.iter().enumerate() {
            let mut proc = StreamProcessor::new(dataset.schema.clone())
                .with_estimator(seeded_estimator(&dataset, 500))
                .with_statistics(true);
            proc.register(query.clone(), spec, window).unwrap();
            let mut sink = FnSink(|_, m: SubgraphMatch| {
                independent.push((slot, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
            });
            for ev in dataset.events() {
                proc.process_into(ev, &mut sink);
            }
        }
        independent.sort();
        assert_eq!(
            adaptive, independent,
            "adaptive shared execution diverged from independent processors under {spec:?}"
        );
    }
}

#[test]
fn parallel_adaptive_equals_sequential_across_worker_counts() {
    let dataset = drift_dataset();
    let pack = drift_pack(&dataset.schema);
    let window = Some(240);
    for spec in [
        StrategySpec::Fixed(Strategy::SingleLazy),
        StrategySpec::Auto,
    ] {
        let (expected, _) = run_shared(&dataset, &pack, spec, window, false);
        assert!(!expected.is_empty());
        for workers in worker_counts() {
            let mut runtime = ParallelStreamProcessor::new(
                dataset.schema.clone(),
                RuntimeConfig::with_workers(workers).adaptive(drift_config()),
            )
            .with_estimator(seeded_estimator(&dataset, 500));
            let mut ids = Vec::new();
            for q in &pack {
                ids.push(runtime.register(q.clone(), spec, window).unwrap());
            }
            let slot = |id: QueryId| ids.iter().position(|&x| x == id).unwrap();
            let mut got: Vec<(usize, String)> = Vec::new();
            let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                got.push((slot(q), format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
            });
            runtime.process_all_into(dataset.events().iter(), &mut sink);
            got.sort();
            assert_eq!(
                got, expected,
                "parallel adaptive run diverged at {workers} workers under {spec:?}"
            );
            assert!(
                runtime.adaptive_stats().redecompositions >= 1,
                "no redecomposition issued at {workers} workers under {spec:?}"
            );
            let report = runtime.shutdown();
            assert_eq!(report.profile.redecompositions, runtime_redecomp(&report));
        }
    }
}

/// Sum of per-worker engine redecomposition counters, cross-checking the
/// merged profile.
fn runtime_redecomp(report: &sp_runtime::RuntimeReport) -> u64 {
    report
        .workers
        .iter()
        .flat_map(|w| w.per_query.iter())
        .map(|(_, p)| p.redecompositions)
        .sum()
}

#[test]
fn redecomposition_lands_mid_window_with_live_partial_matches() {
    // Hand-rolled: a drift-triggered rebuild happens while half a pattern
    // is live inside its window, and the match still completes exactly once
    // — in both the adaptive and the adaptivity-off processor.
    let mut schema = Schema::new();
    let ip = schema.intern_vertex_type("ip");
    let tcp = schema.intern_edge_type("tcp");
    let esp = schema.intern_edge_type("esp");
    let mut q = QueryGraph::new("esp-tcp");
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    q.add_edge(a, b, esp);
    q.add_edge(b, c, tcp);

    let run = |adaptive: bool| -> (u64, u64) {
        let mut proc = StreamProcessor::new(schema.clone())
            .with_estimator(SelectivityEstimator::new().with_mode(StatsMode::Decayed(64)))
            .with_statistics(true);
        if adaptive {
            proc = proc.with_adaptive(DriftConfig {
                check_interval: 10_000, // manual checks only
                min_observations: 16,
                confirm_checks: 1,
            });
        }
        // Phase 1: esp rare — the initial plan searches the esp leaf first.
        for i in 0..120u64 {
            let t = if i % 10 == 0 { esp } else { tcp };
            proc.process(&EdgeEvent::homogeneous(i, i + 5_000, ip, t, Timestamp(i)));
        }
        let qid = proc
            .register(q.clone(), Strategy::SingleLazy, Some(500))
            .unwrap();
        // The partial match: the esp half arrives and stays in-window.
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(200)));
        // Phase 2: esp floods, tcp dries up; the ranking flips while the
        // partial is live.
        for i in 0..400u64 {
            let t = if i % 10 == 0 { tcp } else { esp };
            proc.process(&EdgeEvent::homogeneous(
                10_000 + i,
                20_000 + i,
                ip,
                t,
                Timestamp(210 + i / 4),
            ));
        }
        let rebuilt = proc.run_drift_checks();
        if adaptive {
            assert!(rebuilt >= 1, "drift must rebuild the engine mid-window");
        } else {
            assert_eq!(rebuilt, 0);
        }
        // The completing tcp edge: still inside the 500-tick window of the
        // esp edge at t=200.
        let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(400)));
        (
            matches.iter().filter(|(id, _)| *id == qid).count() as u64,
            proc.profile_for(qid).unwrap().redecompositions,
        )
    };

    let (matched_adaptive, redecomp) = run(true);
    let (matched_fixed, _) = run(false);
    assert_eq!(
        matched_adaptive, 1,
        "the partial must complete exactly once"
    );
    assert_eq!(matched_adaptive, matched_fixed);
    assert_eq!(redecomp, 1);

    // Sanity: an engine rebuilt this way reports the same continuation a
    // fresh engine fed the whole history would (replay-equivalence at the
    // engine level is asserted in the core crate's unit tests).
    let est = SelectivityEstimator::new();
    let engine = ContinuousQueryEngine::new(q, Strategy::SingleLazy, &est, Some(500)).unwrap();
    assert_eq!(engine.profile().redecompositions, 0);
}
