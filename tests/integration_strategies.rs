//! Cross-strategy agreement and the behavioural expectations behind the
//! paper's evaluation: all strategies report the same matches, lazy variants
//! do less work, path variants store fewer partial matches, and the ξ-based
//! selector returns one of the lazy strategies.

use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};
use std::collections::HashSet;
use streampattern::{
    choose_strategy, ContinuousQueryEngine, Strategy, StreamProcessor,
    RELATIVE_SELECTIVITY_THRESHOLD,
};

/// Runs one query with one strategy over the full stream and returns the set
/// of reported matches as canonical (query edge, data edge) pair lists plus
/// the processor for inspection.
fn run(
    dataset: &sp_datasets::Dataset,
    query: &streampattern::QueryGraph,
    strategy: Strategy,
) -> (HashSet<Vec<(usize, u64)>>, StreamProcessor) {
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let engine = ContinuousQueryEngine::new(query.clone(), strategy, &estimator, None)
        .expect("engine builds");
    let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine);
    let mut found = HashSet::new();
    for ev in dataset.events() {
        for (_, m) in proc.process(ev) {
            let key: Vec<(usize, u64)> = m.edge_pairs().map(|(q, d)| (q.0, d.0)).collect();
            assert!(found.insert(key), "duplicate match reported by {strategy}");
        }
    }
    (found, proc)
}

fn small_netflow() -> sp_datasets::Dataset {
    NetflowConfig {
        num_hosts: 200,
        num_edges: 1_200,
        ..NetflowConfig::tiny()
    }
    .generate()
}

#[test]
fn random_path_queries_agree_across_all_strategies() {
    let dataset = small_netflow();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 17);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 3 }, 4, &estimator);
    assert!(!queries.is_empty());
    for query in &queries {
        let (reference, _) = run(&dataset, query, Strategy::Vf2Baseline);
        for strategy in Strategy::SJ_TREE {
            let (found, _) = run(&dataset, query, strategy);
            assert_eq!(
                found,
                reference,
                "{strategy} disagrees with VF2 on {}",
                query.name()
            );
        }
    }
}

#[test]
fn random_tree_queries_agree_across_sjtree_strategies() {
    let dataset = small_netflow();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 23);
    let queries =
        generator.generate_valid_batch(QueryKind::BinaryTree { vertices: 5 }, 4, &estimator);
    for query in &queries {
        let (reference, _) = run(&dataset, query, Strategy::Single);
        for strategy in [Strategy::SingleLazy, Strategy::Path, Strategy::PathLazy] {
            let (found, _) = run(&dataset, query, strategy);
            assert_eq!(found, reference, "{strategy} disagrees on {}", query.name());
        }
    }
}

#[test]
fn lazy_strategies_do_less_search_work() {
    let dataset = small_netflow();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 31);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 4, &estimator);
    for query in &queries {
        let (_, eager) = run(&dataset, query, Strategy::Single);
        let (_, lazy) = run(&dataset, query, Strategy::SingleLazy);
        let eager_work = eager.profile().iso_searches + eager.profile().leaf_matches;
        let lazy_work = lazy.profile().iso_searches + lazy.profile().leaf_matches;
        assert!(
            lazy_work <= eager_work,
            "lazy did more work ({lazy_work} vs {eager_work}) on {}",
            query.name()
        );
        assert!(lazy.profile().searches_skipped > 0);
    }
}

#[test]
fn lazy_strategies_store_fewer_partial_matches() {
    let dataset = small_netflow();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 37);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 3 }, 4, &estimator);
    for query in &queries {
        let (_, eager) = run(&dataset, query, Strategy::Single);
        let (_, lazy) = run(&dataset, query, Strategy::SingleLazy);
        let eager_live = eager
            .engine()
            .store_stats()
            .expect("sj-tree strategy")
            .total_live_matches;
        let lazy_live = lazy
            .engine()
            .store_stats()
            .expect("sj-tree strategy")
            .total_live_matches;
        assert!(
            lazy_live <= eager_live,
            "lazy stored more ({lazy_live} vs {eager_live}) on {}",
            query.name()
        );
    }
}

#[test]
fn selector_picks_a_lazy_strategy_and_xi_is_in_range() {
    let dataset = small_netflow();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 41);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 8, &estimator);
    for query in &queries {
        let choice = choose_strategy(query, &estimator, RELATIVE_SELECTIVITY_THRESHOLD)
            .expect("query decomposes");
        assert!(choice.strategy.is_lazy());
        assert!(choice.relative_selectivity.is_finite());
        assert!(choice.relative_selectivity > 0.0);
        // ξ compares a finer decomposition against the 1-edge one; it can
        // never exceed ~1 by more than floating error on seen primitives.
        assert!(choice.relative_selectivity <= 10.0);
    }
}

#[test]
fn vf2_baseline_is_slower_than_lazy_on_a_growing_graph() {
    // Not a benchmark, just a sanity check of the complexity gap: the VF2
    // baseline rescans the whole graph per edge, so on a few thousand edges
    // it must already do far more isomorphism work than the lazy engine.
    let dataset = NetflowConfig {
        num_hosts: 200,
        num_edges: 1_200,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = &dataset.schema;
    let tcp = schema.edge_type("TCP").unwrap();
    let esp = schema.edge_type("ESP").unwrap();
    let mut q = streampattern::QueryGraph::new("esp-tcp");
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    q.add_edge(a, b, esp);
    q.add_edge(b, c, tcp);

    let t0 = std::time::Instant::now();
    let (vf2_matches, _) = run(&dataset, &q, Strategy::Vf2Baseline);
    let vf2_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (lazy_matches, _) = run(&dataset, &q, Strategy::PathLazy);
    let lazy_time = t1.elapsed();
    assert_eq!(vf2_matches, lazy_matches);
    assert!(
        vf2_time > lazy_time,
        "expected VF2 ({vf2_time:?}) to be slower than PathLazy ({lazy_time:?})"
    );
}
