//! Shared join stage: equivalence and lifecycle.
//!
//! The tentpole contract is that sharing the join stage is
//! *semantics-preserving*: for any strategy, window mix and worker count,
//! the reported `(query, match)` multiset is identical with leaf+join
//! sharing, with leaf-only sharing, with no sharing at all, and against
//! independent single-query processors. The lifecycle tests cover the
//! refcounted tables: the last unsubscriber (deregistration or a
//! drift-driven re-subscription) drops the shared prefix table, a late
//! subscriber to an existing prefix sees no pre-registration matches, and a
//! re-decomposition landing mid-window keeps live partials completing.

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{
    FnSink, QueryId, Schema, SjTree, Strategy, StrategySpec, StreamProcessor, SubgraphMatch,
};

/// Worker counts under test: `RUNTIME_WORKERS` (e.g. `2` or `1,2,4`) or the
/// default sweep, mirroring `integration_parallel.rs`.
fn worker_counts() -> Vec<usize> {
    match std::env::var("RUNTIME_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad RUNTIME_WORKERS entry '{p}'"))
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// An overlapping netflow rule pack with identical chains (exfil vs
/// exfil-wide — different windows, one table), *nesting* prefix overlaps
/// (bounce and bounce-wide extend the exfil chain, so under the trie policy
/// their depth-3 node consumes the depth-2 exfil node's emissions) and
/// non-overlapping rules, so the shared join stage exercises full-depth
/// sharing, parent-to-child trie feeding and the private fallback at once.
fn pack(schema: &Schema) -> Vec<(QueryGraph, Option<u64>)> {
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, schema.edge_type(p).unwrap());
            prev = next;
        }
        q
    };
    vec![
        (chain("exfil", &["TCP", "ESP"]), Some(5_000)),
        (chain("exfil-wide", &["TCP", "ESP"]), None),
        (chain("bounce", &["TCP", "ESP", "TCP"]), Some(5_000)),
        (chain("bounce-wide", &["TCP", "ESP", "TCP"]), None),
        (chain("scan", &["ICMP", "TCP"]), Some(2_000)),
        (chain("scan-flood", &["ICMP", "TCP", "UDP"]), Some(4_000)),
        (chain("relay", &["TCP", "TCP"]), Some(1_000)),
    ]
}

/// Sorted `(query slot, match fingerprint)` multiset of a full run.
fn multiset_of<F>(mut process_all: F) -> Vec<(usize, String)>
where
    F: FnMut(&mut dyn FnMut(usize, SubgraphMatch)),
{
    let mut out = Vec::new();
    process_all(&mut |slot, m| {
        out.push((slot, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    out.sort();
    out
}

#[test]
fn shared_join_is_semantics_preserving_across_strategies_and_windows() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    let specs: [StrategySpec; 5] = [
        Strategy::Single.into(),
        Strategy::SingleLazy.into(),
        Strategy::Path.into(),
        Strategy::PathLazy.into(),
        StrategySpec::Auto,
    ];
    for spec in specs {
        let run = |leaf_sharing: bool, join_sharing: bool, trie: bool| {
            let mut proc = StreamProcessor::new(schema.clone())
                .with_estimator(estimator.clone())
                .with_statistics(false)
                .with_sharing(leaf_sharing)
                .with_join_sharing(join_sharing)
                .with_join_trie(trie);
            let ids: Vec<QueryId> = rules
                .iter()
                .map(|(q, w)| proc.register(q.clone(), spec, *w).unwrap())
                .collect();
            let multiset = multiset_of(|emit| {
                let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                    let slot = ids.iter().position(|&i| i == q).unwrap();
                    emit(slot, m);
                });
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            });
            (multiset, proc.shared_join_stats(), ids, proc)
        };
        let (full, join_stats, ids, proc) = run(true, true, true);
        let (flat, flat_stats, _, flat_proc) = run(true, true, false);
        let (leaf_only, leaf_only_stats, _, _) = run(true, false, true);
        let (unshared, _, _, _) = run(false, false, true);
        assert_eq!(
            full, flat,
            "trie vs flat join tables changed the multiset under {spec:?}"
        );
        assert_eq!(
            full, leaf_only,
            "join sharing changed the multiset under {spec:?}"
        );
        assert_eq!(
            full, unshared,
            "sharing (any stage) changed the multiset under {spec:?}"
        );
        assert!(!full.is_empty(), "workload found no matches");
        assert_eq!(
            leaf_only_stats.tables, 0,
            "join sharing off must not create tables"
        );
        assert_eq!(
            flat_stats.parent_feeds, 0,
            "flat tables must not feed each other"
        );
        // Under the 1-edge decompositions every 2-edge rule is join-capable
        // and the identical exfil/exfil-wide chains must coalesce into one
        // refcounted table that eliminates inserts and searches. (The
        // 2-edge-path decompositions fold those rules into a single leaf —
        // nothing to join — so only the multiset parity above applies.)
        let single_edge = matches!(
            spec,
            StrategySpec::Fixed(Strategy::Single) | StrategySpec::Fixed(Strategy::SingleLazy)
        );
        if single_edge {
            assert!(
                join_stats.tables >= 1,
                "no shared prefix table under {spec:?}: {join_stats:?}"
            );
            assert!(join_stats.subscriptions >= 2);
            assert!(
                join_stats.searches_saved > 0 && join_stats.inserts_saved > 0,
                "no join work eliminated under {spec:?}: {join_stats:?}"
            );
            assert!(join_stats.deliveries > 0);
            // The bounce pair's depth-3 node nests under the exfil pair's
            // depth-2 node and consumes its emissions instead of re-running
            // the shared leaves — and doing strictly less physical join
            // work than the flat layout on the same stream.
            assert!(
                join_stats.max_depth >= 3,
                "no nested trie node under {spec:?}: {join_stats:?}"
            );
            assert!(
                join_stats.parent_feeds > 0,
                "the trie never fed a child under {spec:?}: {join_stats:?}"
            );
            // Total physical join-stage work (every engine's private
            // tables plus the shared stage, each insert/search counted
            // once): nesting under the trie must cost strictly less than
            // the flat layout, where each deep subscriber re-runs its
            // suffix privately.
            let engine_inserts = |p: &StreamProcessor| -> u64 {
                p.query_ids()
                    .iter()
                    .filter_map(|&id| p.engine_for(id))
                    .filter_map(|e| e.store_stats())
                    .map(|s| s.total_inserted_per_node.iter().sum::<u64>())
                    .sum()
            };
            let trie_inserts = engine_inserts(&proc) + join_stats.inserts_run;
            let flat_inserts = engine_inserts(&flat_proc) + flat_stats.inserts_run;
            assert!(
                trie_inserts < flat_inserts,
                "trie did not reduce join-stage inserts under {spec:?}: {trie_inserts} vs flat {flat_inserts}"
            );
            let trie_searches = proc.profile().iso_searches + join_stats.searches_run;
            let flat_searches = flat_proc.profile().iso_searches + flat_stats.searches_run;
            assert!(
                trie_searches < flat_searches,
                "trie did not reduce leaf searches under {spec:?}: {trie_searches} vs flat {flat_searches}"
            );
            // Per-engine accounting: the identical-chain queries consumed
            // their matches from the shared stage.
            let exfil_profile = proc.profile_for(ids[0]).unwrap();
            assert!(
                exfil_profile.join_stages_shared > 0,
                "exfil never hit a shared table under {spec:?}"
            );
        }

        // Pre-sharing architecture: one independent single-query processor
        // per rule.
        let independent = multiset_of(|emit| {
            for (slot, (q, w)) in rules.iter().enumerate() {
                let mut proc = StreamProcessor::new(schema.clone())
                    .with_estimator(estimator.clone())
                    .with_statistics(false)
                    .with_sharing(false)
                    .with_join_sharing(false);
                proc.register(q.clone(), spec, *w).unwrap();
                let mut sink = FnSink(|_q: QueryId, m: SubgraphMatch| emit(slot, m));
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            }
        });
        assert_eq!(
            full, independent,
            "shared join stage diverges from independent processors under {spec:?}"
        );
    }
}

#[test]
fn shared_join_matches_parallel_runtime_across_worker_counts() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    // Sequential reference with both sharing stages enabled (defaults).
    let mut seq = StreamProcessor::new(schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    let seq_ids: Vec<QueryId> = rules
        .iter()
        .map(|(q, w)| seq.register(q.clone(), Strategy::SingleLazy, *w).unwrap())
        .collect();
    let expected = multiset_of(|emit| {
        let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
            emit(seq_ids.iter().position(|&i| i == q).unwrap(), m);
        });
        for ev in dataset.events() {
            seq.process_into(ev, &mut sink);
        }
    });
    assert!(seq.shared_join_stats().searches_saved > 0);

    for workers in worker_counts() {
        let mut runtime = ParallelStreamProcessor::new(
            schema.clone(),
            RuntimeConfig::with_workers(workers).statistics(false),
        )
        .with_estimator(estimator.clone());
        let ids: Vec<QueryId> = rules
            .iter()
            .map(|(q, w)| {
                runtime
                    .register(q.clone(), Strategy::SingleLazy, *w)
                    .unwrap()
            })
            .collect();
        let got = multiset_of(|emit| {
            let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                emit(ids.iter().position(|&i| i == q).unwrap(), m);
            });
            runtime.process_all_into(dataset.events().iter(), &mut sink);
        });
        assert_eq!(got, expected, "multiset diverged at {workers} workers");
    }
}

fn two_hop(schema: &Schema, name: &str) -> QueryGraph {
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();
    let mut q = QueryGraph::new(name);
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    q.add_edge(a, b, tcp);
    q.add_edge(b, c, esp);
    q
}

fn cyber_schema() -> Schema {
    let mut schema = Schema::new();
    schema.intern_vertex_type("ip");
    schema.intern_edge_type("tcp");
    schema.intern_edge_type("esp");
    schema
}

#[test]
fn late_subscriber_to_an_existing_prefix_sees_only_post_registration_matches() {
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();
    // A deterministic stream with tcp→esp completions in each half and no
    // completion straddling the boundary.
    let events: Vec<EdgeEvent> = (0..40u64)
        .map(|i| {
            let t = if i % 4 == 3 { esp } else { tcp };
            EdgeEvent::homogeneous(i, i + 1, ip, t, Timestamp(i))
        })
        .collect();
    let half = events.len() / 2;

    // Statistics stay off so the early and late twins decompose with the
    // same (tie-broken) leaf order — live statistics drifting between the
    // two registrations would give them different chains, and different
    // chains legitimately do not share a table.
    let mut proc = StreamProcessor::new(schema.clone()).with_statistics(false);
    let early = proc
        .register(two_hop(&schema, "early"), Strategy::SingleLazy, None)
        .unwrap();
    // One registered chain: no partner yet, so no table.
    assert_eq!(proc.shared_join_stats().tables, 0);
    let mut early_first_half = 0u64;
    for ev in &events[..half] {
        early_first_half += proc.process(ev).iter().filter(|(q, _)| *q == early).count() as u64;
    }
    assert!(early_first_half > 0, "first half produced no matches");

    // The late twin arrives mid-stream: a shared table is created for the
    // common chain and the early query migrates onto it — back-filled by
    // replaying the retained graph, so the early query's live partials
    // keep completing.
    let late = proc
        .register(two_hop(&schema, "late"), Strategy::SingleLazy, None)
        .unwrap();
    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 1);
    assert_eq!(stats.subscriptions, 2);
    assert!(stats.replays >= 1, "migration must back-fill the table");

    let mut early_second_half = 0u64;
    let mut late_second_half = 0u64;
    for ev in &events[half..] {
        for (q, _) in proc.process(ev) {
            if q == late {
                late_second_half += 1;
            } else {
                early_second_half += 1;
            }
        }
    }
    // Reference: a fresh processor that sees only the second half. The
    // late subscriber must report exactly these matches — nothing
    // inherited from the shared table's earlier activity.
    let mut fresh = StreamProcessor::new(schema.clone());
    let fresh_id = fresh
        .register(two_hop(&schema, "fresh"), Strategy::SingleLazy, None)
        .unwrap();
    let mut fresh_matches = 0u64;
    for ev in &events[half..] {
        fresh_matches += fresh
            .process(ev)
            .iter()
            .filter(|(q, _)| *q == fresh_id)
            .count() as u64;
    }
    assert_eq!(
        late_second_half, fresh_matches,
        "late subscriber saw pre-registration history"
    );
    // The early query keeps joining across the registration boundary.
    assert!(early_second_half >= late_second_half);
    assert!(early_second_half > 0);

    // Refcount lifecycle via deregistration: the table survives while any
    // subscriber remains and drops with the last one.
    proc.deregister(early).unwrap();
    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 1, "late query still holds the table");
    assert_eq!(stats.subscriptions, 1);
    proc.deregister(late).unwrap();
    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 0, "last unsubscriber must drop the table");
    assert_eq!(stats.subscriptions, 0);
}

/// Builds a tree over `q` whose leaves are the query's single edges in the
/// given explicit order (bypassing the selectivity-driven order).
fn tree_with_leaf_order(q: &QueryGraph, order: &[usize]) -> SjTree {
    let leaves = order
        .iter()
        .map(|&i| sp_query::QuerySubgraph::from_edges(q, [sp_query::QueryEdgeId(i)]))
        .collect();
    SjTree::from_leaves(q.clone(), leaves)
}

#[test]
fn drift_driven_resubscription_moves_prefix_refcounts() {
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();

    let mut proc = StreamProcessor::new(schema.clone());
    let q1 = proc
        .register(two_hop(&schema, "one"), Strategy::SingleLazy, Some(1_000))
        .unwrap();
    let q2 = proc
        .register(two_hop(&schema, "two"), Strategy::SingleLazy, Some(1_000))
        .unwrap();
    assert_eq!(proc.shared_join_stats().tables, 1);
    assert_eq!(proc.shared_join_stats().subscriptions, 2);

    // Half a pattern arrives: a live partial sits in the shared table.
    assert!(proc
        .process(&EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(10)))
        .is_empty());

    // Re-decompose q1 onto the flipped leaf order mid-window: q1 leaves the
    // table (q2 keeps it alive — the refcount drops to one, the table
    // stays) and runs privately until a partner with the flipped chain
    // appears.
    let query = proc.engine_for(q1).unwrap().query().clone();
    let flipped = tree_with_leaf_order(&query, &[1, 0]);
    proc.redecompose(q1, Strategy::SingleLazy, flipped.clone())
        .unwrap();
    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 1, "q2 still holds the original table");
    assert_eq!(stats.subscriptions, 1);

    // Re-decompose q2 the same way: the original table loses its last
    // subscriber and is dropped; the two flipped chains coalesce into a
    // fresh table (replayed from the retained graph).
    proc.redecompose(q2, Strategy::SingleLazy, flipped).unwrap();
    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 1, "flipped chains share a fresh table");
    assert_eq!(stats.subscriptions, 2);
    assert!(stats.replays >= 1);

    // The completing edge arrives after both swaps: the pre-swap partial
    // (replayed into the fresh table) completes exactly once per query.
    let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, esp, Timestamp(20)));
    let for_q1 = matches.iter().filter(|(q, _)| *q == q1).count();
    let for_q2 = matches.iter().filter(|(q, _)| *q == q2).count();
    assert_eq!(for_q1, 1, "q1 lost its live partial across the swap");
    assert_eq!(for_q2, 1, "q2 lost its live partial across the swap");
}

#[test]
fn mixed_windows_share_one_table_and_filter_at_emit() {
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();

    let mut proc = StreamProcessor::new(schema.clone());
    let narrow = proc
        .register(two_hop(&schema, "narrow"), Strategy::Single, Some(50))
        .unwrap();
    let wide = proc
        .register(two_hop(&schema, "wide"), Strategy::Single, None)
        .unwrap();
    assert_eq!(proc.shared_join_stats().tables, 1, "one table, two windows");

    // tcp at t=0, esp at t=100: spans 100 ticks — outside the narrow
    // window, inside the (unbounded) wide one.
    proc.process(&EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(0)));
    let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, esp, Timestamp(100)));
    assert_eq!(matches.iter().filter(|(q, _)| *q == wide).count(), 1);
    assert_eq!(matches.iter().filter(|(q, _)| *q == narrow).count(), 0);

    // A fast completion lands in both.
    proc.process(&EdgeEvent::homogeneous(10, 11, ip, tcp, Timestamp(200)));
    let matches = proc.process(&EdgeEvent::homogeneous(11, 12, ip, esp, Timestamp(210)));
    assert_eq!(matches.iter().filter(|(q, _)| *q == wide).count(), 1);
    assert_eq!(matches.iter().filter(|(q, _)| *q == narrow).count(), 1);
}

fn three_hop(schema: &Schema, name: &str) -> QueryGraph {
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();
    let mut q = QueryGraph::new(name);
    let a = q.add_any_vertex();
    let b = q.add_any_vertex();
    let c = q.add_any_vertex();
    let d = q.add_any_vertex();
    q.add_edge(a, b, tcp);
    q.add_edge(b, c, esp);
    q.add_edge(c, d, tcp);
    q
}

/// Storage contract of the trie: with a `[tcp, esp]` node feeding a
/// `[tcp, esp, tcp]` child, every tcp→esp partial is stored exactly once —
/// in the child's consume slot — while the child's parent-owned stages stay
/// empty and both prefix roots store nothing.
#[test]
fn nested_prefix_partials_are_stored_exactly_once() {
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();

    let mut proc = StreamProcessor::new(schema.clone()).with_statistics(false);
    proc.register(two_hop(&schema, "n1"), Strategy::SingleLazy, None)
        .unwrap();
    proc.register(two_hop(&schema, "n2"), Strategy::SingleLazy, None)
        .unwrap();
    proc.register(three_hop(&schema, "d1"), Strategy::SingleLazy, None)
        .unwrap();
    proc.register(three_hop(&schema, "d2"), Strategy::SingleLazy, None)
        .unwrap();

    // 20 disjoint tcp→esp pairs, none completed to three hops: every pair
    // is a live partial of both prefixes.
    for i in 0..20u64 {
        let v = 100 * i;
        proc.process(&EdgeEvent::homogeneous(v, v + 1, ip, tcp, Timestamp(2 * i)));
        proc.process(&EdgeEvent::homogeneous(
            v + 1,
            v + 2,
            ip,
            esp,
            Timestamp(2 * i + 1),
        ));
    }

    let stats = proc.shared_join_stats();
    assert_eq!(stats.tables, 2);
    assert_eq!(stats.max_depth, 3);
    assert_eq!(
        stats.parent_feeds, 20,
        "each pair completion must flow parent → child exactly once"
    );
    let nodes = proc.registry().shared_joins().trie_nodes();
    assert_eq!(nodes.len(), 2);
    let (shallow, deep) = (&nodes[0], &nodes[1]);
    assert_eq!(
        (shallow.depth, shallow.parent_depth, shallow.children),
        (2, None, 1)
    );
    assert_eq!((deep.depth, deep.parent_depth), (3, Some(2)));
    // Shallow node layout [leaf0, leaf1, root]: it owns the tcp and esp
    // leaf partials; its root (the [tcp,esp] completions) is emitted, never
    // stored.
    assert_eq!(shallow.live_by_node, vec![20, 20, 0]);
    // Deep node layout [leaf0, leaf1, leaf2, join(0..=1), root]: the
    // parent-owned stages (leaves 0 and 1) stay empty, the 20 fed pair
    // partials live only in the consume slot, its own rank-2 tcp leaf
    // keeps its partials, and the root again stores nothing.
    assert_eq!(deep.live_by_node, vec![0, 0, 20, 20, 0]);
}

/// A later shallow pair splits an existing trie edge *while partials are in
/// flight*: the depth-3 node keeps its live consume-slot and suffix
/// partials across the re-parenting (its parent-owned stages drop, the new
/// parent back-fills by replay), and the full scripted timeline reports the
/// same match multiset as the flat layout and as no join sharing at all.
#[test]
fn trie_edge_split_repoints_live_subscribers_with_partials_in_flight() {
    let schema = cyber_schema();
    let ip = schema.vertex_type("ip").unwrap();
    let tcp = schema.edge_type("tcp").unwrap();
    let esp = schema.edge_type("esp").unwrap();

    // Scripted timeline: the deep pair registers first, half the pairs
    // stream (live partials), the shallow pair registers mid-stream, the
    // remaining pairs and all completions follow.
    let run = |join_sharing: bool, trie: bool| {
        let mut proc = StreamProcessor::new(schema.clone())
            .with_statistics(false)
            .with_join_sharing(join_sharing)
            .with_join_trie(trie);
        let mut out: Vec<(usize, String)> = Vec::new();
        let mut ids: Vec<QueryId> = Vec::new();
        let mut collect = |ids: &[QueryId], matches: Vec<(QueryId, SubgraphMatch)>| {
            for (q, m) in matches {
                let slot = ids.iter().position(|&i| i == q).unwrap();
                out.push((slot, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
            }
        };
        ids.push(
            proc.register(three_hop(&schema, "d1"), Strategy::SingleLazy, None)
                .unwrap(),
        );
        ids.push(
            proc.register(three_hop(&schema, "d2"), Strategy::SingleLazy, None)
                .unwrap(),
        );
        for i in 0..15u64 {
            let v = 100 * i;
            let m = proc.process(&EdgeEvent::homogeneous(v, v + 1, ip, tcp, Timestamp(2 * i)));
            collect(&ids, m);
            let m = proc.process(&EdgeEvent::homogeneous(
                v + 1,
                v + 2,
                ip,
                esp,
                Timestamp(2 * i + 1),
            ));
            collect(&ids, m);
        }
        ids.push(
            proc.register(two_hop(&schema, "n1"), Strategy::SingleLazy, None)
                .unwrap(),
        );
        ids.push(
            proc.register(two_hop(&schema, "n2"), Strategy::SingleLazy, None)
                .unwrap(),
        );
        if join_sharing && trie {
            // The second shallow registration must have split the trie
            // edge: the depth-3 node now hangs off the fresh depth-2 node,
            // which was back-filled from the retained graph.
            let nodes = proc.registry().shared_joins().trie_nodes();
            assert_eq!(nodes.len(), 2);
            assert_eq!((nodes[0].depth, nodes[0].children), (2, 1));
            assert_eq!((nodes[1].depth, nodes[1].parent_depth), (3, Some(2)));
            assert!(
                proc.shared_join_stats().replays >= 1,
                "the split must back-fill the new parent"
            );
        }
        for i in 15..30u64 {
            let v = 100 * i;
            let m = proc.process(&EdgeEvent::homogeneous(v, v + 1, ip, tcp, Timestamp(2 * i)));
            collect(&ids, m);
            let m = proc.process(&EdgeEvent::homogeneous(
                v + 1,
                v + 2,
                ip,
                esp,
                Timestamp(2 * i + 1),
            ));
            collect(&ids, m);
        }
        for i in 0..30u64 {
            let v = 100 * i;
            let m = proc.process(&EdgeEvent::homogeneous(
                v + 2,
                v + 3,
                ip,
                tcp,
                Timestamp(100 + i),
            ));
            collect(&ids, m);
        }
        out.sort();
        out
    };

    let trie = run(true, true);
    let flat = run(true, false);
    let unshared = run(false, false);
    assert_eq!(trie, flat, "split/re-point diverged from flat tables");
    assert_eq!(trie, unshared, "split/re-point diverged from no sharing");
    // Every deep query completes all 30 chains (partials from before the
    // split included); the late shallow pair sees only the pairs completed
    // after its registration.
    let per_slot =
        |set: &[(usize, String)], slot: usize| set.iter().filter(|(s, _)| *s == slot).count();
    assert_eq!(per_slot(&trie, 0), 30);
    assert_eq!(per_slot(&trie, 1), 30);
    assert_eq!(per_slot(&trie, 2), 15);
    assert_eq!(per_slot(&trie, 3), 15);
}
