//! Shared-leaf evaluation: equivalence and lifecycle.
//!
//! The refactor's contract is that sharing is *semantics-preserving*: for
//! any strategy, window mix and worker count, the reported `(query, match)`
//! multiset is identical with sharing enabled, with sharing disabled, and
//! against the pre-sharing architecture of one independent single-query
//! processor per pattern. The lifecycle tests cover mid-stream subscription
//! churn: a late subscriber to an existing leaf shape must not see
//! pre-registration matches, and the last unsubscriber drops the shared
//! entry.

use sp_datasets::NetflowConfig;
use sp_graph::{EdgeEvent, Timestamp};
use sp_query::QueryGraph;
use sp_runtime::{ParallelStreamProcessor, RuntimeConfig};
use streampattern::{
    FnSink, QueryId, Schema, Strategy, StrategySpec, StreamProcessor, SubgraphMatch,
};

/// An overlapping netflow rule pack (shared TCP / ICMP / ESP leaves) with a
/// mix of per-query windows.
fn pack(schema: &Schema) -> Vec<(QueryGraph, Option<u64>)> {
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, schema.edge_type(p).unwrap());
            prev = next;
        }
        q
    };
    vec![
        (chain("scan", &["ICMP", "TCP"]), Some(2_000)),
        (chain("exfil", &["TCP", "ESP"]), Some(5_000)),
        (chain("exfil-wide", &["TCP", "ESP"]), None),
        (chain("relay", &["TCP", "TCP"]), Some(1_000)),
        (chain("bounce", &["TCP", "ESP", "TCP"]), Some(5_000)),
    ]
}

/// Sorted `(query slot, match fingerprint)` multiset of a full run.
fn multiset_of<F>(mut process_all: F) -> Vec<(usize, String)>
where
    F: FnMut(&mut dyn FnMut(usize, SubgraphMatch)),
{
    let mut out = Vec::new();
    process_all(&mut |slot, m| {
        out.push((slot, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
    });
    out.sort();
    out
}

#[test]
fn sharing_is_semantics_preserving_across_strategies_and_windows() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    let specs: [StrategySpec; 5] = [
        Strategy::Single.into(),
        Strategy::SingleLazy.into(),
        Strategy::Path.into(),
        Strategy::PathLazy.into(),
        StrategySpec::Auto,
    ];
    for spec in specs {
        let run_shared_graph = |sharing: bool| {
            let mut proc = StreamProcessor::new(schema.clone())
                .with_estimator(estimator.clone())
                .with_statistics(false)
                .with_sharing(sharing);
            let ids: Vec<QueryId> = rules
                .iter()
                .map(|(q, w)| proc.register(q.clone(), spec, *w).unwrap())
                .collect();
            let stats = proc.shared_leaf_stats();
            let multiset = multiset_of(|emit| {
                let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                    let slot = ids.iter().position(|&i| i == q).unwrap();
                    emit(slot, m);
                });
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            });
            (multiset, stats, proc.shared_leaf_stats())
        };
        let (with_sharing, before, after) = run_shared_graph(true);
        let (without_sharing, _, _) = run_shared_graph(false);
        assert_eq!(
            with_sharing, without_sharing,
            "sharing on/off multisets diverge under {spec:?}"
        );
        assert!(!with_sharing.is_empty(), "workload found no matches");
        // The pack genuinely shares: fewer shapes than subscriptions, and the
        // run eliminated searches (counted only while sharing was on).
        assert!(before.distinct_leaves < before.total_subscriptions);
        assert!(
            after.searches_shared > 0,
            "no searches eliminated under {spec:?}"
        );

        // PR-1 architecture: one independent single-query processor per
        // rule, no shared graph, no shared leaves.
        let independent = multiset_of(|emit| {
            for (slot, (q, w)) in rules.iter().enumerate() {
                let mut proc = StreamProcessor::new(schema.clone())
                    .with_estimator(estimator.clone())
                    .with_statistics(false)
                    .with_sharing(false);
                proc.register(q.clone(), spec, *w).unwrap();
                let mut sink = FnSink(|_q: QueryId, m: SubgraphMatch| emit(slot, m));
                for ev in dataset.events() {
                    proc.process_into(ev, &mut sink);
                }
            }
        });
        assert_eq!(
            with_sharing, independent,
            "shared execution diverges from independent processors under {spec:?}"
        );
    }
}

#[test]
fn sharing_matches_parallel_runtime_across_worker_counts() {
    let dataset = NetflowConfig {
        num_hosts: 300,
        num_edges: 2_500,
        ..NetflowConfig::tiny()
    }
    .generate();
    let schema = dataset.schema.clone();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let rules = pack(&schema);

    // Sequential reference with sharing enabled.
    let mut seq = StreamProcessor::new(schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    let seq_ids: Vec<QueryId> = rules
        .iter()
        .map(|(q, w)| seq.register(q.clone(), Strategy::SingleLazy, *w).unwrap())
        .collect();
    let expected = multiset_of(|emit| {
        let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
            emit(seq_ids.iter().position(|&i| i == q).unwrap(), m);
        });
        for ev in dataset.events() {
            seq.process_into(ev, &mut sink);
        }
    });
    assert!(seq.shared_leaf_stats().searches_shared > 0);

    // Each worker's registry shares leaves among the queries on its shard;
    // the multiset must match the sequential run for every worker count.
    for workers in [1usize, 2, 4] {
        let mut runtime = ParallelStreamProcessor::new(
            schema.clone(),
            RuntimeConfig::with_workers(workers).statistics(false),
        )
        .with_estimator(estimator.clone());
        let ids: Vec<QueryId> = rules
            .iter()
            .map(|(q, w)| {
                runtime
                    .register(q.clone(), Strategy::SingleLazy, *w)
                    .unwrap()
            })
            .collect();
        let got = multiset_of(|emit| {
            let mut sink = FnSink(|q: QueryId, m: SubgraphMatch| {
                emit(ids.iter().position(|&i| i == q).unwrap(), m);
            });
            runtime.process_all_into(dataset.events().iter(), &mut sink);
        });
        assert_eq!(got, expected, "multiset diverged at {workers} workers");
    }
}

#[test]
fn late_subscriber_to_an_existing_leaf_sees_only_post_registration_matches() {
    let mut schema = Schema::new();
    let ip = schema.intern_vertex_type("ip");
    let tcp = schema.intern_edge_type("tcp");
    let esp = schema.intern_edge_type("esp");
    let two_hop = |name: &str| {
        let mut q = QueryGraph::new(name);
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(b, c, esp);
        q
    };
    // A deterministic stream with a tcp→esp completion in each half.
    let events: Vec<EdgeEvent> = (0..40u64)
        .map(|i| {
            let t = if i % 4 == 3 { esp } else { tcp };
            EdgeEvent::homogeneous(i, i + 1, ip, t, Timestamp(i))
        })
        .collect();
    let half = events.len() / 2;

    let mut proc = StreamProcessor::new(schema.clone());
    let early = proc
        .register(two_hop("early"), Strategy::SingleLazy, None)
        .unwrap();
    let mut early_first_half = 0u64;
    for ev in &events[..half] {
        early_first_half += proc.process(ev).iter().filter(|(q, _)| *q == early).count() as u64;
    }
    assert!(early_first_half > 0, "first half produced no matches");

    // The late query subscribes to the *same* leaf shapes: the index gains
    // subscriptions but no new distinct shapes.
    let before = proc.shared_leaf_stats();
    let late = proc
        .register(two_hop("late"), Strategy::SingleLazy, None)
        .unwrap();
    let after = proc.shared_leaf_stats();
    assert_eq!(after.distinct_leaves, before.distinct_leaves);
    assert_eq!(
        after.total_subscriptions,
        before.total_subscriptions + 2,
        "the late query must join the existing shapes"
    );

    let mut early_second_half = 0u64;
    let mut late_second_half = 0u64;
    for ev in &events[half..] {
        for (q, _) in proc.process(ev) {
            if q == late {
                late_second_half += 1;
            } else {
                early_second_half += 1;
            }
        }
    }
    // Reference: a fresh processor that sees only the second half. The late
    // subscriber must report exactly these matches — nothing inherited from
    // the shared shapes' earlier activity.
    let mut fresh = StreamProcessor::new(schema.clone());
    let fresh_id = fresh
        .register(two_hop("fresh"), Strategy::SingleLazy, None)
        .unwrap();
    let mut fresh_matches = 0u64;
    for ev in &events[half..] {
        fresh_matches += fresh
            .process(ev)
            .iter()
            .filter(|(q, _)| *q == fresh_id)
            .count() as u64;
    }
    assert_eq!(
        late_second_half, fresh_matches,
        "late subscriber saw pre-registration history"
    );
    // The early query keeps joining across the registration boundary, so it
    // sees at least as much as the late one.
    assert!(early_second_half >= late_second_half);

    // Unsubscription: the shapes survive while any subscriber remains and
    // drop with the last one.
    proc.deregister(early).unwrap();
    let stats = proc.shared_leaf_stats();
    assert_eq!(
        stats.distinct_leaves, 2,
        "late query still holds both shapes"
    );
    assert_eq!(stats.shared_queries, 1);
    proc.deregister(late).unwrap();
    let stats = proc.shared_leaf_stats();
    assert_eq!(
        stats.distinct_leaves, 0,
        "last unsubscriber must drop the entry"
    );
    assert_eq!(stats.total_subscriptions, 0);
    assert_eq!(stats.shared_queries, 0);
}
