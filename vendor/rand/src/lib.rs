//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API the workspace's synthetic
//! generators use: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension trait with `gen_range` / `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! which is all the dataset generators require.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        next_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding trait; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo sampling: the bias is negligible for the spans the
                // generators use (far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * (next_f64(rng) as $t)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64, used to expand the 64-bit seed into the full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `StdRng` also works.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        use super::RngCore;
        let a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0u64..5);
            assert!(v < 5);
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
