//! Minimal, dependency-free stand-in for the `serde_json` crate, built on the
//! workspace's offline `serde` stand-in. Provides the `to_string` /
//! `to_string_pretty` / `from_str` entry points the workspace uses.

use serde::ser::to_value;
use serde::{Deserialize, Serialize};

pub use serde::Error;
pub use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::to_compact_string(&to_value(value)?))
}

/// Serializes a value to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::json::to_pretty_string(&to_value(value)?))
}

/// Parses a JSON string into a value of type `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let value = serde::json::parse(s)?;
    serde::de::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_roundtrip() {
        let json = to_string(&42u64).unwrap();
        assert_eq!(json, "42");
        assert_eq!(from_str::<u64>(&json).unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(7u32, "seven".to_owned());
        let back: HashMap<u32, String> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);

        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u8, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u8>>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_parse_to_non_bmp_chars() {
        // The escaping upstream serde_json emits for non-BMP characters.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        // Unpaired or malformed surrogates are rejected.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
        // Our own serializer emits raw UTF-8, which round-trips too.
        let s = "emoji: 😀".to_owned();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
