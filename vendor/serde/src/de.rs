//! Deserialization traits and the canonical value-reading deserializer.

use crate::error::Error;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// A type that can be reconstructed from a [`Value`] through any
/// [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The deserializer contract: hand over the underlying [`Value`].
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: From<Error>;

    /// Consumes the deserializer, yielding the value it wraps.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// The canonical deserializer: wraps an owned [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps an owned value.
    pub fn new(value: Value) -> Self {
        Self { value }
    }

    /// Clones a borrowed value into a deserializer.
    pub fn from_ref(value: &Value) -> Self {
        Self {
            value: value.clone(),
        }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

/// Deserializes any owned type from a borrowed [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::from_ref(value))
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n)
                    .map_err(|_| D::Error::from(Error::custom("integer out of range")))
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n)
                    .map_err(|_| D::Error::from(Error::custom("integer out of range")))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        match v.as_f64() {
            Some(f) => Ok(f),
            None => Err(D::Error::from(type_error::<f64>("number", &v).unwrap_err())),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(d)? as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        match v.as_bool() {
            Some(b) => Ok(b),
            None => Err(D::Error::from(type_error::<bool>("bool", &v).unwrap_err())),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        match v {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::from(
                type_error::<String>("string", &other).unwrap_err(),
            )),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.into_value()
    }
}

impl<'de, T: for<'de2> Deserialize<'de2>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(from_value(&other)?)),
        }
    }
}

fn value_to_seq<T: for<'de> Deserialize<'de>>(v: &Value) -> Result<Vec<T>, Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
    items.iter().map(from_value).collect()
}

impl<'de, T: for<'de2> Deserialize<'de2>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        Ok(value_to_seq(&v)?)
    }
}

impl<'de, T: for<'de2> Deserialize<'de2> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        Ok(value_to_seq::<T>(&v)?.into_iter().collect())
    }
}

impl<'de, T: for<'de2> Deserialize<'de2> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        Ok(value_to_seq::<T>(&v)?.into_iter().collect())
    }
}

/// Reverses [`crate::ser::key_to_string`]: try the raw string first, then its
/// JSON parse (numbers, embedded structured keys).
fn key_from_string<K: for<'de> Deserialize<'de>>(key: &str) -> Result<K, Error> {
    if let Ok(k) = from_value::<K>(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    let parsed = crate::json::parse(key)
        .map_err(|e| Error::custom(format!("cannot parse map key '{key}': {e}")))?;
    from_value(&parsed)
}

fn value_to_map_entries<K, V>(v: &Value) -> Result<Vec<(K, V)>, Error>
where
    K: for<'de> Deserialize<'de>,
    V: for<'de> Deserialize<'de>,
{
    let entries = v
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
    entries
        .iter()
        .map(|(k, val)| Ok((key_from_string(k)?, from_value(val)?)))
        .collect()
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: for<'de2> Deserialize<'de2> + Eq + Hash,
    V: for<'de2> Deserialize<'de2>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        Ok(value_to_map_entries::<K, V>(&v)?.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'de2> Deserialize<'de2> + Ord,
    V: for<'de2> Deserialize<'de2>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.into_value()?;
        Ok(value_to_map_entries::<K, V>(&v)?.into_iter().collect())
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+) => {$(
        impl<'de, $($t: for<'de2> Deserialize<'de2>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.into_value()?;
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
                if items.len() != $len {
                    return Err(D::Error::from(Error::custom(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        items.len()
                    ))));
                }
                Ok(($(from_value::<$t>(&items[$n])?,)+))
            }
        }
    )+};
}
impl_deserialize_tuple!(
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 Dd)
);
