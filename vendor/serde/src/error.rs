//! The single error type shared by serialization and deserialization.

use std::fmt;

/// Serialization / deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
