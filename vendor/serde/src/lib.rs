//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! This workspace builds in fully offline environments, so it cannot pull the
//! real `serde` from crates.io. This crate implements the small slice of the
//! serde API surface the workspace actually uses — `Serialize` /
//! `Deserialize` derives for plain structs and enums, `#[serde(skip)]`,
//! `#[serde(with = "module")]`, and the generic `Serializer` /
//! `Deserializer` trait shapes — on top of a simple JSON-like [`Value`]
//! model. It is intentionally NOT wire-compatible with upstream serde; it
//! only guarantees self-consistent round trips within this workspace.

pub mod de;
mod error;
pub mod json;
pub mod ser;
mod value;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, Deserializer, ValueDeserializer};
pub use error::Error;
pub use ser::{Serialize, Serializer, ValueSerializer};
pub use value::Value;

// Re-export the derive macros under the same names as the traits, mirroring
// serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
