//! Serialization traits and the canonical value-building serializer.

use crate::error::Error;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A type that can be serialized into a [`Value`] through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The serializer contract. Unlike upstream serde the data model is
/// value-based: every method defaults to building a [`Value`] and handing it
/// to [`Serializer::serialize_value`].
pub trait Serializer: Sized {
    /// The output type.
    type Ok;
    /// The error type.
    type Error: From<Error>;

    /// Consumes a fully built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::UInt(v))
    }
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_value(Value::UInt(v as u64))
        } else {
            self.serialize_value(Value::Int(v))
        }
    }
    /// Serializes a floating point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }
    /// Serializes a unit (`null`).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
    /// Serializes `None` (`null`).
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
    /// Serializes `Some(value)` transparently.
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
        let value = to_value(v)?;
        self.serialize_value(value)
    }
}

/// The canonical serializer: produces a [`Value`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Serializes any value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    v.serialize(ValueSerializer)
}

/// Renders a map key. String and numeric keys use their plain form (matching
/// serde_json); any other key is embedded as its compact JSON encoding.
pub(crate) fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::UInt(v) => v.to_string(),
        Value::Int(v) => v.to_string(),
        Value::Float(v) => v.to_string(),
        Value::Bool(b) => b.to_string(),
        other => crate::json::to_compact_string(other),
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Result<Value, Error> {
    let mut out = Vec::new();
    for item in items {
        out.push(to_value(item)?);
    }
    Ok(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<Value, Error> {
    let mut out = Vec::new();
    for (k, v) in entries {
        out.push((key_to_string(&to_value(k)?), to_value(v)?));
    }
    Ok(Value::Object(out))
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value(self.iter())?;
        serializer.serialize_value(v)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$n)?),+];
                serializer.serialize_value(Value::Array(items))
            }
        }
    )+};
}
impl_serialize_tuple!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);
