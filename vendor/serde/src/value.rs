//! The JSON-like value tree every (de)serialization goes through.

/// A dynamically typed value. Integers keep their signedness so `u64::MAX`
/// round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Interprets the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Interprets the value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Interprets the value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets the value as object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
