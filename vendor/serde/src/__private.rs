//! Helpers used by the generated code of the `serde_derive` stand-in. Not a
//! stable API.

use crate::de::{from_value, Deserialize, ValueDeserializer};
use crate::error::Error;
use crate::ser::{to_value, Serialize, ValueSerializer};
use crate::value::Value;

/// Builds the object value of a derived struct serialization.
#[derive(Debug, Default)]
pub struct StructBuilder {
    entries: Vec<(String, Value)>,
}

impl StructBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serializes one field.
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &'static str, v: &T) -> Result<(), Error> {
        self.entries.push((name.to_owned(), to_value(v)?));
        Ok(())
    }

    /// Serializes one `#[serde(with = "module")]` field through the module's
    /// `serialize` function.
    pub fn field_with<F>(&mut self, name: &'static str, f: F) -> Result<(), Error>
    where
        F: FnOnce(ValueSerializer) -> Result<Value, Error>,
    {
        self.entries.push((name.to_owned(), f(ValueSerializer)?));
        Ok(())
    }

    /// Finishes the object.
    pub fn finish(self) -> Value {
        Value::Object(self.entries)
    }
}

/// Reads the fields of a derived struct deserialization.
#[derive(Debug)]
pub struct StructReader<'a> {
    entries: &'a [(String, Value)],
}

impl<'a> StructReader<'a> {
    /// Wraps an object value.
    pub fn new(v: &'a Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", v.kind())))?;
        Ok(Self { entries })
    }

    fn lookup(&self, name: &str) -> Result<&'a Value, Error> {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field '{name}'")))
    }

    /// Deserializes one field.
    pub fn field<T: for<'de> Deserialize<'de>>(&self, name: &str) -> Result<T, Error> {
        from_value(self.lookup(name)?)
    }

    /// Deserializes one `#[serde(with = "module")]` field through the
    /// module's `deserialize` function.
    pub fn field_with<T, F>(&self, name: &str, f: F) -> Result<T, Error>
    where
        F: FnOnce(ValueDeserializer) -> Result<T, Error>,
    {
        f(ValueDeserializer::from_ref(self.lookup(name)?))
    }
}

/// Serializes a value into the [`Value`] tree (re-export for generated code).
pub fn ser<T: Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    to_value(v)
}

/// Deserializes a value from the [`Value`] tree (re-export for generated
/// code).
pub fn de<T: for<'de> Deserialize<'de>>(v: &Value) -> Result<T, Error> {
    from_value(v)
}

/// Builds the externally tagged encoding of a data-carrying enum variant.
pub fn tagged(variant: &str, payload: Value) -> Value {
    Value::Object(vec![(variant.to_owned(), payload)])
}

/// Splits an enum value into `(variant name, optional payload)`: a plain
/// string is a unit variant, a single-entry object is a data variant.
pub fn variant_parts(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Object(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(Error::custom(format!(
            "expected enum representation, got {}",
            other.kind()
        ))),
    }
}

/// Extracts the elements of a fixed-length array value.
pub fn seq(v: &Value, expected: usize) -> Result<&[Value], Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
    if items.len() != expected {
        return Err(Error::custom(format!(
            "expected {expected} elements, got {}",
            items.len()
        )));
    }
    Ok(items)
}
