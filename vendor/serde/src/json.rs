//! JSON rendering and parsing of the [`Value`] tree. The `serde_json`
//! stand-in crate wraps these functions.

use crate::error::Error;
use crate::value::Value;
use std::fmt::Write as _;

/// Renders a value as compact JSON.
pub fn to_compact_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_pretty_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Float(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip float formatting; force a decimal
                // point so the value parses back as a float.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    /// Reads four hex digits starting at byte offset `at`.
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let code = self.read_hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: JSON escapes non-BMP
                                // characters as a \u pair.
                                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                                {
                                    return Err(Error::custom("unpaired surrogate in \\u escape"));
                                }
                                let low = self.read_hex4(self.pos + 7)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::custom(
                                        "invalid low surrogate in \\u escape",
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                                );
                                self.pos += 10;
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))?;
            Ok(Value::Float(f))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom(format!("invalid number '{text}'"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom(format!("invalid number '{text}'"))),
            }
        }
    }
}
