//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds fully offline, so the real criterion cannot be
//! fetched. This stub keeps the `benches/` targets compiling and gives
//! `cargo bench` rough wall-clock numbers: every benchmark runs a short fixed
//! schedule (one warm-up call plus a few timed samples) and prints the median
//! per-iteration time. It makes no statistical claims.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

/// Number of timed samples per benchmark.
const SAMPLES: usize = 3;

impl Bencher {
    /// Runs the routine once to warm up, then a few timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn report(group: &str, id: &str, bencher: &mut Bencher) {
    match bencher.median() {
        Some(t) => println!("bench {group}/{id}: {t:?} per iteration (median of {SAMPLES})"),
        None => println!("bench {group}/{id}: no samples recorded"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's sample schedule is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub does a single warm-up call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub's sample schedule is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; recorded nowhere.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&self.name, &id.to_string(), &mut b);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.to_string(), &mut b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report("bench", id, &mut b);
        self
    }
}

/// Declares a group function that runs each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
