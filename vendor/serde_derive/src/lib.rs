//! Derive macros for the workspace's offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (no crates.io access): the item token
//! stream is parsed by hand. Supported shapes — everything this workspace
//! derives on:
//!
//! * structs with named fields, honoring `#[serde(skip)]` and
//!   `#[serde(with = "module")]` field attributes;
//! * tuple structs (newtype structs serialize transparently);
//! * enums whose variants are unit or tuple variants.
//!
//! Generics, struct variants and container-level serde attributes are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
    with: Option<String>,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Ser => gen_serialize(&name, &shape),
                Mode::De => gen_deserialize(&name, &shape),
            };
            match code.parse() {
                Ok(ts) => ts,
                Err(e) => compile_error(&format!("serde_derive generated invalid code: {e}")),
            }
        }
        Err(msg) => compile_error(&msg),
    }
}

// ---------------------------------------------------------------------------
// Token-level item parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the offline serde stand-in"
        ));
    }

    let shape = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_top_level_segments(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        _ => return Err(format!("serde_derive: unsupported item shape for `{name}`")),
    };
    Ok((name, shape))
}

/// Skips a run of outer attributes (`#[...]`) starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

/// Skips `pub` / `pub(...)` starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Collects `#[serde(...)]` directives from a run of attributes, advancing
/// `*i` past all attributes.
fn collect_serde_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
) -> Result<(bool, Option<String>), String> {
    let mut skip = false;
    let mut with = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let Some(TokenTree::Group(attr)) = tokens.get(*i) else {
            return Err("serde_derive: malformed attribute".into());
        };
        *i += 1;
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            match &args[j] {
                TokenTree::Ident(id) if id.to_string() == "skip" => {
                    skip = true;
                    j += 1;
                }
                TokenTree::Ident(id) if id.to_string() == "with" => {
                    // with = "module::path"
                    let Some(TokenTree::Literal(lit)) = args.get(j + 2) else {
                        return Err("serde_derive: `with` expects a string literal".into());
                    };
                    let text = lit.to_string();
                    with = Some(text.trim_matches('"').to_owned());
                    j += 3;
                }
                TokenTree::Punct(_) => j += 1,
                other => {
                    return Err(format!(
                        "serde_derive: unsupported serde attribute `{other}`"
                    ));
                }
            }
        }
    }
    Ok((skip, with))
}

/// Parses the fields of a braced struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, with) = collect_serde_attrs(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive: expected ':' after field `{name}`")),
        }
        // Skip the type: everything up to the next comma at angle-depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, skip, with });
    }
    Ok(fields)
}

/// Counts comma-separated segments at angle-depth 0 (tuple struct / tuple
/// variant field count).
fn count_top_level_segments(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut last_was_comma = false;
    for tok in &tokens {
        last_was_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = collect_serde_attrs(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let mut arity = 0;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_segments(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{name}` is not supported by the offline serde stand-in"
                ));
            }
            _ => {}
        }
        // Skip an optional discriminant `= expr` up to the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    // `?` converts the builder's `serde::Error` into `__S::Error` through the
    // `Error: From<serde::Error>` bound on the `Serializer` trait.
    let body = match shape {
        Shape::Unit => "__s.serialize_unit()".to_owned(),
        Shape::Tuple(1) => "::serde::ser::Serialize::serialize(&self.0, __s)".to_owned(),
        Shape::Tuple(n) => {
            let mut code = String::from("let mut __items = ::std::vec::Vec::new();\n");
            for k in 0..*n {
                code.push_str(&format!(
                    "__items.push(::serde::__private::ser(&self.{k})?);\n"
                ));
            }
            code.push_str("__s.serialize_value(::serde::Value::Array(__items))");
            code
        }
        Shape::Named(fields) => {
            let mut code = String::from(
                "#[allow(unused_mut)] let mut __b = ::serde::__private::StructBuilder::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = &f.name;
                match &f.with {
                    Some(path) => code.push_str(&format!(
                        "__b.field_with(\"{fname}\", |__vs| {path}::serialize(&self.{fname}, __vs))?;\n"
                    )),
                    None => code.push_str(&format!(
                        "__b.field(\"{fname}\", &self.{fname})?;\n"
                    )),
                }
            }
            code.push_str("__s.serialize_value(__b.finish())");
            code
        }
        Shape::Enum(variants) => {
            let mut code = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    code.push_str(&format!(
                        "{name}::{vname} => __s.serialize_str(\"{vname}\"),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..v.arity).map(|k| format!("__f{k}")).collect();
                    let payload = if v.arity == 1 {
                        "::serde::__private::ser(__f0)?".to_owned()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::__private::ser({b})?"))
                            .collect();
                        format!("::serde::Value::Array(vec![{}])", items.join(", "))
                    };
                    code.push_str(&format!(
                        "{name}::{vname}({}) => {{ let __payload = {payload}; __s.serialize_value(::serde::__private::tagged(\"{vname}\", __payload)) }}\n",
                        binds.join(", ")
                    ));
                }
            }
            code.push('}');
            code
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __s: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    // As in `gen_serialize`, `?` converts `serde::Error` into `__D::Error`
    // through the `Error: From<serde::Error>` bound on `Deserializer`.
    let body = match shape {
        Shape::Unit => format!("let _ = __d.into_value()?; ::core::result::Result::Ok({name})"),
        Shape::Tuple(1) => format!(
            "let __v = __d.into_value()?;\n\
             ::core::result::Result::Ok({name}(::serde::__private::de(&__v)?))"
        ),
        Shape::Tuple(n) => {
            let mut code = String::from("let __v = __d.into_value()?;\n");
            code.push_str(&format!(
                "let __items = ::serde::__private::seq(&__v, {n})?;\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::__private::de(&__items[{k}])?"))
                .collect();
            code.push_str(&format!(
                "::core::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            code
        }
        Shape::Named(fields) => {
            let mut code = String::from("let __v = __d.into_value()?;\n");
            code.push_str("let __r = ::serde::__private::StructReader::new(&__v)?;\n");
            code.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    code.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
                } else if let Some(path) = &f.with {
                    code.push_str(&format!(
                        "{fname}: __r.field_with(\"{fname}\", |__vd| {path}::deserialize(__vd))?,\n"
                    ));
                } else {
                    code.push_str(&format!("{fname}: __r.field(\"{fname}\")?,\n"));
                }
            }
            code.push_str("})");
            code
        }
        Shape::Enum(variants) => {
            let mut code = String::from("let __v = __d.into_value()?;\n");
            code.push_str("let (__tag, __payload) = ::serde::__private::variant_parts(&__v)?;\n");
            code.push_str("match __tag {\n");
            for v in variants {
                let vname = &v.name;
                if v.arity == 0 {
                    code.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    ));
                } else {
                    let mut arm = format!(
                        "\"{vname}\" => {{\n\
                         let __p = __payload.ok_or_else(|| ::serde::Error::custom(\"variant {vname} expects data\"))?;\n"
                    );
                    if v.arity == 1 {
                        arm.push_str(&format!(
                            "::core::result::Result::Ok({name}::{vname}(::serde::__private::de(__p)?))\n"
                        ));
                    } else {
                        arm.push_str(&format!(
                            "let __items = ::serde::__private::seq(__p, {})?;\n",
                            v.arity
                        ));
                        let items: Vec<String> = (0..v.arity)
                            .map(|k| format!("::serde::__private::de(&__items[{k}])?"))
                            .collect();
                        arm.push_str(&format!(
                            "::core::result::Result::Ok({name}::{vname}({}))\n",
                            items.join(", ")
                        ));
                    }
                    arm.push_str("}\n");
                    code.push_str(&arm);
                }
            }
            code.push_str(&format!(
                "__other => ::core::result::Result::Err(::core::convert::From::from(::serde::Error::custom(::std::format!(\"unknown variant '{{}}' of {name}\", __other)))),\n"
            ));
            code.push('}');
            code
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
