//! The continuous query engine: Algorithms 1–3 of the paper.
//!
//! [`ContinuousQueryEngine`] is constructed once per registered query and
//! invoked once per streaming edge (after the edge has been added to the
//! data graph). Depending on the [`Strategy`] it either:
//!
//! * runs the SJ-Tree search — for each leaf (in selectivity order), perform
//!   an anchored subgraph-isomorphism search around the new edge, insert the
//!   discovered matches into the match store, and let the recursive hash
//!   join propagate larger matches towards the root (Algorithms 1–2). With
//!   Lazy Search enabled, leaves other than the most selective one are only
//!   searched around vertices whose bitmap bit is set, and enabling a bit
//!   triggers a retroactive neighborhood search so that the result does not
//!   depend on the arrival order of the query's components (Algorithm 3);
//! * or runs the non-incremental baseline — a full VF2 enumeration of the
//!   query over the current graph, filtered to embeddings that use the new
//!   edge (Section 6's comparison baseline).

use crate::error::EngineError;
use crate::lazy::{LazyBitmap, MAX_LEAVES};
use crate::profile::ProfileCounters;
use crate::strategy::Strategy;
use sp_graph::{DynamicGraph, EdgeData, EdgeType, VertexId};
use sp_iso::{
    find_matches_around_vertex_into, find_matches_containing_edge_into, SearchScratch,
    SubgraphMatch, Vf2Matcher,
};
use sp_query::QueryGraph;
use sp_query::QuerySubgraph;
use sp_selectivity::SelectivityEstimator;
use sp_sjtree::{decompose, InsertTrace, MatchStore, NodeId, SjTree, StoreStats};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The shared leaf-search stage's verdict for one gate-passing leaf of one
/// engine on one edge.
#[derive(Debug, Clone)]
pub enum LeafFanout {
    /// The anchored search ran (or was memoized) centrally; here are its
    /// results, already rebased onto this engine's numbering.
    Prepared(PreparedLeaf),
    /// This engine is the leaf shape's only subscriber, so there is nothing
    /// to share: the engine runs its own anchored search, exactly as the
    /// standalone path would — no canonicalized search, no rebase clone.
    SearchLocally,
}

/// Leaf matches prepared by the shared leaf-search stage
/// ([`SharedLeafIndex`](crate::SharedLeafIndex)) for one gate-passing leaf of
/// one engine: the anchored-search results, already rebased onto this
/// engine's vertex/edge numbering.
#[derive(Debug, Clone)]
pub struct PreparedLeaf {
    /// The rebased matches the anchored search found (possibly empty).
    pub matches: Vec<SubgraphMatch>,
    /// Wall time of the underlying shared search, charged to exactly one of
    /// its consumers (`None` for all others, and for leaves whose edge types
    /// cannot contain the streaming edge).
    pub charged: Option<Duration>,
    /// `true` when the search had already run for another subscriber of the
    /// same canonical leaf this edge — i.e. this engine's own search was
    /// eliminated by sharing.
    pub shared: bool,
}

/// Prefix-root matches prepared by the shared join stage
/// ([`SharedJoinIndex`](crate::SharedJoinIndex)) for one engine on one edge:
/// the canonical prefix table's new root joins, already rebased onto this
/// engine's numbering, window-filtered against its `tW`, and
/// boundary-filtered against its subscription point.
#[derive(Debug, Clone)]
pub struct PrefixFeed {
    /// Number of leading leaves (selectivity ranks `0..depth`) the shared
    /// prefix covers. The engine skips those leaves entirely — their
    /// searches, inserts and joins ran once registry-wide — and consumes
    /// `matches` as inserts at its internal node covering them (or directly
    /// as complete matches when the prefix spans the whole tree).
    pub depth: usize,
    /// The rebased prefix-root matches this edge created (possibly empty —
    /// the engine must still skip the prefix leaves).
    pub matches: Vec<SubgraphMatch>,
    /// `true` when the prefix table has other live subscribers, i.e. this
    /// engine's prefix work was genuinely deduplicated this edge.
    pub shared: bool,
}

/// Reusable per-engine buffers for the per-edge hot path. Owned by the
/// engine so every processed edge reuses the capacity the previous edges
/// grew: the anchored-search scratch, the search-result staging buffer, the
/// join worklist, the insert trace, and the (rare-path) enablement
/// propagation buffers. Dropping the scratch
/// ([`ContinuousQueryEngine::release_scratch`]) changes nothing but
/// allocator traffic — every buffer is fully drained or cleared between
/// edges.
#[derive(Debug, Clone, Default)]
struct EngineScratch {
    /// Working state of the anchored subgraph-isomorphism searches.
    search: SearchScratch,
    /// Results of the most recent anchored search, drained into `worklist`.
    found: Vec<SubgraphMatch>,
    /// Pending `(tree node, match)` insertions; always empty between edges.
    worklist: VecDeque<(NodeId, SubgraphMatch)>,
    /// Newly stored matches of one `insert_traced` call (Lazy Search
    /// enablement), as a flat node/vertex record — the enablement loop only
    /// needs each new match's bound data vertices, so the trace never clones
    /// a match (which would heap-allocate for spilled widths). Cleared per
    /// worklist item.
    trace: InsertTrace,
    /// Edge types of a multi-edge leaf (enablement propagation).
    leaf_types: Vec<EdgeType>,
    /// One-hop neighbors to propagate enablement to.
    neighbors: Vec<VertexId>,
}

/// Enables search for a leaf around `v`. On a fresh 0→1 transition, performs
/// the retroactive neighborhood probe the paper mandates ("whenever we enable
/// the search on a node in the data graph, we also perform a subgraph search
/// around the node", Section 4), leaving its results in `found` (cleared
/// first), and returns `true`; returns `false` when the bit was already set
/// (the probe already ran when it was set — `found` is untouched).
#[allow(clippy::too_many_arguments)]
fn enable_with_probe(
    bitmap: &mut LazyBitmap,
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    v: VertexId,
    rank: usize,
    profile: &mut ProfileCounters,
    search: &mut SearchScratch,
    found: &mut Vec<SubgraphMatch>,
) -> bool {
    if !bitmap.enable(v, rank) {
        return false;
    }
    let t = Instant::now();
    found.clear();
    find_matches_around_vertex_into(graph, query, subgraph, v, search, found);
    profile.iso_time += t.elapsed();
    profile.retroactive_searches += 1;
    profile.leaf_matches += found.len() as u64;
    true
}

/// Structural equality of two query graphs (same vertices with the same
/// type constraints, same edges in the same order): the precondition for
/// swapping one decomposition for another.
fn same_query(a: &QueryGraph, b: &QueryGraph) -> bool {
    a.num_vertices() == b.num_vertices()
        && a.num_edges() == b.num_edges()
        && a.vertices()
            .zip(b.vertices())
            .all(|((_, x), (_, y))| x.vertex_type == y.vertex_type)
        && a.edges()
            .zip(b.edges())
            .all(|(x, y)| x.src == y.src && x.dst == y.dst && x.edge_type == y.edge_type)
}

/// Execution backend: either the SJ-Tree machinery or the VF2 baseline.
#[derive(Debug, Clone)]
enum Backend {
    SjTree {
        tree: SjTree,
        store: MatchStore,
        lazy: bool,
        bitmap: LazyBitmap,
    },
    Vf2 {
        matcher: Vf2Matcher,
        whole: QuerySubgraph,
    },
}

/// A registered continuous query and its runtime state.
#[derive(Debug, Clone)]
pub struct ContinuousQueryEngine {
    query: QueryGraph,
    strategy: Strategy,
    window: Option<u64>,
    backend: Backend,
    /// Whether the match store interns partial matches as fixed-width arena
    /// rows (the default) or keeps materialized `SubgraphMatch` buckets.
    /// Carried on the engine so a rebuild reconstructs the same backing.
    match_interning: bool,
    profile: ProfileCounters,
    /// Reusable hot-path buffers; semantically invisible (always drained
    /// between edges), kept so steady-state processing is allocation-free.
    scratch: EngineScratch,
}

impl ContinuousQueryEngine {
    /// Builds an engine for `query` under the given strategy.
    ///
    /// * `estimator` supplies the stream statistics used by the selectivity
    ///   driven decomposition (ignored for the VF2 baseline);
    /// * `window` is the time window `tW`: only matches whose edges span less
    ///   than `window` time units are reported, and partial matches older
    ///   than the window are purged. `None` disables windowing.
    pub fn new(
        query: QueryGraph,
        strategy: Strategy,
        estimator: &SelectivityEstimator,
        window: Option<u64>,
    ) -> Result<Self, EngineError> {
        let backend = match strategy.policy() {
            Some(policy) => {
                let tree = decompose(&query, policy, estimator)?;
                Self::backend_from_tree(tree, strategy.is_lazy(), true)?
            }
            None => {
                if !query.is_connected() {
                    return Err(EngineError::DisconnectedQuery);
                }
                let whole = QuerySubgraph::from_edges(&query, query.edge_ids());
                Backend::Vf2 {
                    matcher: Vf2Matcher::new(query.clone()),
                    whole,
                }
            }
        };
        Ok(Self {
            query,
            strategy,
            window,
            backend,
            match_interning: true,
            profile: ProfileCounters::new(),
            scratch: EngineScratch::default(),
        })
    }

    /// Builds an engine from a pre-built SJ-Tree (used for custom or
    /// ablation decompositions, and to replay a decomposition persisted with
    /// [`SjTree::save`]). `lazy` selects between the track-everything and the
    /// Lazy Search execution of the same tree.
    pub fn from_tree(tree: SjTree, lazy: bool, window: Option<u64>) -> Result<Self, EngineError> {
        let query = tree.query().clone();
        let strategy = match (lazy, tree.leaf_subgraphs().any(|s| s.num_edges() > 1)) {
            (true, true) => Strategy::PathLazy,
            (true, false) => Strategy::SingleLazy,
            (false, true) => Strategy::Path,
            (false, false) => Strategy::Single,
        };
        let backend = Self::backend_from_tree(tree, lazy, true)?;
        Ok(Self {
            query,
            strategy,
            window,
            backend,
            match_interning: true,
            profile: ProfileCounters::new(),
            scratch: EngineScratch::default(),
        })
    }

    fn backend_from_tree(
        tree: SjTree,
        lazy: bool,
        interning: bool,
    ) -> Result<Backend, EngineError> {
        if tree.num_leaves() > MAX_LEAVES {
            return Err(EngineError::TooManyLeaves {
                leaves: tree.num_leaves(),
                max: MAX_LEAVES,
            });
        }
        let store = if interning {
            MatchStore::new_interned(&tree)
        } else {
            MatchStore::new(&tree)
        };
        Ok(Backend::SjTree {
            tree,
            store,
            lazy,
            bitmap: LazyBitmap::new(),
        })
    }

    /// Switches the partial-match store between the interned (arena-row) and
    /// materialized representations **in place**, converting any live state —
    /// stored matches, join keys and per-bucket order all survive, so this is
    /// safe mid-stream. The flag also governs the store a future
    /// [`ContinuousQueryEngine::rebuild`] constructs. No-op for the VF2
    /// baseline (which stores no partial matches) and when already in the
    /// requested representation.
    pub fn set_match_interning(&mut self, enabled: bool) {
        self.match_interning = enabled;
        if let Backend::SjTree { tree, store, .. } = &mut self.backend {
            store.set_interning(tree, enabled);
        }
    }

    /// Whether partial matches are stored as interned arena rows.
    pub fn match_interning(&self) -> bool {
        self.match_interning
    }

    /// Total partial matches ever stored by this engine's match store (0 for
    /// the VF2 baseline). The soak harness aggregates this across engines,
    /// shared-prefix tables and workers as the denominator of
    /// `alloc.allocs_per_match`.
    pub fn stored_matches(&self) -> u64 {
        match &self.backend {
            Backend::SjTree { store, .. } => store.lifetime_inserted(),
            Backend::Vf2 { .. } => 0,
        }
    }

    /// The query this engine answers.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The execution strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The time window `tW`, if any.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// The SJ-Tree backing this engine (`None` for the VF2 baseline).
    pub fn tree(&self) -> Option<&SjTree> {
        match &self.backend {
            Backend::SjTree { tree, .. } => Some(tree),
            Backend::Vf2 { .. } => None,
        }
    }

    /// Profiling counters accumulated so far.
    pub fn profile(&self) -> &ProfileCounters {
        &self.profile
    }

    /// Statistics of the partial-match store (`None` for the VF2 baseline).
    pub fn store_stats(&self) -> Option<StoreStats> {
        match &self.backend {
            Backend::SjTree { store, .. } => Some(store.stats()),
            Backend::Vf2 { .. } => None,
        }
    }

    /// Whether this engine's leaf of the given selectivity rank would be
    /// searched for `edge` — the Lazy Search gate. Eager strategies and the
    /// most selective leaf (rank 0) always search; a lazy leaf of higher rank
    /// searches only when its bitmap bit is set on one of the edge's
    /// endpoints. The shared leaf-search stage uses this (pure) check to
    /// decide the fan-out *before* running the shared search, so lazy
    /// engines keep their gating by filtering the fan-out rather than by
    /// re-searching.
    pub fn leaf_accepts(&self, rank: usize, edge: &EdgeData) -> bool {
        match &self.backend {
            Backend::SjTree { lazy, bitmap, .. } => {
                !*lazy
                    || rank == 0
                    || bitmap.is_enabled(edge.src, rank)
                    || bitmap.is_enabled(edge.dst, rank)
            }
            Backend::Vf2 { .. } => true,
        }
    }

    /// Processes one new edge that has already been inserted into `graph`.
    /// Returns the complete query matches created by this edge, i.e.
    /// `M(G^{k+1}) − M(G^k)` of the problem statement.
    pub fn process_edge(&mut self, graph: &DynamicGraph, edge: &EdgeData) -> Vec<SubgraphMatch> {
        let mut complete = Vec::new();
        self.process_edge_inner(graph, edge, None, None, &mut complete);
        complete
    }

    /// Like [`ContinuousQueryEngine::process_edge`], but the per-leaf
    /// anchored searches have already been performed by the shared
    /// leaf-search stage: `prepared[rank]` carries the rebased matches for
    /// every leaf whose gate ([`ContinuousQueryEngine::leaf_accepts`])
    /// passed, and `None` for gated-off leaves. The engine still performs
    /// all per-engine work itself — lazy enablement probes, the recursive
    /// hash join, windowing — in exactly the order the standalone path
    /// would, so the reported match multiset is identical.
    ///
    /// `prepared` is a caller-owned buffer (the registry reuses one across
    /// the whole fan-out instead of allocating per engine per edge); the
    /// engine consumes its entries in place and leaves the drained buffer
    /// behind.
    ///
    /// Falls back to the standalone path for the VF2 baseline (which has no
    /// leaves to share).
    pub fn process_edge_prepared(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        prepared: &mut Vec<Option<LeafFanout>>,
    ) -> Vec<SubgraphMatch> {
        let mut complete = Vec::new();
        self.process_edge_inner(graph, edge, Some(prepared), None, &mut complete);
        complete
    }

    /// The full shared pipeline: like
    /// [`ContinuousQueryEngine::process_edge_prepared`], with the leading
    /// `prefix.depth` leaves **and their internal hash joins** additionally
    /// delegated to the shared join stage. The engine skips those leaves,
    /// seeds its own join continuation with the rebased prefix-root matches
    /// in `prefix` (inserted at the internal node covering the prefix, so
    /// lazy enablement of the next leaf fires exactly as a private insert
    /// would — enablement "moves to emit time"), and runs the suffix leaves
    /// as usual. When the prefix spans every leaf, the feed's matches *are*
    /// the complete matches.
    pub fn process_edge_shared(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        prepared: Option<&mut Vec<Option<LeafFanout>>>,
        prefix: Option<&mut PrefixFeed>,
    ) -> Vec<SubgraphMatch> {
        let mut complete = Vec::new();
        self.process_edge_inner(graph, edge, prepared, prefix, &mut complete);
        complete
    }

    /// Allocation-free variant of
    /// [`ContinuousQueryEngine::process_edge_shared`]: complete matches are
    /// appended to the caller-owned `complete` buffer (cleared first), so a
    /// registry processing a fan-out of engines reuses one buffer for the
    /// whole stream instead of allocating a fresh `Vec` per engine per edge.
    /// The prefix feed is likewise borrowed, not consumed — the engine
    /// *drains* its matches, so the caller can hand the emission buffer
    /// back to the shared join stage's pool.
    pub fn process_edge_shared_into(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        prepared: Option<&mut Vec<Option<LeafFanout>>>,
        prefix: Option<&mut PrefixFeed>,
        complete: &mut Vec<SubgraphMatch>,
    ) {
        self.process_edge_inner(graph, edge, prepared, prefix, complete);
    }

    fn process_edge_inner(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        mut supplied: Option<&mut Vec<Option<LeafFanout>>>,
        prefix: Option<&mut PrefixFeed>,
        complete: &mut Vec<SubgraphMatch>,
    ) {
        complete.clear();
        self.profile.edges_processed += 1;
        let window = self.window;
        match &mut self.backend {
            Backend::Vf2 { matcher, whole } => {
                let t0 = Instant::now();
                // The baseline re-runs full-graph subgraph isomorphism on
                // every edge and keeps the embeddings that use the new edge.
                let all = matcher.find_all(graph);
                self.profile.iso_time += t0.elapsed();
                self.profile.iso_searches += 1;
                debug_assert_eq!(whole.num_edges(), self.query.num_edges());
                for m in all {
                    if m.uses_data_edge(edge.id) && window.is_none_or(|tw| m.within_window(tw)) {
                        complete.push(m);
                    }
                }
            }
            Backend::SjTree {
                tree,
                store,
                lazy,
                bitmap,
            } => {
                let lazy = *lazy;
                // Work items: (tree node, match of that node's subgraph) —
                // leaf matches from the per-edge searches, plus prefix-root
                // matches the shared join stage delivered. The queue lives in
                // the engine-owned scratch so its capacity persists across
                // edges; it is always drained before this function returns.
                let worklist = &mut self.scratch.worklist;
                debug_assert!(worklist.is_empty());

                let start_rank = match prefix {
                    Some(feed) => {
                        debug_assert!(
                            feed.depth >= 2 && feed.depth <= tree.num_leaves(),
                            "a shared prefix covers 2..=k leaves"
                        );
                        self.profile.shared_join_emissions += feed.matches.len() as u64;
                        if feed.shared {
                            self.profile.join_stages_shared += 1;
                        }
                        if feed.depth == tree.num_leaves() {
                            // The prefix is the whole tree: the feed's
                            // matches are the complete matches (the shared
                            // stage pre-filtered them against this engine's
                            // window and subscription boundary).
                            for m in feed.matches.drain(..) {
                                debug_assert!(window.is_none_or(|tw| m.within_window(tw)));
                                complete.push(m);
                            }
                            self.profile.complete_matches += complete.len() as u64;
                            return;
                        }
                        // Seed the join continuation: each emission is an
                        // insert at the internal node covering the prefix
                        // leaves, exactly where the private path would have
                        // created it.
                        let prefix_node = tree
                            .parent(tree.leaf(feed.depth - 1))
                            .expect("a strict prefix has a parent join node");
                        for m in feed.matches.drain(..) {
                            worklist.push_back((prefix_node, m));
                        }
                        feed.depth
                    }
                    None => 0,
                };

                for (rank, &leaf) in tree.leaves().iter().enumerate().skip(start_rank) {
                    // The Lazy Search gate; `leaf_accepts` is this same
                    // condition, exposed to the shared leaf-search stage.
                    if lazy
                        && rank > 0
                        && !bitmap.is_enabled(edge.src, rank)
                        && !bitmap.is_enabled(edge.dst, rank)
                    {
                        debug_assert!(supplied
                            .as_ref()
                            .is_none_or(|p| p.get(rank).is_none_or(Option::is_none)));
                        self.profile.searches_skipped += 1;
                        continue;
                    }
                    let subgraph = tree.subgraph(leaf);
                    if lazy && rank > 0 && subgraph.num_edges() > 1 {
                        // Multi-edge leaves need enablement propagation: the
                        // leaf match that will eventually join via an enabled
                        // vertex may contain edges that do not touch that
                        // vertex themselves. If the arriving edge could be
                        // part of such a match (its type occurs in the leaf),
                        // enable the leaf's search on both endpoints — with
                        // the retroactive probe every fresh enablement gets —
                        // so the remaining edges of the match are searched
                        // when they arrive.
                        let type_occurs = subgraph
                            .edges()
                            .any(|qe| self.query.edge(qe).edge_type == edge.edge_type);
                        if type_occurs {
                            for v in [edge.src, edge.dst] {
                                if enable_with_probe(
                                    bitmap,
                                    graph,
                                    &self.query,
                                    subgraph,
                                    v,
                                    rank,
                                    &mut self.profile,
                                    &mut self.scratch.search,
                                    &mut self.scratch.found,
                                ) {
                                    for fm in self.scratch.found.drain(..) {
                                        worklist.push_back((leaf, fm));
                                    }
                                }
                            }
                        }
                    }
                    // The per-edge anchored search (the LeafMatcher stage):
                    // either run it here, or consume the result the shared
                    // stage prepared. `iso_searches` counts the searches this
                    // query *logically* performed either way, so per-query
                    // profiles keep their meaning; `leaf_searches_shared` and
                    // the absent `iso_time` record that sharing made one
                    // free.
                    let slot = supplied
                        .as_mut()
                        .map(|prepared| prepared.get_mut(rank).and_then(Option::take));
                    match slot {
                        // Standalone path, or the shared stage delegated the
                        // search back (single-subscriber shape): run the
                        // anchored search here, straight into the reusable
                        // scratch buffers (no per-search allocation once their
                        // capacity has warmed up).
                        None | Some(Some(LeafFanout::SearchLocally)) | Some(None) => {
                            let t0 = Instant::now();
                            self.scratch.found.clear();
                            find_matches_containing_edge_into(
                                graph,
                                &self.query,
                                subgraph,
                                edge,
                                &mut self.scratch.search,
                                &mut self.scratch.found,
                            );
                            self.profile.iso_time += t0.elapsed();
                            self.profile.leaf_matches += self.scratch.found.len() as u64;
                            for m in self.scratch.found.drain(..) {
                                worklist.push_back((leaf, m));
                            }
                        }
                        Some(Some(LeafFanout::Prepared(leaf_prep))) => {
                            if let Some(elapsed) = leaf_prep.charged {
                                self.profile.iso_time += elapsed;
                            }
                            if leaf_prep.shared {
                                self.profile.leaf_searches_shared += 1;
                            }
                            self.profile.leaf_matches += leaf_prep.matches.len() as u64;
                            for m in leaf_prep.matches {
                                worklist.push_back((leaf, m));
                            }
                        }
                    }
                    self.profile.iso_searches += 1;
                }

                // Insert matches; when Lazy Search is active, every newly
                // created match (leaf or internal) may enable the next leaf's
                // search on its vertices and trigger a retroactive probe for
                // that leaf, which can in turn produce more work items.
                while let Some((leaf, m)) = worklist.pop_front() {
                    let trace = &mut self.scratch.trace;
                    trace.clear();
                    let t0 = Instant::now();
                    store.insert_traced(tree, leaf, m, window, complete, trace);
                    self.profile.update_time += t0.elapsed();

                    if !lazy {
                        continue;
                    }
                    for item in 0..self.scratch.trace.len() {
                        let node = self.scratch.trace.node(item);
                        let Some(next_leaf) = tree.next_leaf_to_enable(node) else {
                            continue;
                        };
                        let next_rank = tree
                            .node(next_leaf)
                            .leaf_rank
                            .expect("next_leaf_to_enable returns leaves");
                        let next_subgraph = tree.subgraph(next_leaf);
                        for &dv in self.scratch.trace.vertices(item) {
                            // Retroactive search on every fresh enablement:
                            // the next leaf's matches may already exist around
                            // this vertex (arrival-order robustness,
                            // Section 4).
                            if !enable_with_probe(
                                bitmap,
                                graph,
                                &self.query,
                                next_subgraph,
                                dv,
                                next_rank,
                                &mut self.profile,
                                &mut self.scratch.search,
                                &mut self.scratch.found,
                            ) {
                                continue;
                            }
                            for fm in self.scratch.found.drain(..) {
                                worklist.push_back((next_leaf, fm));
                            }
                            // Multi-edge leaves: partially present matches
                            // around this vertex will complete with edges that
                            // do not touch it; propagate enablement one hop
                            // along edges whose type occurs in the leaf so the
                            // completing edge is searched when it arrives.
                            if next_subgraph.num_edges() > 1 {
                                let leaf_types = &mut self.scratch.leaf_types;
                                leaf_types.clear();
                                leaf_types.extend(
                                    next_subgraph
                                        .edges()
                                        .map(|qe| self.query.edge(qe).edge_type),
                                );
                                let neighbors = &mut self.scratch.neighbors;
                                neighbors.clear();
                                neighbors.extend(
                                    graph
                                        .incident_edges(dv)
                                        .filter(|inc| leaf_types.contains(&inc.edge_type))
                                        .map(|inc| inc.neighbor),
                                );
                                for ni in 0..self.scratch.neighbors.len() {
                                    let n = self.scratch.neighbors[ni];
                                    if enable_with_probe(
                                        bitmap,
                                        graph,
                                        &self.query,
                                        next_subgraph,
                                        n,
                                        next_rank,
                                        &mut self.profile,
                                        &mut self.scratch.search,
                                        &mut self.scratch.found,
                                    ) {
                                        for fm in self.scratch.found.drain(..) {
                                            worklist.push_back((next_leaf, fm));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.profile.complete_matches += complete.len() as u64;
    }

    /// Drops this engine's own partial-match tables for the nodes a shared
    /// join prefix of `depth` leaves now covers: the prefix leaves and every
    /// internal node *strictly below* the prefix root. The prefix root's own
    /// table is kept — it accumulates the rebased emissions and is what the
    /// suffix leaves join against. Called when a live query migrates onto a
    /// newly created shared prefix table (whose contents are reconstructed
    /// by replaying the retained graph), so the redundant private state does
    /// not linger until window expiry. No-op for the VF2 baseline.
    pub fn clear_prefix_state(&mut self, depth: usize) {
        let Backend::SjTree { tree, store, .. } = &mut self.backend else {
            return;
        };
        let depth = depth.min(tree.num_leaves());
        for rank in 0..depth {
            store.clear_node(tree.leaf(rank));
        }
        // Internal node covering leaves 0..=j is parent(leaf(j)); keep the
        // prefix root (j = depth-1).
        for j in 1..depth.saturating_sub(1) {
            let node = tree.parent(tree.leaf(j)).expect("non-root leaf");
            store.clear_node(node);
        }
    }

    /// Drops partial matches that can no longer contribute to a windowed
    /// match and lazy-bitmap rows for vertices that have left the graph.
    /// Returns the number of partial matches removed.
    pub fn purge(&mut self, graph: &DynamicGraph) -> usize {
        let Backend::SjTree {
            store,
            bitmap,
            tree: _,
            ..
        } = &mut self.backend
        else {
            return 0;
        };
        // Dead-edge and window expiry in one pass over every bucket (the two
        // separate passes walked the whole store twice per maintenance tick).
        let removed = store.purge(graph, graph.latest_timestamp(), self.window);
        self.profile.partial_matches_purged += removed as u64;
        let stats = store.stats();
        self.profile.note_partial_matches(stats.total_live_matches);
        // The bitmap only grows; shrink it to the live vertex set during the
        // (infrequent) purge.
        if bitmap.num_tracked_vertices() > 2 * graph.num_vertices() {
            let mut fresh = LazyBitmap::new();
            for (v, _) in graph.vertices() {
                for rank in 1..MAX_LEAVES.min(64) {
                    if bitmap.is_enabled(v, rank) {
                        fresh.enable(v, rank);
                    }
                }
            }
            *bitmap = fresh;
        }
        removed
    }

    /// Swaps this engine's decomposition for `tree` under `strategy` without
    /// losing detection state: the fresh leaf and partial-match stores (and
    /// the lazy bitmap) are repopulated by replaying the retained graph in
    /// deterministic `(timestamp, edge id)` order. Because the shared graph
    /// retains edges for at least this engine's window `tW`, every partial
    /// match that can still participate in a future reported match is
    /// reconstructed, so the engine's continuation reports exactly the
    /// match multiset a never-rebuilt engine would — the drift-adaptivity
    /// equivalence tests assert this across strategies and worker counts.
    ///
    /// Complete matches that materialize during the replay are discarded:
    /// each one lies entirely inside the retained (pre-swap) graph, so the
    /// old decomposition already reported it when its last edge arrived.
    ///
    /// Counter accounting: the replay's searches and wall time are charged
    /// to the dedicated [`ProfileCounters::replay_searches`] /
    /// [`ProfileCounters::replay_time`] counters — the ordinary per-stream
    /// counters keep describing the live stream only, so steady-state plan
    /// cost and one-off switching cost stay individually visible — and
    /// [`ProfileCounters::redecompositions`] is incremented.
    ///
    /// # Errors
    /// [`EngineError::RebuildMismatch`] when `strategy` has no SJ-Tree (the
    /// VF2 baseline) or `tree` does not decompose this engine's query;
    /// [`EngineError::TooManyLeaves`] when the tree exceeds the lazy bitmap
    /// capacity.
    pub fn rebuild(
        &mut self,
        strategy: Strategy,
        tree: SjTree,
        graph: &DynamicGraph,
    ) -> Result<(), EngineError> {
        if strategy.policy().is_none() || !same_query(&self.query, tree.query()) {
            return Err(EngineError::RebuildMismatch);
        }
        self.backend = Self::backend_from_tree(tree, strategy.is_lazy(), self.match_interning)?;
        self.strategy = strategy;
        // Replay the retained graph. Only edges whose type occurs in the
        // query can contribute leaf matches or enablements; the rest would
        // be filtered by the dispatch index on a live stream too.
        let mut types: Vec<_> = self.query.edges().map(|e| e.edge_type).collect();
        types.sort_unstable();
        types.dedup();
        let mut edges: Vec<EdgeData> = graph
            .edges()
            .filter(|e| types.binary_search(&e.edge_type).is_ok())
            .copied()
            .collect();
        edges.sort_unstable_by_key(|e| (e.timestamp, e.id));
        // Swap the live profile out so the replay's work lands on a scratch
        // profile, then fold it into the dedicated replay counters.
        let live = std::mem::take(&mut self.profile);
        let mut discard = Vec::new();
        for e in &edges {
            self.process_edge_inner(graph, e, None, None, &mut discard);
        }
        let replay = std::mem::replace(&mut self.profile, live);
        self.profile.replay_searches +=
            replay.iso_searches + replay.retroactive_searches + replay.replay_searches;
        self.profile.replay_time += replay.iso_time + replay.update_time + replay.replay_time;
        self.profile
            .note_partial_matches(replay.peak_partial_matches);
        self.profile.redecompositions += 1;
        Ok(())
    }

    /// Resets all runtime state (partial matches, lazy bitmap, profile) while
    /// keeping the decomposition, so the same engine can replay another
    /// stream.
    pub fn reset(&mut self) {
        if let Backend::SjTree { store, bitmap, .. } = &mut self.backend {
            store.clear();
            bitmap.clear();
        }
        self.profile = ProfileCounters::new();
    }

    /// Releases the engine-owned search scratch (frontier/result buffers,
    /// binding work area, join worklist) and the match store's recycled
    /// bucket pool, returning their retained capacity to the allocator.
    /// Purely a memory/perf knob — never changes reported matches. The next
    /// processed edge re-warms the buffers from empty.
    pub fn release_scratch(&mut self) {
        self.scratch = EngineScratch::default();
        if let Backend::SjTree { store, .. } = &mut self.backend {
            store.release_spare();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{EdgeEvent, Schema, Timestamp, VertexId, VertexType};

    /// Schema + estimator for a tiny cyber-like stream where "esp" is rare
    /// and "tcp" is common.
    fn fixture() -> (Schema, SelectivityEstimator) {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut g = DynamicGraph::new(schema.clone());
        let vs: Vec<_> = (0..20).map(|_| g.add_vertex(vt)).collect();
        for i in 0..15 {
            g.add_edge(vs[i], vs[i + 1], tcp, Timestamp(i as u64));
        }
        g.add_edge(vs[19], vs[0], esp, Timestamp(100));
        (schema, SelectivityEstimator::from_graph(&g))
    }

    fn two_hop_query(schema: &Schema) -> QueryGraph {
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        q
    }

    fn run_stream(
        schema: &Schema,
        engine: &mut ContinuousQueryEngine,
        events: &[(u64, u64, &str, u64)],
    ) -> usize {
        let vt = schema.vertex_type("ip").unwrap();
        let mut graph = DynamicGraph::new(schema.clone());
        let mut total = 0;
        for &(s, d, ty, ts) in events {
            let et = schema.edge_type(ty).unwrap();
            let ev = EdgeEvent::homogeneous(s, d, vt, et, Timestamp(ts));
            let src = graph.ensure_vertex(VertexId(ev.src), ev.src_type).unwrap();
            let dst = graph.ensure_vertex(VertexId(ev.dst), ev.dst_type).unwrap();
            let e = graph.add_edge(src, dst, ev.edge_type, ev.timestamp);
            let data = *graph.edge(e).unwrap();
            total += engine.process_edge(&graph, &data).len();
        }
        total
    }

    #[test]
    fn all_strategies_find_the_same_matches_regardless_of_order() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        // esp edge arrives AFTER the tcp edge it must join with — this is the
        // arrival-order case the retroactive search exists for — plus noise.
        let stream: Vec<(u64, u64, &str, u64)> = vec![
            (10, 11, "tcp", 1),
            (11, 12, "tcp", 2),
            (50, 10, "esp", 3), // completes 50-esp->10-tcp->11
            (12, 13, "tcp", 4),
            (60, 12, "esp", 5), // completes 60-esp->12-tcp->13
        ];
        for strategy in Strategy::ALL {
            let mut engine = ContinuousQueryEngine::new(q.clone(), strategy, &est, None).unwrap();
            let total = run_stream(&schema, &mut engine, &stream);
            assert_eq!(total, 2, "strategy {strategy} found {total} matches");
        }
    }

    #[test]
    fn lazy_reverse_arrival_order_is_still_detected() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        // The rare esp edge (leaf 0) arrives FIRST; the common tcp edge that
        // completes the pattern arrives later. Then a second pattern where
        // the tcp edge arrives before the esp edge.
        let stream: Vec<(u64, u64, &str, u64)> = vec![
            (1, 2, "esp", 1),
            (2, 3, "tcp", 2), // esp before tcp
            (5, 6, "tcp", 3),
            (4, 5, "esp", 4), // tcp before esp
        ];
        for strategy in [Strategy::SingleLazy, Strategy::PathLazy] {
            let mut engine = ContinuousQueryEngine::new(q.clone(), strategy, &est, None).unwrap();
            let total = run_stream(&schema, &mut engine, &stream);
            assert_eq!(total, 2, "strategy {strategy} missed a match");
        }
    }

    #[test]
    fn window_filters_slow_patterns() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let stream: Vec<(u64, u64, &str, u64)> = vec![
            (1, 2, "esp", 0),
            (2, 3, "tcp", 1_000), // 1000 ticks later: outside a 100-tick window
            (4, 5, "esp", 2_000),
            (5, 6, "tcp", 2_050), // inside the window
        ];
        for strategy in Strategy::ALL {
            let mut engine =
                ContinuousQueryEngine::new(q.clone(), strategy, &est, Some(100)).unwrap();
            let total = run_stream(&schema, &mut engine, &stream);
            assert_eq!(total, 1, "strategy {strategy} mishandled the window");
        }
    }

    #[test]
    fn lazy_skips_searches_that_track_everything_performs() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        // Plenty of tcp noise that never joins an esp edge.
        let mut stream: Vec<(u64, u64, &str, u64)> = Vec::new();
        for i in 0..50u64 {
            stream.push((100 + i, 200 + i, "tcp", i));
        }
        let mut eager =
            ContinuousQueryEngine::new(q.clone(), Strategy::Single, &est, None).unwrap();
        let mut lazy =
            ContinuousQueryEngine::new(q.clone(), Strategy::SingleLazy, &est, None).unwrap();
        assert_eq!(run_stream(&schema, &mut eager, &stream), 0);
        assert_eq!(run_stream(&schema, &mut lazy, &stream), 0);
        // The lazy engine skipped the tcp-leaf searches (nothing enabled) and
        // stored no tcp partial matches; the eager engine tracked them all.
        assert!(lazy.profile().searches_skipped > 0);
        let eager_live = eager.store_stats().unwrap().total_live_matches;
        let lazy_live = lazy.store_stats().unwrap().total_live_matches;
        assert!(
            lazy_live < eager_live,
            "lazy={lazy_live} eager={eager_live}"
        );
    }

    #[test]
    fn from_tree_replays_a_persisted_decomposition() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let tree = decompose(&q, sp_sjtree::PrimitivePolicy::SingleEdge, &est).unwrap();
        let json = tree.to_json().unwrap();
        let restored = SjTree::from_json(&json).unwrap();
        let mut engine = ContinuousQueryEngine::from_tree(restored, true, None).unwrap();
        assert_eq!(engine.strategy(), Strategy::SingleLazy);
        let stream = vec![(1u64, 2u64, "esp", 1u64), (2, 3, "tcp", 2)];
        assert_eq!(run_stream(&schema, &mut engine, &stream), 1);
    }

    #[test]
    fn vf2_baseline_requires_connected_query() {
        let (schema, est) = fixture();
        let tcp = schema.edge_type("tcp").unwrap();
        let mut q = QueryGraph::new("disconnected");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let d = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(c, d, tcp);
        assert!(matches!(
            ContinuousQueryEngine::new(q, Strategy::Vf2Baseline, &est, None),
            Err(EngineError::DisconnectedQuery)
        ));
    }

    #[test]
    fn reset_clears_runtime_state() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let mut engine = ContinuousQueryEngine::new(q, Strategy::SingleLazy, &est, None).unwrap();
        let stream = vec![(1u64, 2u64, "esp", 1u64), (2, 3, "tcp", 2)];
        assert_eq!(run_stream(&schema, &mut engine, &stream), 1);
        assert!(engine.profile().edges_processed > 0);
        engine.reset();
        assert_eq!(engine.profile().edges_processed, 0);
        assert_eq!(engine.store_stats().unwrap().total_live_matches, 0);
        // Replaying the stream after the reset finds the match again.
        assert_eq!(run_stream(&schema, &mut engine, &stream), 1);
    }

    /// Builds a tree over `q` whose leaves are the query's single edges in
    /// the given explicit order (bypassing the selectivity-driven order).
    fn tree_with_leaf_order(q: &QueryGraph, order: &[usize]) -> sp_sjtree::SjTree {
        let leaves = order
            .iter()
            .map(|&i| QuerySubgraph::from_edges(q, [sp_query::QueryEdgeId(i)]))
            .collect();
        sp_sjtree::SjTree::from_leaves(q.clone(), leaves)
    }

    #[test]
    fn rebuild_mid_window_keeps_live_partials_and_reports_once() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let vt = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let mut engine =
            ContinuousQueryEngine::new(q.clone(), Strategy::SingleLazy, &est, Some(100)).unwrap();
        let mut graph = DynamicGraph::new(schema.clone());

        // Half the pattern arrives: a live partial match, no report yet.
        let a = graph.ensure_vertex(VertexId(1), vt).unwrap();
        let b = graph.ensure_vertex(VertexId(2), vt).unwrap();
        let e = graph.add_edge(a, b, esp, Timestamp(10));
        let data = *graph.edge(e).unwrap();
        assert!(engine.process_edge(&graph, &data).is_empty());
        assert!(engine.store_stats().unwrap().total_live_matches > 0);

        // The stream drifted: swap in the tree with the flipped leaf order
        // while the partial match is live inside the window.
        let flipped = tree_with_leaf_order(&q, &[1, 0]);
        engine
            .rebuild(Strategy::SingleLazy, flipped, &graph)
            .unwrap();
        assert_eq!(engine.profile().redecompositions, 1);
        // Under the flipped lazy plan the esp leaf is rank 1 and gated off
        // until a tcp match enables it — the replayed store may legitimately
        // be empty; what matters is the continuation below.

        // The completing edge arrives after the swap: exactly one match
        // (rank-0 finds the tcp leaf, the retroactive probe recovers the
        // pre-swap esp edge from the retained graph).
        let c = graph.ensure_vertex(VertexId(3), vt).unwrap();
        let e = graph.add_edge(b, c, tcp, Timestamp(20));
        let data = *graph.edge(e).unwrap();
        assert_eq!(engine.process_edge(&graph, &data).len(), 1);
    }

    #[test]
    fn rebuild_discards_already_reported_matches() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let vt = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let mut engine =
            ContinuousQueryEngine::new(q.clone(), Strategy::Single, &est, None).unwrap();
        let mut graph = DynamicGraph::new(schema.clone());
        let mut total = 0usize;
        for (s, d, t, ts) in [(1u64, 2u64, esp, 1u64), (2, 3, tcp, 2)] {
            let sv = graph.ensure_vertex(VertexId(s), vt).unwrap();
            let dv = graph.ensure_vertex(VertexId(d), vt).unwrap();
            let e = graph.add_edge(sv, dv, t, Timestamp(ts));
            let data = *graph.edge(e).unwrap();
            total += engine.process_edge(&graph, &data).len();
        }
        assert_eq!(total, 1);
        let reported_before = engine.profile().complete_matches;

        engine
            .rebuild(Strategy::Single, tree_with_leaf_order(&q, &[1, 0]), &graph)
            .unwrap();
        // The replay rediscovered the completed match internally but must
        // not re-report it (the old decomposition already did).
        assert_eq!(engine.profile().complete_matches, reported_before);
        // An unrelated edge afterwards reports nothing new.
        let x = graph.ensure_vertex(VertexId(50), vt).unwrap();
        let y = graph.ensure_vertex(VertexId(51), vt).unwrap();
        let e = graph.add_edge(x, y, tcp, Timestamp(3));
        let data = *graph.edge(e).unwrap();
        assert!(engine.process_edge(&graph, &data).is_empty());
    }

    #[test]
    fn rebuild_rejects_foreign_trees_and_vf2() {
        let (schema, est) = fixture();
        let q = two_hop_query(&schema);
        let graph = DynamicGraph::new(schema.clone());
        let mut engine =
            ContinuousQueryEngine::new(q.clone(), Strategy::SingleLazy, &est, None).unwrap();
        // A tree over a *different* query is refused.
        let tcp = schema.edge_type("tcp").unwrap();
        let mut other = QueryGraph::new("other");
        let a = other.add_any_vertex();
        let b = other.add_any_vertex();
        other.add_edge(a, b, tcp);
        let foreign = tree_with_leaf_order(&other, &[0]);
        assert!(matches!(
            engine.rebuild(Strategy::SingleLazy, foreign, &graph),
            Err(EngineError::RebuildMismatch)
        ));
        // The VF2 baseline has no SJ-Tree to swap to.
        let own = tree_with_leaf_order(&q, &[0, 1]);
        assert!(matches!(
            engine.rebuild(Strategy::Vf2Baseline, own, &graph),
            Err(EngineError::RebuildMismatch)
        ));
        assert_eq!(engine.profile().redecompositions, 0);
    }

    #[test]
    fn vertex_typed_queries_are_respected() {
        let mut schema = Schema::new();
        let person = schema.intern_vertex_type("person");
        let post = schema.intern_vertex_type("post");
        let likes = schema.intern_edge_type("likes");
        let knows = schema.intern_edge_type("knows");
        let mut g = DynamicGraph::new(schema.clone());
        let p1 = g.add_vertex(person);
        let p2 = g.add_vertex(person);
        let doc = g.add_vertex(post);
        g.add_edge(p1, p2, knows, Timestamp(1));
        g.add_edge(p2, doc, likes, Timestamp(2));
        let est = SelectivityEstimator::from_graph(&g);

        // person -knows-> person -likes-> post
        let mut q = QueryGraph::new("social");
        let a = q.add_vertex(person);
        let b = q.add_vertex(person);
        let c = q.add_vertex(post);
        q.add_edge(a, b, knows);
        q.add_edge(b, c, likes);

        for strategy in Strategy::ALL {
            let mut engine = ContinuousQueryEngine::new(q.clone(), strategy, &est, None).unwrap();
            let mut graph = DynamicGraph::new(schema.clone());
            let a1 = graph.ensure_vertex(VertexId(1), person).unwrap();
            let a2 = graph.ensure_vertex(VertexId(2), person).unwrap();
            let a3 = graph.ensure_vertex(VertexId(3), post).unwrap();
            let a4 = graph.ensure_vertex(VertexId(4), VertexType(99)).unwrap();
            let mut total = 0;
            for (s, d, t, ts) in [
                (a1, a2, knows, 1u64),
                (a2, a3, likes, 2),
                (a2, a4, likes, 3), // likes a non-post vertex: no match
            ] {
                let e = graph.add_edge(s, d, t, Timestamp(ts));
                let data = *graph.edge(e).unwrap();
                total += engine.process_edge(&graph, &data).len();
            }
            assert_eq!(total, 1, "strategy {strategy}");
        }
    }
}
