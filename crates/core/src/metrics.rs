//! Pipeline instrumentation: the bundle of `sp-metrics` handles the
//! processor and registry record into when metrics are enabled.
//!
//! The paper's §6.4 splits query cost into isomorphism (search) time and
//! SJ-Tree maintenance time from end-of-run totals; [`PipelineMetrics`]
//! makes the same split observable continuously, one span counter per
//! pipeline stage:
//!
//! | metric | type | unit | stage |
//! |---|---|---|---|
//! | `stream.edges_total`      | counter   | events | ingest |
//! | `stream.matches_total`    | counter   | matches | emit |
//! | `stage.ingest_ns`         | counter   | ns | vertex/edge insert + statistics |
//! | `stage.dispatch_ns`       | counter   | ns | edge-type dispatch lookup |
//! | `stage.shared_join_ns`    | counter   | ns | shared prefix-table advance + fan-out |
//! | `stage.shared_leaf_ns`    | counter   | ns | shared anchored leaf searches |
//! | `stage.private_engine_ns` | counter   | ns | per-engine SJ-Tree / VF2 work |
//! | `stage.emit_ns`           | counter   | ns | match delivery to the sink |
//! | `stage.purge_ns`          | counter   | ns | amortized expiry / purge passes |
//! | `pipeline.edge_ns`        | histogram | ns | whole per-edge pipeline |
//! | `match.latency_ns`        | histogram | ns | event arrival → match emission |
//!
//! Every handle is an `Arc`-backed atomic, so cloning the bundle into the
//! runtime's worker replicas aggregates all shards into one set of series.

use sp_metrics::{Counter, Histogram, MetricsRegistry};

/// The instrumentation bundle threaded through
/// [`StreamProcessor`](crate::StreamProcessor) and
/// [`QueryRegistry`](crate::QueryRegistry).
///
/// Attach with
/// [`StreamProcessor::with_metrics`](crate::StreamProcessor::with_metrics);
/// when absent, the hot path pays a single branch.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Events ingested (`stream.edges_total`).
    pub edges: Counter,
    /// Matches emitted across all queries (`stream.matches_total`).
    pub matches: Counter,
    /// Nanoseconds in vertex/edge insertion and statistics
    /// (`stage.ingest_ns`).
    pub ingest_ns: Counter,
    /// Nanoseconds in the edge-type dispatch lookup (`stage.dispatch_ns`).
    pub dispatch_ns: Counter,
    /// Nanoseconds advancing shared prefix tables (`stage.shared_join_ns`).
    pub shared_join_ns: Counter,
    /// Nanoseconds in shared anchored leaf searches
    /// (`stage.shared_leaf_ns`).
    pub shared_leaf_ns: Counter,
    /// Nanoseconds in private engine work — SJ-Tree joins, lazy searches,
    /// VF2 (`stage.private_engine_ns`).
    pub private_engine_ns: Counter,
    /// Nanoseconds delivering matches to the sink (`stage.emit_ns`).
    pub emit_ns: Counter,
    /// Nanoseconds in amortized expiry/purge passes (`stage.purge_ns`).
    pub purge_ns: Counter,
    /// Per-edge wall time through the whole pipeline (`pipeline.edge_ns`).
    pub edge_ns: Histogram,
    /// Detection latency, event arrival to match emission
    /// (`match.latency_ns`).
    pub match_latency_ns: Histogram,
}

impl PipelineMetrics {
    /// Register (or re-acquire) the pipeline instruments in `registry`.
    /// Registration is idempotent: every caller passing the same registry
    /// shares the same underlying atomics.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            edges: registry.counter("stream.edges_total"),
            matches: registry.counter("stream.matches_total"),
            ingest_ns: registry.counter("stage.ingest_ns"),
            dispatch_ns: registry.counter("stage.dispatch_ns"),
            shared_join_ns: registry.counter("stage.shared_join_ns"),
            shared_leaf_ns: registry.counter("stage.shared_leaf_ns"),
            private_engine_ns: registry.counter("stage.private_engine_ns"),
            emit_ns: registry.counter("stage.emit_ns"),
            purge_ns: registry.counter("stage.purge_ns"),
            edge_ns: registry.histogram("pipeline.edge_ns"),
            match_latency_ns: registry.histogram("match.latency_ns"),
        }
    }

    /// A bundle detached from any registry (tests and internal defaults).
    pub fn detached() -> Self {
        Self::register(&MetricsRegistry::new())
    }

    /// The per-stage span totals as `(stage name, nanoseconds)`, in pipeline
    /// order — the live counterpart of the paper's §6.4 cost split.
    pub fn stage_split(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ingest", self.ingest_ns.get()),
            ("dispatch", self.dispatch_ns.get()),
            ("shared_join", self.shared_join_ns.get()),
            ("shared_leaf", self.shared_leaf_ns.get()),
            ("private_engine", self.private_engine_ns.get()),
            ("emit", self.emit_ns.get()),
            ("purge", self.purge_ns.get()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_across_bundles() {
        let reg = MetricsRegistry::new();
        let a = PipelineMetrics::register(&reg);
        let b = PipelineMetrics::register(&reg);
        a.edges.add(2);
        b.edges.inc();
        assert_eq!(reg.snapshot().counter("stream.edges_total"), Some(3));
    }

    #[test]
    fn stage_split_reports_in_pipeline_order() {
        let m = PipelineMetrics::detached();
        m.shared_join_ns.add(10);
        let split = m.stage_split();
        assert_eq!(split[0].0, "ingest");
        assert_eq!(split[2], ("shared_join", 10));
    }
}
