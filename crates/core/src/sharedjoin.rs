//! Shared join stage: refcounted canonical partial-match tables for common
//! SJ-Tree prefixes across the query registry.
//!
//! Shared-leaf evaluation (PR 3, [`crate::SharedLeafIndex`]) stopped at the
//! leaves: two queries with the same leaf sequence still maintained
//! duplicate partial-match tables and ran duplicate hash-join work on every
//! edge. [`SharedJoinIndex`] extends the sharing through the join stage —
//! the multi-query design of the StreamWorks line of work (Choudhury et
//! al., EDBT 2015; arXiv:1407.3745):
//!
//! * every registered query's decomposition is canonicalized to a
//!   [`PrefixSignature`] chain (`sp-query`); queries whose chains begin with
//!   the same steps can share one **canonical prefix table** — a
//!   registry-owned [`SjTree`] + [`MatchStore`] over the canonical union
//!   graph of the common leading leaves;
//! * per streaming edge, each live prefix table advances **once**: the
//!   prefix leaves are searched, the discovered matches inserted, and the
//!   recursive hash join run against the one shared table set. New
//!   prefix-root matches are *emitted*: rebased onto every subscriber via
//!   [`SubgraphMatch::remapped`] and consumed by the subscriber's engine as
//!   inserts at its own prefix-covering node
//!   ([`ContinuousQueryEngine::process_edge_shared`]) — or directly as
//!   complete matches when the prefix spans the whole tree;
//! * tables are **refcounted**: the last unsubscriber (deregistration or a
//!   drift-driven re-subscription) drops the table; a late subscriber to an
//!   existing table sees no pre-registration matches (see *Boundaries*).
//!
//! # Windows move to emit time
//!
//! Subscribers with different `tW` share one table: the table itself prunes
//! joins only against the *loosest* subscriber window (the same
//! [`retention_for_windows`](crate::retention_for_windows) rule the shared
//! graph uses), and each subscriber's own `tW` is applied when emissions
//! are rebased. A match over-window for one subscriber but inside another's
//! is thus delivered exactly where the private path would have delivered
//! it; stored partials an individual engine would have pruned early are
//! kept (they are still needed by the loosest subscriber) and die at the
//! table's purge instead — semantics are unaffected because a match's time
//! span only grows as it joins upward.
//!
//! # Lazy Search moves to emit time
//!
//! The shared table is evaluated eagerly (no lazy gating inside the
//! prefix): gating is a per-engine work-saving device, and with multiple
//! subscribers the one shared evaluation replaces *all* of their prefix
//! work. Lazy subscribers keep their gating for the suffix leaves — each
//! emission inserted at the subscriber's prefix node trips the ordinary
//! `ENABLE-SEARCH-SIBLING` machinery (retroactive probe included), so the
//! next leaf's search is enabled exactly when a private insert would have
//! enabled it. Eager and lazy execution of the same tree report identical
//! match multisets (the PR 1 equivalence tests), so the emitted stream is
//! the one every subscriber's own prefix would have produced.
//!
//! # Boundaries: late subscribers
//!
//! A query that joins an existing table at stream position `B` must not see
//! matches it would not have found had it run privately from `B`. For the
//! eager semantics this set is exact and *intrinsic to the match*: a
//! private engine registered at `B` holds a leaf match iff the leaf's
//! last-arriving edge was dispatched at or after `B` (anchored searches may
//! bind older retained edges — only the *anchor* must be new). A
//! prefix-root match is therefore visible to the subscriber iff
//! `min over leaves (max edge id within the leaf) ≥ B` — computed per
//! emission against each subscriber's recorded boundary, with no epoch
//! bookkeeping in the table itself. (Lazy engines registered mid-stream can
//! additionally resurrect *wholly pre-registration* leaf matches through
//! retroactive probes; under the shared join stage a late subscriber gets
//! the strategy-independent eager-late semantics instead.)
//!
//! Conversely, when a *live* query migrates onto a newly created table
//! (a later registration or re-decomposition finally gives it a sharing
//! partner), the table is back-filled by replaying the retained graph in
//! `(timestamp, id)` order — the same recipe as
//! [`ContinuousQueryEngine::rebuild`] — so partials the query's private
//! prefix already held keep completing. Replay emissions are discarded
//! (every one of them was already reported) and replayed matches carry
//! their original edge ids, so boundary filtering keeps working unchanged.

use crate::engine::{ContinuousQueryEngine, PrefixFeed};
use crate::registry::{retention_for_windows, QueryId};
use sp_graph::{DynamicGraph, EdgeData, EdgeId, EdgeType};
use sp_iso::{find_matches_containing_edge_into, SearchScratch, SubgraphMatch};
use sp_query::{prefix_chain, PrefixSignature, QueryEdgeId, QueryGraph, QueryVertexId};
use sp_sjtree::{MatchStore, SjTree};
use std::collections::{BTreeMap, HashMap};

/// A shared prefix must contain at least one internal join node, i.e. cover
/// at least two leaves — depth-1 "prefixes" are exactly the leaf shapes the
/// shared **leaf** stage already deduplicates.
pub const MIN_PREFIX_DEPTH: usize = 2;

/// The canonical chain of one SJ-Tree, as the shared join stage sees it:
/// `None` for trees with nothing to join (fewer than [`MIN_PREFIX_DEPTH`]
/// leaves) or whose leaves defeat canonicalization (oversized hand-built
/// leaves). This is the **single** join-capability rule — the parallel
/// runtime's prefix-aware shard assignment mirrors worker-registry
/// residency through it, so both sides must always agree.
pub fn tree_chain(tree: &SjTree) -> Option<PrefixSignature> {
    if tree.num_leaves() < MIN_PREFIX_DEPTH {
        return None;
    }
    let leaves: Vec<_> = tree.leaf_subgraphs().cloned().collect();
    prefix_chain(tree.query(), leaves.iter()).map(|(sig, _)| sig)
}

/// One query's subscription to a prefix table.
#[derive(Debug, Clone)]
struct JoinSub {
    id: QueryId,
    /// Canonical union vertex → subscriber query vertex.
    vmap: Vec<QueryVertexId>,
    /// Canonical union edge → subscriber query edge.
    emap: Vec<QueryEdgeId>,
    /// The subscriber's own `tW`, applied to emissions at rebase time.
    window: Option<u64>,
    /// First edge id whose dispatch the subscriber is entitled to see
    /// (`0` for queries registered before any edge was processed).
    boundary: u64,
}

/// One refcounted canonical prefix table.
#[derive(Debug, Clone)]
struct PrefixEntry {
    sig: PrefixSignature,
    /// Canonical union query the anchored searches run against.
    query: QueryGraph,
    /// Left-deep canonical tree over the prefix leaves; its root is the
    /// prefix-covering node whose matches are emitted.
    tree: SjTree,
    store: MatchStore,
    /// Distinct edge types across the prefix (entry dispatch pre-filter).
    edge_types: Vec<EdgeType>,
    /// Distinct edge types per leaf rank (per-leaf search pre-filter).
    per_leaf_types: Vec<Vec<EdgeType>>,
    /// Canonical edge ids per leaf rank, for the boundary (`dep`) filter.
    leaf_edges: Vec<Vec<QueryEdgeId>>,
    /// Loosest subscriber window (`None` = some subscriber is unwindowed);
    /// prunes joins inside the table and drives the periodic purge.
    window: Option<u64>,
    /// Subscribers in subscription order (the refcount is `subs.len()`).
    subs: Vec<JoinSub>,
    /// Stream position the table's contents are complete from; subscribing
    /// with an earlier boundary triggers a replay.
    populated_since: u64,
    /// Prefix-root matches created by the current edge (canonical ids).
    pending: Vec<SubgraphMatch>,
    /// Edge the `pending` buffer belongs to.
    advanced_for: Option<EdgeId>,
}

impl PrefixEntry {
    fn new(sig: PrefixSignature, window: Option<u64>, populated_since: u64) -> Self {
        let (query, leaves) = sig.instantiate("shared-prefix");
        let per_leaf_types: Vec<Vec<EdgeType>> = leaves
            .iter()
            .map(|leaf| {
                let mut t: Vec<EdgeType> = leaf.edges().map(|e| query.edge(e).edge_type).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let leaf_edges: Vec<Vec<QueryEdgeId>> =
            leaves.iter().map(|leaf| leaf.edges().collect()).collect();
        let tree = SjTree::from_leaves(query.clone(), leaves);
        let store = MatchStore::new(&tree);
        PrefixEntry {
            edge_types: sig.edge_types(),
            sig,
            query,
            tree,
            store,
            per_leaf_types,
            leaf_edges,
            window,
            subs: Vec::new(),
            populated_since,
            pending: Vec::new(),
            advanced_for: None,
        }
    }

    fn depth(&self) -> usize {
        self.sig.depth()
    }

    /// Recomputes the table window as the loosest subscriber window.
    fn recompute_window(&mut self) {
        self.window = retention_for_windows(self.subs.iter().map(|s| s.window));
    }

    /// Runs the prefix's leaf searches and hash joins for one edge against
    /// the shared table, leaving the new prefix-root matches in `pending`.
    /// Returns `(searches run, matches inserted)`.
    fn advance(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        scratch: &mut SearchScratch,
        found: &mut Vec<SubgraphMatch>,
    ) -> (u64, u64) {
        self.pending.clear();
        self.advanced_for = Some(edge.id);
        let inserted_before = self.store.lifetime_inserted();
        let mut searches = 0u64;
        for (rank, &leaf) in self.tree.leaves().iter().enumerate() {
            if !self.per_leaf_types[rank].contains(&edge.edge_type) {
                continue;
            }
            found.clear();
            find_matches_containing_edge_into(
                graph,
                &self.query,
                self.tree.subgraph(leaf),
                edge,
                scratch,
                found,
            );
            searches += 1;
            for m in found.drain(..) {
                self.store
                    .insert(&self.tree, leaf, m, self.window, &mut self.pending);
            }
        }
        (searches, self.store.lifetime_inserted() - inserted_before)
    }

    /// Rebuilds the table from the retained graph, in the deterministic
    /// `(timestamp, id)` order `ContinuousQueryEngine::rebuild` uses.
    /// Emissions are discarded: every prefix-root match reconstructed here
    /// lies entirely in the retained (pre-subscription) graph, so whoever
    /// was subscribed when its last edge arrived already consumed it.
    fn replay(&mut self, graph: &DynamicGraph) {
        self.store.clear();
        let mut edges: Vec<EdgeData> = graph
            .edges()
            .filter(|e| self.edge_types.binary_search(&e.edge_type).is_ok())
            .copied()
            .collect();
        edges.sort_unstable_by_key(|e| (e.timestamp, e.id));
        let mut discard = Vec::new();
        let mut scratch = SearchScratch::default();
        let mut found = Vec::new();
        for edge in &edges {
            for (rank, &leaf) in self.tree.leaves().iter().enumerate() {
                if !self.per_leaf_types[rank].contains(&edge.edge_type) {
                    continue;
                }
                found.clear();
                find_matches_containing_edge_into(
                    graph,
                    &self.query,
                    self.tree.subgraph(leaf),
                    edge,
                    &mut scratch,
                    &mut found,
                );
                for m in found.drain(..) {
                    self.store
                        .insert(&self.tree, leaf, m, self.window, &mut discard);
                }
            }
            discard.clear();
        }
    }

    /// The boundary value of a prefix-root match: the smallest, over the
    /// prefix leaves, of the newest edge id bound within the leaf. A
    /// subscriber sees the match iff this is at or past its subscription
    /// boundary (see the module docs).
    fn dep_of(&self, m: &SubgraphMatch) -> u64 {
        self.leaf_edges
            .iter()
            .map(|edges| {
                edges
                    .iter()
                    .map(|&e| m.data_edge(e).expect("root match binds every edge").0)
                    .max()
                    .expect("leaves are non-empty")
            })
            .min()
            .expect("prefixes have at least two leaves")
    }
}

/// Snapshot of the shared join stage's bookkeeping, used by tests, examples
/// and the `sharedjoin` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedJoinStats {
    /// Live canonical prefix tables.
    pub tables: usize,
    /// Current subscriptions across all tables (each query subscribes to at
    /// most one table).
    pub subscriptions: usize,
    /// Prefix leaf searches the shared stage actually executed.
    pub searches_run: u64,
    /// Partial-match inserts (leaf + internal) performed in shared tables.
    pub inserts_run: u64,
    /// Prefix leaf searches subscribers did **not** run because another
    /// subscriber's table advance covered them: per advance, `searches ×
    /// (live subscribers − 1)`. This counts against the *eager* private
    /// path — a lazy subscriber's own engine would have gated some of
    /// these behind its bitmap, so for lazy packs the counter is an upper
    /// bound on physically eliminated work (the `sharedjoin` benchmark's
    /// insert-reduction metric compares actually-performed work instead).
    pub searches_saved: u64,
    /// Partial-match inserts subscribers did not perform, accounted the
    /// same way (and with the same eager-equivalent caveat).
    pub inserts_saved: u64,
    /// Prefix-root matches emitted (before per-subscriber filtering).
    pub emissions: u64,
    /// Emissions delivered after window/boundary filtering, summed over
    /// subscribers.
    pub deliveries: u64,
    /// Table back-fills (late-partner migrations and re-subscriptions).
    pub replays: u64,
}

impl SharedJoinStats {
    /// Fraction of would-be prefix work (searches + inserts) that sharing
    /// eliminated; 0 when the stage never ran.
    pub fn elimination_ratio(&self) -> f64 {
        let run = self.searches_run + self.inserts_run;
        let saved = self.searches_saved + self.inserts_saved;
        if run + saved == 0 {
            0.0
        } else {
            saved as f64 / (run + saved) as f64
        }
    }
}

/// Outcome of [`SharedJoinIndex::subscribe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinSubscription {
    /// The query stays on its private join path (no shareable chain, or no
    /// partner yet); its chain is recorded for future partner matching.
    Private,
    /// Subscribed to a (new or existing) table covering `depth` leading
    /// leaves. `migrations` lists previously private queries the caller
    /// must now attach to the same table
    /// ([`SharedJoinIndex::attach_partner`]) — creating a table is only
    /// worthwhile with at least two users, so the registrant's arrival
    /// pulls its partners in.
    Shared {
        /// Number of leading leaves the table covers.
        depth: usize,
        /// Previously private queries with the same chain prefix.
        migrations: Vec<QueryId>,
    },
}

/// The registry-wide index of canonical prefix tables and their
/// subscribers. See the module docs for the semantics.
#[derive(Debug, Clone, Default)]
pub struct SharedJoinIndex {
    entries: Vec<Option<PrefixEntry>>,
    by_sig: HashMap<PrefixSignature, usize>,
    free: Vec<usize>,
    /// Edge type → entries whose prefix contains it (entry dispatch).
    by_type: HashMap<EdgeType, Vec<usize>>,
    /// Query → entry index, for subscribed queries.
    subs: BTreeMap<QueryId, usize>,
    /// Full canonical chains of every join-capable registered query
    /// (subscribed or not), for partner matching.
    chains: BTreeMap<QueryId, PrefixSignature>,
    searches_run: u64,
    inserts_run: u64,
    searches_saved: u64,
    inserts_saved: u64,
    emissions: u64,
    deliveries: u64,
    replays: u64,
    /// Reusable anchored-search buffers for [`SharedJoinIndex::advance_edge`]
    /// — one warm scratch serves every table on every edge.
    scratch: SearchScratch,
    found: Vec<SubgraphMatch>,
}

impl SharedJoinIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a query is evaluated through a shared prefix table.
    pub fn is_subscribed(&self, id: QueryId) -> bool {
        self.subs.contains_key(&id)
    }

    /// The number of leading leaves a query's shared table covers (`None`
    /// when the query runs its join stage privately).
    pub fn subscription_depth(&self, id: QueryId) -> Option<usize> {
        let &idx = self.subs.get(&id)?;
        self.entries[idx].as_ref().map(PrefixEntry::depth)
    }

    /// Whether a canonical prefix is currently materialized as a table
    /// (the residency predicate behind sharing-aware cost estimates).
    pub fn contains(&self, sig: &PrefixSignature) -> bool {
        self.by_sig.contains_key(sig)
    }

    /// The recorded full chain of a registered query, if it is
    /// join-capable.
    pub fn chain_of(&self, id: QueryId) -> Option<&PrefixSignature> {
        self.chains.get(&id)
    }

    /// Current and cumulative bookkeeping.
    pub fn stats(&self) -> SharedJoinStats {
        SharedJoinStats {
            tables: self.by_sig.len(),
            subscriptions: self.subs.len(),
            searches_run: self.searches_run,
            inserts_run: self.inserts_run,
            searches_saved: self.searches_saved,
            inserts_saved: self.inserts_saved,
            emissions: self.emissions,
            deliveries: self.deliveries,
            replays: self.replays,
        }
    }

    /// Computes the canonical chain of an engine's decomposition together
    /// with the full-chain union→owner mapping: `None` for the VF2 baseline
    /// and trees [`tree_chain`] rejects. The mapping is computed once here
    /// and *sliced* per attachment depth (prefix-closure: the depth-`d`
    /// prefix's union ids are exactly the first ids of the full chain), so
    /// attaching never re-canonicalizes.
    fn engine_chain(
        engine: &ContinuousQueryEngine,
    ) -> Option<(PrefixSignature, sp_query::CanonicalMapping)> {
        let tree = engine.tree()?;
        if tree.num_leaves() < MIN_PREFIX_DEPTH {
            return None;
        }
        let leaves: Vec<_> = tree.leaf_subgraphs().cloned().collect();
        prefix_chain(tree.query(), leaves.iter())
    }

    /// Registers a query with the shared join stage. `boundary` is the
    /// query's subscription boundary (its registration stream position for
    /// fresh queries, the *original* registration position for
    /// re-subscriptions after a rebuild); `now` is the current stream
    /// position; `graph` is the retained data graph, needed when an
    /// existing table must be back-filled for an early boundary.
    ///
    /// Policy (greedy, deterministic): attach to the **deepest existing**
    /// table matching a chain prefix; otherwise create a table at the
    /// deepest prefix shared with a currently *private* partner (ties
    /// broken toward the smallest partner id) and report the partners for
    /// migration; otherwise stay private. A created table with a
    /// partner-to-migrate is back-filled by replay before any emission.
    pub fn subscribe(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        boundary: u64,
        now: u64,
        graph: &DynamicGraph,
    ) -> JoinSubscription {
        let Some((chain, mapping)) = Self::engine_chain(engine) else {
            return JoinSubscription::Private;
        };
        self.chains.insert(id, chain.clone());
        // Deepest existing table first: attaching is free (no replay unless
        // this subscriber's boundary predates the table's coverage).
        let existing_depth = (MIN_PREFIX_DEPTH..=chain.depth())
            .rev()
            .find(|&d| self.by_sig.contains_key(&chain.truncated(d)));
        // Deepest private partner: creating a deeper table beats attaching
        // to a shallower existing one.
        let mut partner_depth = 0usize;
        for (&other, other_chain) in &self.chains {
            if other == id || self.subs.contains_key(&other) {
                continue;
            }
            partner_depth = partner_depth.max(chain.common_depth(other_chain));
        }
        if partner_depth >= MIN_PREFIX_DEPTH && partner_depth > existing_depth.unwrap_or(0) {
            let sig = chain.truncated(partner_depth);
            let migrations: Vec<QueryId> = self
                .chains
                .iter()
                .filter(|&(&other, oc)| {
                    other != id
                        && !self.subs.contains_key(&other)
                        && oc.common_depth(&sig) == partner_depth
                })
                .map(|(&other, _)| other)
                .collect();
            let idx = self.create_entry(sig, now);
            self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
            return JoinSubscription::Shared {
                depth: partner_depth,
                migrations,
            };
        }
        if let Some(depth) = existing_depth {
            let idx = self.by_sig[&chain.truncated(depth)];
            self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
            return JoinSubscription::Shared {
                depth,
                migrations: Vec::new(),
            };
        }
        JoinSubscription::Private
    }

    /// Attaches a previously private query to the deepest existing table
    /// matching its recorded chain — the migration half of a
    /// [`JoinSubscription::Shared`] outcome. Returns the table depth, or
    /// `None` when no table matches (e.g. the partner was deregistered in
    /// between).
    pub fn attach_partner(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        boundary: u64,
        graph: &DynamicGraph,
    ) -> Option<usize> {
        let chain = self.chains.get(&id)?.clone();
        let depth = (MIN_PREFIX_DEPTH..=chain.depth())
            .rev()
            .find(|&d| self.by_sig.contains_key(&chain.truncated(d)))?;
        let idx = self.by_sig[&chain.truncated(depth)];
        let (_, mapping) = Self::engine_chain(engine).expect("chain canonicalized before");
        self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
        Some(depth)
    }

    /// Pushes one subscription onto an entry, slicing the subscriber's
    /// full-chain `mapping` down to the entry's depth: union vertex and
    /// edge ids are assigned leaf by leaf, so the depth-`d` prefix owns
    /// exactly the first `sig.num_vertices()` / `sig.num_edges()` ids of
    /// the full chain (prefix-closure), no re-canonicalization needed.
    fn attach_at(
        &mut self,
        idx: usize,
        id: QueryId,
        mapping: &sp_query::CanonicalMapping,
        window: Option<u64>,
        boundary: u64,
        graph: &DynamicGraph,
    ) {
        let entry = self.entries[idx].as_mut().expect("live entry");
        let vertices = entry.sig.num_vertices();
        let edges = entry.sig.num_edges();
        debug_assert!(vertices <= mapping.vertices.len() && edges <= mapping.edges.len());
        entry.subs.push(JoinSub {
            id,
            vmap: mapping.vertices[..vertices].to_vec(),
            emap: mapping.edges[..edges].to_vec(),
            window,
            boundary,
        });
        entry.recompute_window();
        self.subs.insert(id, idx);
        if boundary < entry.populated_since {
            // The subscriber is entitled to matches older than the table:
            // back-fill from the retained graph (replayed matches keep
            // their original edge ids, so everyone's boundary filter still
            // applies).
            entry.replay(graph);
            entry.populated_since = boundary;
            self.replays += 1;
        }
    }

    /// Drops a query's subscription and chain. The last unsubscriber drops
    /// the table entirely ([`SharedJoinStats::tables`] shrinks). Returns
    /// whether the query had been subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        self.chains.remove(&id);
        let Some(idx) = self.subs.remove(&id) else {
            return false;
        };
        let entry = self.entries[idx].as_mut().expect("live entry");
        entry.subs.retain(|s| s.id != id);
        if entry.subs.is_empty() {
            let entry = self.entries[idx].take().expect("checked above");
            self.by_sig.remove(&entry.sig);
            for ids in self.by_type.values_mut() {
                ids.retain(|&i| i != idx);
            }
            self.by_type.retain(|_, ids| !ids.is_empty());
            self.free.push(idx);
        } else {
            entry.recompute_window();
        }
        true
    }

    /// Advances every table whose prefix contains the edge's type: one
    /// shared search-and-join pass per table per edge, regardless of how
    /// many queries subscribe.
    pub fn advance_edge(&mut self, graph: &DynamicGraph, edge: &EdgeData) {
        let Some(ids) = self.by_type.get(&edge.edge_type) else {
            return;
        };
        for &idx in ids {
            let entry = self.entries[idx]
                .as_mut()
                .expect("dispatched entry is live");
            let (searches, inserts) =
                entry.advance(graph, edge, &mut self.scratch, &mut self.found);
            let saved = entry.subs.len().saturating_sub(1) as u64;
            self.searches_run += searches;
            self.inserts_run += inserts;
            self.searches_saved += searches * saved;
            self.inserts_saved += inserts * saved;
            self.emissions += entry.pending.len() as u64;
        }
    }

    /// Builds the per-subscriber feed for one engine on the current edge:
    /// the table's pending emissions filtered by the subscriber's window
    /// and boundary and rebased onto its numbering. Returns `None` for
    /// unsubscribed queries (the caller falls back to the leaf-stage or
    /// private path). Subscribed queries always get a feed — possibly with
    /// no matches — because their engines must skip the prefix leaves
    /// either way.
    pub fn feed_for(&mut self, id: QueryId, edge: &EdgeData) -> Option<PrefixFeed> {
        let &idx = self.subs.get(&id)?;
        let entry = self.entries[idx]
            .as_ref()
            .expect("subscribed entry is live");
        let sub = entry
            .subs
            .iter()
            .find(|s| s.id == id)
            .expect("subscription is listed on its entry");
        let mut matches = Vec::new();
        if entry.advanced_for == Some(edge.id) {
            for m in &entry.pending {
                if let Some(tw) = sub.window {
                    if !m.within_window(tw) {
                        continue;
                    }
                }
                if sub.boundary > 0 && entry.dep_of(m) < sub.boundary {
                    continue;
                }
                matches.push(m.remapped(&sub.vmap, &sub.emap));
            }
        }
        self.deliveries += matches.len() as u64;
        Some(PrefixFeed {
            depth: entry.depth(),
            matches,
            shared: entry.subs.len() > 1,
        })
    }

    /// Purges every table against the current graph (dead edges and the
    /// table-level window). Returns the number of partial matches removed.
    pub fn purge(&mut self, graph: &DynamicGraph) -> usize {
        let latest = graph.latest_timestamp();
        self.entries
            .iter_mut()
            .flatten()
            .map(|e| e.store.purge(graph, latest, e.window))
            .sum()
    }

    /// Clears all runtime state — table contents, pending emissions,
    /// boundaries and cumulative counters — while keeping the tables and
    /// subscriptions themselves, so the same registry can replay another
    /// stream from scratch (every subscriber behaves as registered at
    /// stream start). Mirrors `ContinuousQueryEngine::reset`.
    pub fn reset(&mut self) {
        for entry in self.entries.iter_mut().flatten() {
            entry.store.clear();
            entry.pending.clear();
            entry.advanced_for = None;
            entry.populated_since = 0;
            for sub in &mut entry.subs {
                sub.boundary = 0;
            }
        }
        self.searches_run = 0;
        self.inserts_run = 0;
        self.searches_saved = 0;
        self.inserts_saved = 0;
        self.emissions = 0;
        self.deliveries = 0;
        self.replays = 0;
    }

    fn create_entry(&mut self, sig: PrefixSignature, now: u64) -> usize {
        let entry = PrefixEntry::new(sig.clone(), None, now);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        for &t in &self.entries[idx].as_ref().expect("just created").edge_types {
            self.by_type.entry(t).or_default().push(idx);
        }
        self.by_sig.insert(sig, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sp_graph::Schema;
    use sp_selectivity::SelectivityEstimator;

    fn chain_engine(types: &[u32], window: Option<u64>) -> ContinuousQueryEngine {
        let mut q = QueryGraph::new("q");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, EdgeType(t));
            prev = next;
        }
        ContinuousQueryEngine::new(q, Strategy::Single, &SelectivityEstimator::new(), window)
            .unwrap()
    }

    fn graph() -> DynamicGraph {
        DynamicGraph::new(Schema::new())
    }

    #[test]
    fn first_query_stays_private_until_a_partner_arrives() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        assert_eq!(
            index.subscribe(QueryId(0), &a, 0, 0, &g),
            JoinSubscription::Private
        );
        assert_eq!(index.stats().tables, 0);
        // The partner arrives: a table is created and the private query is
        // reported for migration.
        let b = chain_engine(&[1, 2], Some(100));
        match index.subscribe(QueryId(1), &b, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 2);
                assert_eq!(migrations, vec![QueryId(0)]);
            }
            other => panic!("expected Shared, got {other:?}"),
        }
        assert_eq!(index.attach_partner(QueryId(0), &a, 0, &g), Some(2));
        let stats = index.stats();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.subscriptions, 2);
        assert!(index.is_subscribed(QueryId(0)) && index.is_subscribed(QueryId(1)));
        assert_eq!(index.subscription_depth(QueryId(0)), Some(2));
    }

    #[test]
    fn later_queries_attach_to_the_deepest_existing_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        // A 3-leaf query whose chain starts with the existing [1, 2] prefix
        // attaches at depth 2 — no new table.
        let c = chain_engine(&[1, 2, 3], None);
        assert_eq!(
            index.subscribe(QueryId(2), &c, 0, 0, &g),
            JoinSubscription::Shared {
                depth: 2,
                migrations: vec![]
            }
        );
        assert_eq!(index.stats().tables, 1);
        assert_eq!(index.subscription_depth(QueryId(2)), Some(2));
    }

    #[test]
    fn deeper_private_partner_beats_shallower_existing_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        // Table at [1, 2] held by queries 0 and 1.
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        // Query 2 arrives with chain [1, 2, 3] — attaches at the [1, 2]
        // table (no private partner shares more).
        let c = chain_engine(&[1, 2, 3], None);
        index.subscribe(QueryId(2), &c, 0, 0, &g);
        assert_eq!(index.subscription_depth(QueryId(2)), Some(2));
        // Hmm — to exercise the deeper-partner rule we need a private
        // chain. Deregister query 2, re-add it as private by registering a
        // non-overlapping query first... simpler: a fresh index.
        let mut index = SharedJoinIndex::new();
        let c1 = chain_engine(&[1, 2, 3], None);
        let c2 = chain_engine(&[9, 8], None);
        let c3 = chain_engine(&[9, 8], None);
        index.subscribe(QueryId(0), &c1, 0, 0, &g); // private [1,2,3]
        index.subscribe(QueryId(1), &c2, 0, 0, &g); // private [9,8]
        index.subscribe(QueryId(2), &c3, 0, 0, &g); // creates [9,8] table
        index.attach_partner(QueryId(1), &c2, 0, &g);
        // Query 3's chain [1,2,3] shares depth 3 with private query 0 and
        // nothing with the [9,8] table: a new depth-3 table wins.
        let c4 = chain_engine(&[1, 2, 3], None);
        match index.subscribe(QueryId(3), &c4, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 3);
                assert_eq!(migrations, vec![QueryId(0)]);
            }
            other => panic!("expected a deep table, got {other:?}"),
        }
        assert_eq!(index.stats().tables, 2);
    }

    #[test]
    fn last_unsubscriber_drops_the_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        assert_eq!(index.stats().tables, 1);
        assert!(index.unsubscribe(QueryId(0)));
        assert_eq!(index.stats().tables, 1, "query 1 still holds the table");
        assert!(index.unsubscribe(QueryId(1)));
        let stats = index.stats();
        assert_eq!(stats.tables, 0);
        assert_eq!(stats.subscriptions, 0);
        assert!(!index.unsubscribe(QueryId(1)), "double unsubscribe");
    }

    #[test]
    fn single_leaf_and_vf2_queries_are_not_join_capable() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let one = chain_engine(&[4], None);
        assert_eq!(
            index.subscribe(QueryId(0), &one, 0, 0, &g),
            JoinSubscription::Private
        );
        assert!(index.chain_of(QueryId(0)).is_none());
        let mut q = QueryGraph::new("vf2");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        q.add_edge(b, c, EdgeType(1));
        let vf2 = ContinuousQueryEngine::new(
            q,
            Strategy::Vf2Baseline,
            &SelectivityEstimator::new(),
            None,
        )
        .unwrap();
        assert_eq!(
            index.subscribe(QueryId(1), &vf2, 0, 0, &g),
            JoinSubscription::Private
        );
    }

    #[test]
    fn table_window_is_the_loosest_subscriber_window() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], Some(100));
        let b = chain_engine(&[1, 2], Some(500));
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        let idx = *index.subs.get(&QueryId(0)).unwrap();
        assert_eq!(index.entries[idx].as_ref().unwrap().window, Some(500));
        // An unwindowed subscriber makes the table unbounded.
        let c = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(2), &c, 0, 0, &g);
        assert_eq!(index.entries[idx].as_ref().unwrap().window, None);
        // ... and its departure tightens the window again.
        index.unsubscribe(QueryId(2));
        assert_eq!(index.entries[idx].as_ref().unwrap().window, Some(500));
    }
}
