//! Shared join stage: refcounted canonical partial-match tables for common
//! SJ-Tree prefixes across the query registry.
//!
//! Shared-leaf evaluation (PR 3, [`crate::SharedLeafIndex`]) stopped at the
//! leaves: two queries with the same leaf sequence still maintained
//! duplicate partial-match tables and ran duplicate hash-join work on every
//! edge. [`SharedJoinIndex`] extends the sharing through the join stage —
//! the multi-query design of the StreamWorks line of work (Choudhury et
//! al., EDBT 2015; arXiv:1407.3745):
//!
//! * every registered query's decomposition is canonicalized to a
//!   [`PrefixSignature`] chain (`sp-query`); queries whose chains begin with
//!   the same steps can share one **canonical prefix table** — a
//!   registry-owned [`SjTree`] + [`MatchStore`] over the canonical union
//!   graph of the common leading leaves;
//! * per streaming edge, each live prefix table advances **once**: the
//!   prefix leaves are searched, the discovered matches inserted, and the
//!   recursive hash join run against the one shared table set. New
//!   prefix-root matches are *emitted*: rebased onto every subscriber via
//!   [`SubgraphMatch::remapped`] and consumed by the subscriber's engine as
//!   inserts at its own prefix-covering node
//!   ([`ContinuousQueryEngine::process_edge_shared`]) — or directly as
//!   complete matches when the prefix spans the whole tree;
//! * tables are **refcounted**: the last unsubscriber (deregistration or a
//!   drift-driven re-subscription) drops the table; a late subscriber to an
//!   existing table sees no pre-registration matches (see *Boundaries*).
//!
//! # Trie of prefix tables
//!
//! Tables are organized as a **trie keyed on
//! [`ChainStep`](sp_query::ChainStep)s** (the
//! query-clustering shape of Zervakis et al., "Efficient Continuous
//! Multi-Query Processing over Graph Streams"): a node whose signature
//! extends another materialized signature is that node's *child*, and on
//! every dispatched edge the parent advances first and its freshly emitted
//! prefix-root matches are **consumed by the child** as inserts at the
//! child's internal node covering the parent's leaves — instead of the
//! child re-running the parent's leaf searches and re-storing its partials.
//! A child therefore stores only its *suffix* stages (the consume node plus
//! its own leaves and upper joins); the storage for the shared `[A,B]`
//! partials exists in exactly one place. Subscribers hang off the node
//! covering their deepest shared prefix, refcounts are per node, and a node
//! outlived by its children (its own last subscriber left) stays alive
//! until the whole subtree is unsubscribed. When a later registration
//! materializes a prefix *between* an existing node and its parent (or
//! above a current trie root), the trie edge is **split**: the extension
//! re-points onto the new node (its consume stage is already populated —
//! no replay needed on its side) and the new node is back-filled by
//! retained-window replay before it feeds anyone. The flat PR 5 policy
//! remains available behind [`SharedJoinIndex::set_trie`] as a comparison
//! baseline for the benchmarks and equivalence tests.
//!
//! # Windows move to emit time
//!
//! Subscribers with different `tW` share one table: the table itself prunes
//! joins only against the *loosest* subscriber window (the same
//! [`retention_for_windows`](crate::retention_for_windows) rule the shared
//! graph uses), and each subscriber's own `tW` is applied when emissions
//! are rebased. A match over-window for one subscriber but inside another's
//! is thus delivered exactly where the private path would have delivered
//! it; stored partials an individual engine would have pruned early are
//! kept (they are still needed by the loosest subscriber) and die at the
//! table's purge instead — semantics are unaffected because a match's time
//! span only grows as it joins upward.
//!
//! # Lazy Search moves to emit time
//!
//! The shared table is evaluated eagerly (no lazy gating inside the
//! prefix): gating is a per-engine work-saving device, and with multiple
//! subscribers the one shared evaluation replaces *all* of their prefix
//! work. Lazy subscribers keep their gating for the suffix leaves — each
//! emission inserted at the subscriber's prefix node trips the ordinary
//! `ENABLE-SEARCH-SIBLING` machinery (retroactive probe included), so the
//! next leaf's search is enabled exactly when a private insert would have
//! enabled it. Eager and lazy execution of the same tree report identical
//! match multisets (the PR 1 equivalence tests), so the emitted stream is
//! the one every subscriber's own prefix would have produced.
//!
//! # Boundaries: late subscribers
//!
//! A query that joins an existing table at stream position `B` must not see
//! matches it would not have found had it run privately from `B`. For the
//! eager semantics this set is exact and *intrinsic to the match*: a
//! private engine registered at `B` holds a leaf match iff the leaf's
//! last-arriving edge was dispatched at or after `B` (anchored searches may
//! bind older retained edges — only the *anchor* must be new). A
//! prefix-root match is therefore visible to the subscriber iff
//! `min over leaves (max edge id within the leaf) ≥ B` — computed per
//! emission against each subscriber's recorded boundary, with no epoch
//! bookkeeping in the table itself. (Lazy engines registered mid-stream can
//! additionally resurrect *wholly pre-registration* leaf matches through
//! retroactive probes; under the shared join stage a late subscriber gets
//! the strategy-independent eager-late semantics instead.)
//!
//! Conversely, when a *live* query migrates onto a newly created table
//! (a later registration or re-decomposition finally gives it a sharing
//! partner), the table is back-filled by replaying the retained graph in
//! `(timestamp, id)` order — the same recipe as
//! [`ContinuousQueryEngine::rebuild`] — so partials the query's private
//! prefix already held keep completing. Replay emissions are discarded
//! (every one of them was already reported) and replayed matches carry
//! their original edge ids, so boundary filtering keeps working unchanged.

use crate::engine::{ContinuousQueryEngine, PrefixFeed};
use crate::registry::{retention_for_windows, QueryId};
use sp_graph::{DynamicGraph, EdgeData, EdgeId, EdgeType};
use sp_iso::{find_matches_containing_edge_into, SearchScratch, SubgraphMatch};
use sp_query::{prefix_chain, PrefixSignature, QueryEdgeId, QueryGraph, QueryVertexId};
use sp_sjtree::{MatchStore, SjTree};
use std::collections::{BTreeMap, HashMap};

/// A shared prefix must contain at least one internal join node, i.e. cover
/// at least two leaves — depth-1 "prefixes" are exactly the leaf shapes the
/// shared **leaf** stage already deduplicates.
pub const MIN_PREFIX_DEPTH: usize = 2;

/// The canonical chain of one SJ-Tree, as the shared join stage sees it:
/// `None` for trees with nothing to join (fewer than [`MIN_PREFIX_DEPTH`]
/// leaves) or whose leaves defeat canonicalization (oversized hand-built
/// leaves). This is the **single** join-capability rule — the parallel
/// runtime's prefix-aware shard assignment mirrors worker-registry
/// residency through it, so both sides must always agree.
pub fn tree_chain(tree: &SjTree) -> Option<PrefixSignature> {
    if tree.num_leaves() < MIN_PREFIX_DEPTH {
        return None;
    }
    let leaves: Vec<_> = tree.leaf_subgraphs().cloned().collect();
    prefix_chain(tree.query(), leaves.iter()).map(|(sig, _)| sig)
}

/// One query's subscription to a prefix table.
#[derive(Debug, Clone)]
struct JoinSub {
    id: QueryId,
    /// Canonical union vertex → subscriber query vertex.
    vmap: Vec<QueryVertexId>,
    /// Canonical union edge → subscriber query edge.
    emap: Vec<QueryEdgeId>,
    /// The subscriber's own `tW`, applied to emissions at rebase time.
    window: Option<u64>,
    /// First edge id whose dispatch the subscriber is entitled to see
    /// (`0` for queries registered before any edge was processed).
    boundary: u64,
}

/// One refcounted canonical prefix table.
#[derive(Debug, Clone)]
struct PrefixEntry {
    sig: PrefixSignature,
    /// Canonical union query the anchored searches run against.
    query: QueryGraph,
    /// Left-deep canonical tree over the prefix leaves; its root is the
    /// prefix-covering node whose matches are emitted.
    tree: SjTree,
    store: MatchStore,
    /// Distinct edge types across the prefix (entry dispatch pre-filter).
    edge_types: Vec<EdgeType>,
    /// Distinct edge types per leaf rank (per-leaf search pre-filter).
    per_leaf_types: Vec<Vec<EdgeType>>,
    /// Canonical edge ids per leaf rank, for the boundary (`dep`) filter.
    leaf_edges: Vec<Vec<QueryEdgeId>>,
    /// Loosest window across the node's **subtree** (own subscribers plus
    /// every descendant's; `None` = someone is unwindowed): a parent's
    /// emissions feed its children, so its table must retain at least as
    /// much as any consumer downstream. Prunes joins inside the table and
    /// drives the periodic purge.
    window: Option<u64>,
    /// Subscribers in subscription order (the node refcount is
    /// `subs.len()`, but lifetime also considers `children`).
    subs: Vec<JoinSub>,
    /// Stream position the table's contents are complete from; subscribing
    /// with an earlier boundary triggers a replay.
    populated_since: u64,
    /// Prefix-root matches created by the current edge (canonical ids).
    pending: Vec<SubgraphMatch>,
    /// Edge the `pending` buffer belongs to.
    advanced_for: Option<EdgeId>,
    /// Trie parent: the deepest materialized strict prefix of `sig`.
    /// `None` for trie roots and for every entry under the flat policy.
    parent: Option<usize>,
    /// `self.entries[parent].depth()`, or `0` without a parent. Leaf ranks
    /// `0..parent_depth` are covered by consuming the parent's emissions,
    /// so this node searches and stores only from rank `parent_depth` up.
    parent_depth: usize,
    /// Trie children: materialized extensions consuming this node's
    /// emissions.
    children: Vec<usize>,
    /// Subscribers across the node's subtree (own + descendants) — the
    /// would-be-runner count behind the saved-work accounting.
    subtree_subs: usize,
}

impl PrefixEntry {
    fn new(sig: PrefixSignature, window: Option<u64>, populated_since: u64) -> Self {
        let (query, leaves) = sig.instantiate("shared-prefix");
        let per_leaf_types: Vec<Vec<EdgeType>> = leaves
            .iter()
            .map(|leaf| {
                let mut t: Vec<EdgeType> = leaf.edges().map(|e| query.edge(e).edge_type).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        let leaf_edges: Vec<Vec<QueryEdgeId>> =
            leaves.iter().map(|leaf| leaf.edges().collect()).collect();
        let tree = SjTree::from_leaves(query.clone(), leaves);
        let store = MatchStore::new(&tree);
        PrefixEntry {
            edge_types: sig.edge_types(),
            sig,
            query,
            tree,
            store,
            per_leaf_types,
            leaf_edges,
            window,
            subs: Vec::new(),
            populated_since,
            pending: Vec::new(),
            advanced_for: None,
            parent: None,
            parent_depth: 0,
            children: Vec::new(),
            subtree_subs: 0,
        }
    }

    fn depth(&self) -> usize {
        self.sig.depth()
    }

    /// The internal tree node at which the parent's emissions are inserted:
    /// the join node covering exactly the parent's leaves `0..parent_depth`.
    /// Canonical ids line up across the two trees by prefix-closure, so the
    /// parent's root matches need no remapping.
    fn consume_node(&self) -> sp_sjtree::NodeId {
        debug_assert!(self.parent.is_some());
        self.tree
            .parent(self.tree.leaf(self.parent_depth - 1))
            .expect("a strict prefix has a covering join node")
    }

    /// Drops the stages the trie parent owns on this node's behalf: leaf
    /// ranks `0..parent_depth` and the internal join nodes strictly below
    /// the consume node (the consume node itself and everything above stay
    /// — that is this node's own suffix state). Mirrors
    /// `ContinuousQueryEngine::clear_prefix_state`.
    fn clear_parent_stages(&mut self) {
        if self.parent.is_none() {
            return;
        }
        let d = self.parent_depth;
        for rank in 0..d {
            self.store.clear_node(self.tree.leaf(rank));
        }
        for j in 1..d.saturating_sub(1) {
            let node = self
                .tree
                .parent(self.tree.leaf(j))
                .expect("non-root leaves have join parents");
            self.store.clear_node(node);
        }
    }

    /// Runs the prefix's per-edge work against the shared table, leaving the
    /// new prefix-root matches in `pending`: first consumes `parent_feed` —
    /// the trie parent's emissions for this same edge — as inserts at the
    /// consume node, then runs the leaf searches for this node's own ranks
    /// (`parent_depth..`). Returns `(searches run, matches inserted)`.
    fn advance(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        parent_feed: &[SubgraphMatch],
        scratch: &mut SearchScratch,
        found: &mut Vec<SubgraphMatch>,
    ) -> (u64, u64) {
        self.pending.clear();
        self.advanced_for = Some(edge.id);
        let inserted_before = self.store.lifetime_inserted();
        let mut searches = 0u64;
        if !parent_feed.is_empty() {
            let consume = self.consume_node();
            for m in parent_feed {
                self.store.insert(
                    &self.tree,
                    consume,
                    m.clone(),
                    self.window,
                    &mut self.pending,
                );
            }
        }
        for (rank, &leaf) in self
            .tree
            .leaves()
            .iter()
            .enumerate()
            .skip(self.parent_depth)
        {
            if !self.per_leaf_types[rank].contains(&edge.edge_type) {
                continue;
            }
            found.clear();
            find_matches_containing_edge_into(
                graph,
                &self.query,
                self.tree.subgraph(leaf),
                edge,
                scratch,
                found,
            );
            searches += 1;
            for m in found.drain(..) {
                self.store
                    .insert(&self.tree, leaf, m, self.window, &mut self.pending);
            }
        }
        (searches, self.store.lifetime_inserted() - inserted_before)
    }

    /// Rebuilds the table from the retained graph, in the deterministic
    /// `(timestamp, id)` order `ContinuousQueryEngine::rebuild` uses.
    /// Emissions are discarded: every prefix-root match reconstructed here
    /// lies entirely in the retained (pre-subscription) graph, so whoever
    /// was subscribed when its last edge arrived already consumed it.
    ///
    /// The replay always runs **all** ranks — a node with a trie parent
    /// needs the lower stages live while the joins propagate upward — and
    /// the caller clears the parent-owned stages afterwards
    /// ([`PrefixEntry::clear_parent_stages`]).
    fn replay(&mut self, graph: &DynamicGraph) {
        self.store.clear();
        let mut edges: Vec<EdgeData> = graph
            .edges()
            .filter(|e| self.edge_types.binary_search(&e.edge_type).is_ok())
            .copied()
            .collect();
        edges.sort_unstable_by_key(|e| (e.timestamp, e.id));
        let mut discard = Vec::new();
        let mut scratch = SearchScratch::default();
        let mut found = Vec::new();
        for edge in &edges {
            for (rank, &leaf) in self.tree.leaves().iter().enumerate() {
                if !self.per_leaf_types[rank].contains(&edge.edge_type) {
                    continue;
                }
                found.clear();
                find_matches_containing_edge_into(
                    graph,
                    &self.query,
                    self.tree.subgraph(leaf),
                    edge,
                    &mut scratch,
                    &mut found,
                );
                for m in found.drain(..) {
                    self.store
                        .insert(&self.tree, leaf, m, self.window, &mut discard);
                }
            }
            discard.clear();
        }
    }

    /// The boundary value of a prefix-root match: the smallest, over the
    /// prefix leaves, of the newest edge id bound within the leaf. A
    /// subscriber sees the match iff this is at or past its subscription
    /// boundary (see the module docs).
    fn dep_of(&self, m: &SubgraphMatch) -> u64 {
        self.leaf_edges
            .iter()
            .map(|edges| {
                edges
                    .iter()
                    .map(|&e| m.data_edge(e).expect("root match binds every edge").0)
                    .max()
                    .expect("leaves are non-empty")
            })
            .min()
            .expect("prefixes have at least two leaves")
    }
}

/// Snapshot of the shared join stage's bookkeeping, used by tests, examples
/// and the `sharedjoin` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedJoinStats {
    /// Live canonical prefix tables.
    pub tables: usize,
    /// Current subscriptions across all tables (each query subscribes to at
    /// most one table).
    pub subscriptions: usize,
    /// Prefix leaf searches the shared stage actually executed.
    pub searches_run: u64,
    /// Partial-match inserts (leaf + internal) performed in shared tables.
    pub inserts_run: u64,
    /// Prefix leaf searches subscribers did **not** run because another
    /// subscriber's table advance covered them: per advance, `searches ×
    /// (live subscribers − 1)`. This counts against the *eager* private
    /// path — a lazy subscriber's own engine would have gated some of
    /// these behind its bitmap, so for lazy packs the counter is an upper
    /// bound on physically eliminated work (the `sharedjoin` benchmark's
    /// insert-reduction metric compares actually-performed work instead).
    pub searches_saved: u64,
    /// Partial-match inserts subscribers did not perform, accounted the
    /// same way (and with the same eager-equivalent caveat).
    pub inserts_saved: u64,
    /// Prefix-root matches emitted (before per-subscriber filtering).
    pub emissions: u64,
    /// Emissions delivered after window/boundary filtering, summed over
    /// subscribers.
    pub deliveries: u64,
    /// Table back-fills (late-partner migrations, re-subscriptions and
    /// trie-edge splits).
    pub replays: u64,
    /// Deepest live trie node (equals the deepest flat table when no
    /// prefixes nest; 0 with no tables).
    pub max_depth: usize,
    /// Parent-node emissions consumed by child trie nodes in place of
    /// re-running the parent's leaf searches and joins (always 0 under the
    /// flat policy).
    pub parent_feeds: u64,
}

impl SharedJoinStats {
    /// Fraction of would-be prefix work (searches + inserts) that sharing
    /// eliminated; 0 when the stage never ran.
    pub fn elimination_ratio(&self) -> f64 {
        let run = self.searches_run + self.inserts_run;
        let saved = self.searches_saved + self.inserts_saved;
        if run + saved == 0 {
            0.0
        } else {
            saved as f64 / (run + saved) as f64
        }
    }
}

/// One live node of the prefix-table trie, as reported by
/// [`SharedJoinIndex::trie_nodes`] for tests and benchmarks. Under the flat
/// policy every node reads as a parentless, childless trie root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrieNodeInfo {
    /// Leaves the node's canonical prefix covers.
    pub depth: usize,
    /// Depth of the trie parent feeding this node (`None` for trie roots).
    pub parent_depth: Option<usize>,
    /// Child nodes consuming this node's emissions.
    pub children: usize,
    /// Queries subscribed directly at this node.
    pub subscribers: usize,
    /// Live stored partial matches per canonical tree node: first the leaf
    /// ranks `0..depth`, then the internal join nodes by ascending coverage
    /// (`leaves 0..=1`, `0..=2`, …). The last slot is the prefix root,
    /// whose matches are emitted, never stored — it stays 0. A node with a
    /// trie parent keeps its parent-covered slots empty: those partials
    /// live in exactly one place, the child's consume slot.
    pub live_by_node: Vec<usize>,
}

/// Outcome of [`SharedJoinIndex::subscribe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinSubscription {
    /// The query stays on its private join path (no shareable chain, or no
    /// partner yet); its chain is recorded for future partner matching.
    Private,
    /// Subscribed to a (new or existing) table covering `depth` leading
    /// leaves. `migrations` lists previously private queries the caller
    /// must now attach to the same table
    /// ([`SharedJoinIndex::attach_partner`]) — creating a table is only
    /// worthwhile with at least two users, so the registrant's arrival
    /// pulls its partners in.
    Shared {
        /// Number of leading leaves the table covers.
        depth: usize,
        /// Previously private queries with the same chain prefix.
        migrations: Vec<QueryId>,
    },
}

/// The registry-wide index of canonical prefix tables and their
/// subscribers. See the module docs for the semantics.
#[derive(Debug, Clone)]
pub struct SharedJoinIndex {
    entries: Vec<Option<PrefixEntry>>,
    by_sig: HashMap<PrefixSignature, usize>,
    free: Vec<usize>,
    /// Edge type → entries whose prefix contains it (entry dispatch), each
    /// list kept sorted shallow-first so a trie parent always advances
    /// before any of its children on the same edge.
    by_type: HashMap<EdgeType, Vec<usize>>,
    /// Query → entry index, for subscribed queries.
    subs: BTreeMap<QueryId, usize>,
    /// Full canonical chains of every join-capable registered query
    /// (subscribed or not), for partner matching.
    chains: BTreeMap<QueryId, PrefixSignature>,
    /// Whether nesting prefixes form a trie (default) or stay independent
    /// flat tables under the PR 5 greedy policy.
    trie: bool,
    /// Whether prefix tables store their partial matches as interned arena
    /// rows (default) or materialized `SubgraphMatch` buckets; mirrors the
    /// engines' own setting so the registry toggles both in lockstep.
    interning: bool,
    searches_run: u64,
    inserts_run: u64,
    searches_saved: u64,
    inserts_saved: u64,
    emissions: u64,
    deliveries: u64,
    replays: u64,
    parent_feeds: u64,
    /// Reusable anchored-search buffers for [`SharedJoinIndex::advance_edge`]
    /// — one warm scratch serves every table on every edge.
    scratch: SearchScratch,
    found: Vec<SubgraphMatch>,
    /// Recycled emission buffers for [`SharedJoinIndex::feed_for`]: a feed's
    /// rebased matches live in a pooled `Vec` handed back through
    /// [`SharedJoinIndex::recycle_feed`] once the engine drained it, so the
    /// steady-state per-delivered-match path allocates nothing.
    feed_pool: Vec<Vec<SubgraphMatch>>,
}

impl Default for SharedJoinIndex {
    fn default() -> Self {
        SharedJoinIndex {
            entries: Vec::new(),
            by_sig: HashMap::new(),
            free: Vec::new(),
            by_type: HashMap::new(),
            subs: BTreeMap::new(),
            chains: BTreeMap::new(),
            trie: true,
            interning: true,
            searches_run: 0,
            inserts_run: 0,
            searches_saved: 0,
            inserts_saved: 0,
            emissions: 0,
            deliveries: 0,
            replays: 0,
            parent_feeds: 0,
            scratch: SearchScratch::default(),
            found: Vec::new(),
            feed_pool: Vec::new(),
        }
    }
}

impl SharedJoinIndex {
    /// Creates an empty index (trie policy enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches between the trie policy (default) and the flat PR 5 policy
    /// for *future* subscriptions. Like
    /// [`set_join_sharing`](crate::QueryRegistry::set_join_sharing) this is
    /// a registration-time property: existing nodes keep their links.
    pub fn set_trie(&mut self, enabled: bool) {
        self.trie = enabled;
    }

    /// Whether nesting prefixes share storage through the trie.
    pub fn trie_enabled(&self) -> bool {
        self.trie
    }

    /// Switches every live prefix table (and all future ones) between the
    /// interned and materialized match representations, converting live
    /// state in place — stored matches, keys and bucket order survive, so
    /// the toggle is safe mid-stream.
    pub fn set_match_interning(&mut self, enabled: bool) {
        self.interning = enabled;
        for entry in self.entries.iter_mut().flatten() {
            entry.store.set_interning(&entry.tree, enabled);
        }
    }

    /// Whether prefix tables intern their partial matches.
    pub fn match_interning(&self) -> bool {
        self.interning
    }

    /// Total partial matches ever stored across every live prefix table
    /// (tables dropped when their last subscriber left no longer count) —
    /// the shared-join share of the soak's `alloc.allocs_per_match`
    /// denominator.
    pub fn lifetime_stored(&self) -> u64 {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.store.lifetime_inserted())
            .sum()
    }

    /// Whether a query is evaluated through a shared prefix table.
    pub fn is_subscribed(&self, id: QueryId) -> bool {
        self.subs.contains_key(&id)
    }

    /// The number of leading leaves a query's shared table covers (`None`
    /// when the query runs its join stage privately).
    pub fn subscription_depth(&self, id: QueryId) -> Option<usize> {
        let &idx = self.subs.get(&id)?;
        self.entries[idx].as_ref().map(PrefixEntry::depth)
    }

    /// Whether a canonical prefix is currently materialized as a table
    /// (the residency predicate behind sharing-aware cost estimates).
    pub fn contains(&self, sig: &PrefixSignature) -> bool {
        self.by_sig.contains_key(sig)
    }

    /// The recorded full chain of a registered query, if it is
    /// join-capable.
    pub fn chain_of(&self, id: QueryId) -> Option<&PrefixSignature> {
        self.chains.get(&id)
    }

    /// Current and cumulative bookkeeping.
    pub fn stats(&self) -> SharedJoinStats {
        SharedJoinStats {
            tables: self.by_sig.len(),
            subscriptions: self.subs.len(),
            searches_run: self.searches_run,
            inserts_run: self.inserts_run,
            searches_saved: self.searches_saved,
            inserts_saved: self.inserts_saved,
            emissions: self.emissions,
            deliveries: self.deliveries,
            replays: self.replays,
            max_depth: self
                .entries
                .iter()
                .flatten()
                .map(PrefixEntry::depth)
                .max()
                .unwrap_or(0),
            parent_feeds: self.parent_feeds,
        }
    }

    /// Snapshot of every live trie node, shallow-first (ties broken by
    /// signature order), for tests and the bench's trie statistics.
    pub fn trie_nodes(&self) -> Vec<TrieNodeInfo> {
        let mut live: Vec<&PrefixEntry> = self.entries.iter().flatten().collect();
        live.sort_by(|a, b| (a.depth(), &a.sig).cmp(&(b.depth(), &b.sig)));
        live.into_iter()
            .map(|e| {
                let k = e.tree.num_leaves();
                let mut live_by_node = Vec::with_capacity(2 * k - 1);
                for &leaf in e.tree.leaves() {
                    live_by_node.push(e.store.live_matches(leaf));
                }
                for j in 1..k {
                    let node = e
                        .tree
                        .parent(e.tree.leaf(j))
                        .expect("non-root leaves have join parents");
                    live_by_node.push(e.store.live_matches(node));
                }
                TrieNodeInfo {
                    depth: e.depth(),
                    parent_depth: e.parent.map(|_| e.parent_depth),
                    children: e.children.len(),
                    subscribers: e.subs.len(),
                    live_by_node,
                }
            })
            .collect()
    }

    /// Computes the canonical chain of an engine's decomposition together
    /// with the full-chain union→owner mapping: `None` for the VF2 baseline
    /// and trees [`tree_chain`] rejects. The mapping is computed once here
    /// and *sliced* per attachment depth (prefix-closure: the depth-`d`
    /// prefix's union ids are exactly the first ids of the full chain), so
    /// attaching never re-canonicalizes.
    fn engine_chain(
        engine: &ContinuousQueryEngine,
    ) -> Option<(PrefixSignature, sp_query::CanonicalMapping)> {
        let tree = engine.tree()?;
        if tree.num_leaves() < MIN_PREFIX_DEPTH {
            return None;
        }
        let leaves: Vec<_> = tree.leaf_subgraphs().cloned().collect();
        prefix_chain(tree.query(), leaves.iter())
    }

    /// Registers a query with the shared join stage. `boundary` is the
    /// query's subscription boundary (its registration stream position for
    /// fresh queries, the *original* registration position for
    /// re-subscriptions after a rebuild); `now` is the current stream
    /// position; `graph` is the retained data graph, needed when an
    /// existing table must be back-filled for an early boundary.
    ///
    /// Policy (greedy, deterministic). Under the **trie** (default): the
    /// target depth is the deeper of the deepest materialized node on the
    /// chain's path and the deepest prefix shared with any other registered
    /// chain not already covered that deep for its owner; the node at that
    /// depth is attached to or created (linking it into the trie, splitting
    /// an existing trie edge and back-filling by replay when needed), and
    /// every query whose chain runs through the node but is covered more
    /// shallowly — private *or* subscribed — is reported for migration.
    /// Under the **flat** PR 5 policy: attach to the deepest existing
    /// table, else create a table at the deepest prefix shared with a
    /// currently *private* partner, else stay private.
    pub fn subscribe(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        boundary: u64,
        now: u64,
        graph: &DynamicGraph,
    ) -> JoinSubscription {
        let Some((chain, mapping)) = Self::engine_chain(engine) else {
            return JoinSubscription::Private;
        };
        self.chains.insert(id, chain.clone());
        if self.trie {
            return self.subscribe_trie(id, &chain, &mapping, engine, boundary, now, graph);
        }
        // Deepest existing table first: attaching is free (no replay unless
        // this subscriber's boundary predates the table's coverage).
        let existing_depth = (MIN_PREFIX_DEPTH..=chain.depth())
            .rev()
            .find(|&d| self.by_sig.contains_key(&chain.truncated(d)));
        // Deepest private partner: creating a deeper table beats attaching
        // to a shallower existing one.
        let mut partner_depth = 0usize;
        for (&other, other_chain) in &self.chains {
            if other == id || self.subs.contains_key(&other) {
                continue;
            }
            partner_depth = partner_depth.max(chain.common_depth(other_chain));
        }
        if partner_depth >= MIN_PREFIX_DEPTH && partner_depth > existing_depth.unwrap_or(0) {
            let sig = chain.truncated(partner_depth);
            let migrations: Vec<QueryId> = self
                .chains
                .iter()
                .filter(|&(&other, oc)| {
                    other != id
                        && !self.subs.contains_key(&other)
                        && oc.common_depth(&sig) == partner_depth
                })
                .map(|(&other, _)| other)
                .collect();
            let idx = self.create_entry(sig, now);
            self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
            return JoinSubscription::Shared {
                depth: partner_depth,
                migrations,
            };
        }
        if let Some(depth) = existing_depth {
            let idx = self.by_sig[&chain.truncated(depth)];
            self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
            return JoinSubscription::Shared {
                depth,
                migrations: Vec::new(),
            };
        }
        JoinSubscription::Private
    }

    /// The trie subscription policy (see [`SharedJoinIndex::subscribe`]).
    #[allow(clippy::too_many_arguments)]
    fn subscribe_trie(
        &mut self,
        id: QueryId,
        chain: &PrefixSignature,
        mapping: &sp_query::CanonicalMapping,
        engine: &ContinuousQueryEngine,
        boundary: u64,
        now: u64,
        graph: &DynamicGraph,
    ) -> JoinSubscription {
        // Deepest materialized node on the chain's path.
        let existing_depth = (MIN_PREFIX_DEPTH..=chain.depth())
            .rev()
            .find(|&d| self.by_sig.contains_key(&chain.truncated(d)))
            .unwrap_or(0);
        // Deepest prefix shared with another registered chain whose owner
        // is not already covered that deep — subscribed-but-shallower
        // partners count (they re-point onto the deeper node), unlike the
        // flat policy's private-only rule.
        let mut partner_depth = 0usize;
        for (&other, other_chain) in &self.chains {
            if other == id {
                continue;
            }
            let d = chain.common_depth(other_chain);
            if d > self.subscription_depth(other).unwrap_or(0) {
                partner_depth = partner_depth.max(d);
            }
        }
        let target = existing_depth.max(partner_depth);
        if target < MIN_PREFIX_DEPTH {
            return JoinSubscription::Private;
        }
        let sig = chain.truncated(target);
        let migrations: Vec<QueryId> = self
            .chains
            .iter()
            .filter(|&(&other, oc)| {
                other != id
                    && oc.common_depth(&sig) == target
                    && self.subscription_depth(other).unwrap_or(0) < target
            })
            .map(|(&other, _)| other)
            .collect();
        let idx = match self.by_sig.get(&sig) {
            Some(&idx) => idx,
            None => self.create_node(sig, now, graph),
        };
        self.attach_at(idx, id, mapping, engine.window(), boundary, graph);
        JoinSubscription::Shared {
            depth: target,
            migrations,
        }
    }

    /// Attaches a migrating query to the deepest existing table matching
    /// its recorded chain — the migration half of a
    /// [`JoinSubscription::Shared`] outcome. The query may be private (the
    /// flat policy's only case) or already subscribed at a shallower node
    /// (the trie re-point case: its old subscription is detached first).
    /// Returns the table depth, or `None` when no table matches (e.g. the
    /// partner was deregistered in between).
    pub fn attach_partner(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        boundary: u64,
        graph: &DynamicGraph,
    ) -> Option<usize> {
        let chain = self.chains.get(&id)?.clone();
        let depth = (MIN_PREFIX_DEPTH..=chain.depth())
            .rev()
            .find(|&d| self.by_sig.contains_key(&chain.truncated(d)))?;
        let idx = self.by_sig[&chain.truncated(depth)];
        if self.subs.get(&id) == Some(&idx) {
            return Some(depth);
        }
        self.detach(id);
        let (_, mapping) = Self::engine_chain(engine).expect("chain canonicalized before");
        self.attach_at(idx, id, &mapping, engine.window(), boundary, graph);
        Some(depth)
    }

    /// Pushes one subscription onto an entry, slicing the subscriber's
    /// full-chain `mapping` down to the entry's depth: union vertex and
    /// edge ids are assigned leaf by leaf, so the depth-`d` prefix owns
    /// exactly the first `sig.num_vertices()` / `sig.num_edges()` ids of
    /// the full chain (prefix-closure), no re-canonicalization needed.
    fn attach_at(
        &mut self,
        idx: usize,
        id: QueryId,
        mapping: &sp_query::CanonicalMapping,
        window: Option<u64>,
        boundary: u64,
        graph: &DynamicGraph,
    ) {
        let entry = self.entries[idx].as_mut().expect("live entry");
        let vertices = entry.sig.num_vertices();
        let edges = entry.sig.num_edges();
        debug_assert!(vertices <= mapping.vertices.len() && edges <= mapping.edges.len());
        entry.subs.push(JoinSub {
            id,
            vmap: mapping.vertices[..vertices].to_vec(),
            emap: mapping.edges[..edges].to_vec(),
            window,
            boundary,
        });
        self.subs.insert(id, idx);
        self.refresh_structure();
        // The subscriber may be entitled to matches older than the node's
        // (or any feeding ancestor's) coverage: back-fill from the retained
        // graph (replayed matches keep their original edge ids, so
        // everyone's boundary filter still applies).
        self.ensure_populated(idx, boundary, graph);
    }

    /// Back-fills `idx` and every trie ancestor whose contents start later
    /// than `boundary`: a node is only complete from `populated_since`, and
    /// a consumer downstream entitled to older matches needs the whole
    /// feeding path complete from its boundary.
    fn ensure_populated(&mut self, idx: usize, boundary: u64, graph: &DynamicGraph) {
        let mut cur = Some(idx);
        while let Some(i) = cur {
            let entry = self.entries[i].as_mut().expect("live entry");
            if boundary < entry.populated_since {
                entry.replay(graph);
                entry.clear_parent_stages();
                entry.populated_since = boundary;
                self.replays += 1;
            }
            cur = entry.parent;
        }
    }

    /// Recomputes the structure-derived per-node state after any
    /// subscription or trie change: subtree subscriber counts, subtree
    /// windows (children processed before parents: depth strictly grows
    /// down the trie), and the shallow-first order of the dispatch lists.
    fn refresh_structure(&mut self) {
        let mut order: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].is_some())
            .collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(self.entries[i].as_ref().expect("filtered live").depth())
        });
        for &i in &order {
            let (mut subs, mut windows, children) = {
                let e = self.entries[i].as_ref().expect("filtered live");
                let windows: Vec<Option<u64>> = e.subs.iter().map(|s| s.window).collect();
                (e.subs.len(), windows, e.children.clone())
            };
            for c in children {
                let child = self.entries[c].as_ref().expect("children are live");
                subs += child.subtree_subs;
                windows.push(child.window);
            }
            let e = self.entries[i].as_mut().expect("filtered live");
            e.subtree_subs = subs;
            e.window = retention_for_windows(windows);
        }
        for ids in self.by_type.values_mut() {
            ids.sort_by_key(|&i| (self.entries[i].as_ref().map(PrefixEntry::depth), i));
        }
    }

    /// Materializes a new trie node for `sig`: links it under the deepest
    /// materialized strict prefix, splices it in *above* any materialized
    /// extension whose current parent is shallower (splitting that trie
    /// edge — the extension's consume stage is already populated, so only
    /// its now-parent-owned lower stages are dropped), and back-fills the
    /// new node by retained-window replay when it has live consumers.
    fn create_node(&mut self, sig: PrefixSignature, now: u64, graph: &DynamicGraph) -> usize {
        let depth = sig.depth();
        let idx = self.create_entry(sig.clone(), now);
        if let Some(p) = (MIN_PREFIX_DEPTH..depth)
            .rev()
            .find_map(|d| self.by_sig.get(&sig.truncated(d)).copied())
        {
            let pd = self.entries[p].as_ref().expect("live parent").depth();
            let e = self.entries[idx].as_mut().expect("just created");
            e.parent = Some(p);
            e.parent_depth = pd;
            self.entries[p]
                .as_mut()
                .expect("live parent")
                .children
                .push(idx);
        }
        let mut spliced = false;
        for i in 0..self.entries.len() {
            if i == idx {
                continue;
            }
            let Some(e) = self.entries[i].as_ref() else {
                continue;
            };
            if e.sig.common_depth(&sig) != depth || e.parent_depth >= depth {
                continue;
            }
            if let Some(op) = e.parent {
                self.entries[op]
                    .as_mut()
                    .expect("live parent")
                    .children
                    .retain(|&c| c != i);
            }
            let e = self.entries[i].as_mut().expect("checked above");
            e.parent = Some(idx);
            e.parent_depth = depth;
            e.clear_parent_stages();
            self.entries[idx]
                .as_mut()
                .expect("just created")
                .children
                .push(i);
            spliced = true;
        }
        self.refresh_structure();
        if spliced {
            // The node was spliced in above live children: it must be
            // complete over everything their subscribers are entitled to
            // before its emissions replace their own lower-stage work.
            let needed = self.subtree_min_boundary(idx);
            self.ensure_populated(idx, needed, graph);
        }
        idx
    }

    /// The earliest subscription boundary across a node's subtree (`0`
    /// when the subtree has no subscribers — conservative full coverage).
    fn subtree_min_boundary(&self, idx: usize) -> u64 {
        let e = self.entries[idx].as_ref().expect("live entry");
        e.subs
            .iter()
            .map(|s| s.boundary)
            .chain(e.children.iter().map(|&c| self.subtree_min_boundary(c)))
            .min()
            .unwrap_or(0)
    }

    /// Removes a query's subscription (keeping its chain registered) and
    /// collapses any nodes left without subscribers or children.
    fn detach(&mut self, id: QueryId) {
        let Some(idx) = self.subs.remove(&id) else {
            return;
        };
        self.entries[idx]
            .as_mut()
            .expect("live entry")
            .subs
            .retain(|s| s.id != id);
        self.collapse(idx);
        self.refresh_structure();
    }

    /// Drops `idx` and then its ancestors while they have neither own
    /// subscribers nor children — a node outlived by its children keeps
    /// running (it feeds them); a fully unsubscribed subtree unwinds
    /// bottom-up.
    fn collapse(&mut self, idx: usize) {
        let mut cur = Some(idx);
        while let Some(i) = cur {
            {
                let entry = self.entries[i].as_ref().expect("live entry");
                if !entry.subs.is_empty() || !entry.children.is_empty() {
                    break;
                }
            }
            let entry = self.entries[i].take().expect("checked above");
            self.by_sig.remove(&entry.sig);
            for ids in self.by_type.values_mut() {
                ids.retain(|&x| x != i);
            }
            self.by_type.retain(|_, ids| !ids.is_empty());
            self.free.push(i);
            if let Some(p) = entry.parent {
                self.entries[p]
                    .as_mut()
                    .expect("trie parent is live")
                    .children
                    .retain(|&c| c != i);
            }
            cur = entry.parent;
        }
    }

    /// Drops a query's subscription and chain. The last unsubscriber of a
    /// childless node drops it ([`SharedJoinStats::tables`] shrinks), and
    /// the drop cascades up through ancestors left with no subtree.
    /// Returns whether the query had been subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        self.chains.remove(&id);
        let had = self.subs.contains_key(&id);
        self.detach(id);
        had
    }

    /// Advances every node whose prefix contains the edge's type: one
    /// shared search-and-join pass per node per edge, regardless of how
    /// many queries subscribe. This is the per-edge **trie walk**: dispatch
    /// lists are sorted shallow-first and a child's edge types are a
    /// superset of its parent's, so whenever a child is dispatched its
    /// parent has already advanced for this edge and the child consumes the
    /// parent's fresh emissions instead of re-running the parent's ranks.
    pub fn advance_edge(&mut self, graph: &DynamicGraph, edge: &EdgeData) {
        let Some(ids) = self.by_type.get(&edge.edge_type) else {
            return;
        };
        for &idx in ids {
            // Detach the parent's pending buffer for the duration of the
            // advance (a second live borrow into `entries` otherwise); the
            // swap is allocation-free and the buffer goes straight back.
            let parent = self.entries[idx]
                .as_ref()
                .expect("dispatched entry is live")
                .parent;
            let parent_pending = parent.and_then(|p| {
                let pe = self.entries[p].as_mut().expect("trie parent is live");
                (pe.advanced_for == Some(edge.id) && !pe.pending.is_empty())
                    .then(|| std::mem::take(&mut pe.pending))
            });
            let feed: &[SubgraphMatch] = parent_pending.as_deref().unwrap_or(&[]);
            let (searches, inserts, saved, pending) = {
                let entry = self.entries[idx]
                    .as_mut()
                    .expect("dispatched entry is live");
                let (searches, inserts) =
                    entry.advance(graph, edge, feed, &mut self.scratch, &mut self.found);
                (
                    searches,
                    inserts,
                    entry.subtree_subs.saturating_sub(1) as u64,
                    entry.pending.len() as u64,
                )
            };
            self.searches_run += searches;
            self.inserts_run += inserts;
            self.searches_saved += searches * saved;
            self.inserts_saved += inserts * saved;
            self.emissions += pending;
            self.parent_feeds += feed.len() as u64;
            if let (Some(p), Some(buf)) = (parent, parent_pending) {
                self.entries[p]
                    .as_mut()
                    .expect("trie parent is live")
                    .pending = buf;
            }
        }
    }

    /// Builds the per-subscriber feed for one engine on the current edge:
    /// the table's pending emissions filtered by the subscriber's window
    /// and boundary and rebased onto its numbering. Returns `None` for
    /// unsubscribed queries (the caller falls back to the leaf-stage or
    /// private path). Subscribed queries always get a feed — possibly with
    /// no matches — because their engines must skip the prefix leaves
    /// either way.
    pub fn feed_for(&mut self, id: QueryId, edge: &EdgeData) -> Option<PrefixFeed> {
        let &idx = self.subs.get(&id)?;
        let entry = self.entries[idx]
            .as_ref()
            .expect("subscribed entry is live");
        let sub = entry
            .subs
            .iter()
            .find(|s| s.id == id)
            .expect("subscription is listed on its entry");
        let mut matches = self.feed_pool.pop().unwrap_or_default();
        debug_assert!(matches.is_empty());
        if entry.advanced_for == Some(edge.id) {
            for m in &entry.pending {
                if let Some(tw) = sub.window {
                    if !m.within_window(tw) {
                        continue;
                    }
                }
                if sub.boundary > 0 && entry.dep_of(m) < sub.boundary {
                    continue;
                }
                matches.push(m.remapped(&sub.vmap, &sub.emap));
            }
        }
        self.deliveries += matches.len() as u64;
        Some(PrefixFeed {
            depth: entry.depth(),
            matches,
            shared: entry.subtree_subs > 1,
        })
    }

    /// Hands a drained feed's emission buffer back to the pool, so the next
    /// [`SharedJoinIndex::feed_for`] reuses its capacity instead of
    /// allocating. The registry calls this right after the subscriber's
    /// engine consumed the feed.
    pub fn recycle_feed(&mut self, feed: PrefixFeed) {
        let mut buf = feed.matches;
        buf.clear();
        self.feed_pool.push(buf);
    }

    /// Purges every table against the current graph (dead edges and the
    /// table-level window). Returns the number of partial matches removed.
    pub fn purge(&mut self, graph: &DynamicGraph) -> usize {
        let latest = graph.latest_timestamp();
        self.entries
            .iter_mut()
            .flatten()
            .map(|e| e.store.purge(graph, latest, e.window))
            .sum()
    }

    /// Clears all runtime state — table contents, pending emissions,
    /// boundaries and cumulative counters — while keeping the tables and
    /// subscriptions themselves, so the same registry can replay another
    /// stream from scratch (every subscriber behaves as registered at
    /// stream start). Mirrors `ContinuousQueryEngine::reset`.
    pub fn reset(&mut self) {
        for entry in self.entries.iter_mut().flatten() {
            entry.store.clear();
            entry.pending.clear();
            entry.advanced_for = None;
            entry.populated_since = 0;
            for sub in &mut entry.subs {
                sub.boundary = 0;
            }
        }
        self.searches_run = 0;
        self.inserts_run = 0;
        self.searches_saved = 0;
        self.inserts_saved = 0;
        self.emissions = 0;
        self.deliveries = 0;
        self.replays = 0;
        self.parent_feeds = 0;
    }

    fn create_entry(&mut self, sig: PrefixSignature, now: u64) -> usize {
        let mut entry = PrefixEntry::new(sig.clone(), None, now);
        // Fresh tables adopt the index-wide representation (the store is
        // still empty, so this is a constant-time rewrap).
        entry.store.set_interning(&entry.tree, self.interning);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        for &t in &self.entries[idx].as_ref().expect("just created").edge_types {
            self.by_type.entry(t).or_default().push(idx);
        }
        self.by_sig.insert(sig, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sp_graph::Schema;
    use sp_selectivity::SelectivityEstimator;

    fn chain_engine(types: &[u32], window: Option<u64>) -> ContinuousQueryEngine {
        let mut q = QueryGraph::new("q");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, EdgeType(t));
            prev = next;
        }
        ContinuousQueryEngine::new(q, Strategy::Single, &SelectivityEstimator::new(), window)
            .unwrap()
    }

    fn graph() -> DynamicGraph {
        DynamicGraph::new(Schema::new())
    }

    #[test]
    fn first_query_stays_private_until_a_partner_arrives() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        assert_eq!(
            index.subscribe(QueryId(0), &a, 0, 0, &g),
            JoinSubscription::Private
        );
        assert_eq!(index.stats().tables, 0);
        // The partner arrives: a table is created and the private query is
        // reported for migration.
        let b = chain_engine(&[1, 2], Some(100));
        match index.subscribe(QueryId(1), &b, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 2);
                assert_eq!(migrations, vec![QueryId(0)]);
            }
            other => panic!("expected Shared, got {other:?}"),
        }
        assert_eq!(index.attach_partner(QueryId(0), &a, 0, &g), Some(2));
        let stats = index.stats();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.subscriptions, 2);
        assert!(index.is_subscribed(QueryId(0)) && index.is_subscribed(QueryId(1)));
        assert_eq!(index.subscription_depth(QueryId(0)), Some(2));
    }

    #[test]
    fn later_queries_attach_to_the_deepest_existing_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        // A 3-leaf query whose chain starts with the existing [1, 2] prefix
        // attaches at depth 2 — no new table.
        let c = chain_engine(&[1, 2, 3], None);
        assert_eq!(
            index.subscribe(QueryId(2), &c, 0, 0, &g),
            JoinSubscription::Shared {
                depth: 2,
                migrations: vec![]
            }
        );
        assert_eq!(index.stats().tables, 1);
        assert_eq!(index.subscription_depth(QueryId(2)), Some(2));
    }

    #[test]
    fn deeper_private_partner_beats_shallower_existing_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        // Table at [1, 2] held by queries 0 and 1.
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        // Query 2 arrives with chain [1, 2, 3] — attaches at the [1, 2]
        // table (no private partner shares more).
        let c = chain_engine(&[1, 2, 3], None);
        index.subscribe(QueryId(2), &c, 0, 0, &g);
        assert_eq!(index.subscription_depth(QueryId(2)), Some(2));
        // Hmm — to exercise the deeper-partner rule we need a private
        // chain. Deregister query 2, re-add it as private by registering a
        // non-overlapping query first... simpler: a fresh index.
        let mut index = SharedJoinIndex::new();
        let c1 = chain_engine(&[1, 2, 3], None);
        let c2 = chain_engine(&[9, 8], None);
        let c3 = chain_engine(&[9, 8], None);
        index.subscribe(QueryId(0), &c1, 0, 0, &g); // private [1,2,3]
        index.subscribe(QueryId(1), &c2, 0, 0, &g); // private [9,8]
        index.subscribe(QueryId(2), &c3, 0, 0, &g); // creates [9,8] table
        index.attach_partner(QueryId(1), &c2, 0, &g);
        // Query 3's chain [1,2,3] shares depth 3 with private query 0 and
        // nothing with the [9,8] table: a new depth-3 table wins.
        let c4 = chain_engine(&[1, 2, 3], None);
        match index.subscribe(QueryId(3), &c4, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 3);
                assert_eq!(migrations, vec![QueryId(0)]);
            }
            other => panic!("expected a deep table, got {other:?}"),
        }
        assert_eq!(index.stats().tables, 2);
    }

    #[test]
    fn last_unsubscriber_drops_the_table() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        assert_eq!(index.stats().tables, 1);
        assert!(index.unsubscribe(QueryId(0)));
        assert_eq!(index.stats().tables, 1, "query 1 still holds the table");
        assert!(index.unsubscribe(QueryId(1)));
        let stats = index.stats();
        assert_eq!(stats.tables, 0);
        assert_eq!(stats.subscriptions, 0);
        assert!(!index.unsubscribe(QueryId(1)), "double unsubscribe");
    }

    #[test]
    fn single_leaf_and_vf2_queries_are_not_join_capable() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let one = chain_engine(&[4], None);
        assert_eq!(
            index.subscribe(QueryId(0), &one, 0, 0, &g),
            JoinSubscription::Private
        );
        assert!(index.chain_of(QueryId(0)).is_none());
        let mut q = QueryGraph::new("vf2");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        q.add_edge(b, c, EdgeType(1));
        let vf2 = ContinuousQueryEngine::new(
            q,
            Strategy::Vf2Baseline,
            &SelectivityEstimator::new(),
            None,
        )
        .unwrap();
        assert_eq!(
            index.subscribe(QueryId(1), &vf2, 0, 0, &g),
            JoinSubscription::Private
        );
    }

    #[test]
    fn nested_chain_forms_a_trie_child() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        assert!(index.trie_enabled());
        let a = chain_engine(&[1, 2], None);
        let b = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        // The first [1,2,3] query attaches at the existing [1,2] node...
        let c = chain_engine(&[1, 2, 3], None);
        assert_eq!(
            index.subscribe(QueryId(2), &c, 0, 0, &g),
            JoinSubscription::Shared {
                depth: 2,
                migrations: vec![]
            }
        );
        // ... and its partner materializes the depth-3 node as a trie child
        // of [1,2], re-pointing query 2 from the shallower node.
        let d = chain_engine(&[1, 2, 3], None);
        match index.subscribe(QueryId(3), &d, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 3);
                assert_eq!(migrations, vec![QueryId(2)]);
            }
            other => panic!("expected a deep node, got {other:?}"),
        }
        assert_eq!(index.attach_partner(QueryId(2), &c, 0, &g), Some(3));
        let nodes = index.trie_nodes();
        assert_eq!(nodes.len(), 2);
        let (shallow, deep) = (&nodes[0], &nodes[1]);
        assert_eq!(
            (
                shallow.depth,
                shallow.parent_depth,
                shallow.children,
                shallow.subscribers
            ),
            (2, None, 1, 2)
        );
        assert_eq!(
            (
                deep.depth,
                deep.parent_depth,
                deep.children,
                deep.subscribers
            ),
            (3, Some(2), 0, 2)
        );
        assert_eq!(index.stats().max_depth, 3);
        // Dropping the deep pair collapses only the child; the parent node
        // keeps serving its own subscribers.
        index.unsubscribe(QueryId(2));
        index.unsubscribe(QueryId(3));
        let nodes = index.trie_nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!((nodes[0].depth, nodes[0].children), (2, 0));
    }

    #[test]
    fn later_shallow_pair_splits_the_trie_edge() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        // The deep pair arrives first: a parentless depth-3 node.
        let a = chain_engine(&[1, 2, 3], None);
        let b = chain_engine(&[1, 2, 3], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        let nodes = index.trie_nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].parent_depth, None);
        // A [1,2] pair arrives later: the depth-2 node materializes and the
        // existing depth-3 node is spliced in underneath it.
        let c = chain_engine(&[1, 2], None);
        let d = chain_engine(&[1, 2], None);
        assert_eq!(
            index.subscribe(QueryId(2), &c, 0, 0, &g),
            JoinSubscription::Private,
            "a lone depth-2 chain cannot use the deeper node"
        );
        match index.subscribe(QueryId(3), &d, 0, 0, &g) {
            JoinSubscription::Shared { depth, migrations } => {
                assert_eq!(depth, 2);
                assert_eq!(migrations, vec![QueryId(2)]);
            }
            other => panic!("expected the split node, got {other:?}"),
        }
        assert_eq!(index.attach_partner(QueryId(2), &c, 0, &g), Some(2));
        let nodes = index.trie_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(
            (
                nodes[0].depth,
                nodes[0].parent_depth,
                nodes[0].children,
                nodes[0].subscribers
            ),
            (2, None, 1, 2)
        );
        assert_eq!(
            (nodes[1].depth, nodes[1].parent_depth, nodes[1].subscribers),
            (3, Some(2), 2)
        );
        // The deep subscribers leaving unwinds the child but not the new
        // parent; the shallow pair leaving empties the trie.
        index.unsubscribe(QueryId(0));
        index.unsubscribe(QueryId(1));
        assert_eq!(index.trie_nodes().len(), 1);
        index.unsubscribe(QueryId(2));
        index.unsubscribe(QueryId(3));
        assert_eq!(index.stats().tables, 0);
    }

    #[test]
    fn flat_mode_keeps_nested_tables_independent() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        index.set_trie(false);
        assert!(!index.trie_enabled());
        let a = chain_engine(&[1, 2, 3], None);
        let b = chain_engine(&[1, 2, 3], None);
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        let c = chain_engine(&[1, 2], None);
        let d = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(2), &c, 0, 0, &g);
        index.subscribe(QueryId(3), &d, 0, 0, &g);
        index.attach_partner(QueryId(2), &c, 0, &g);
        // Two tables whose signatures nest, yet no trie links: each runs
        // (and stores) its prefix independently under the PR 5 policy.
        let nodes = index.trie_nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes
            .iter()
            .all(|n| n.parent_depth.is_none() && n.children == 0));
        assert_eq!(index.stats().parent_feeds, 0);
    }

    #[test]
    fn table_window_is_the_loosest_subscriber_window() {
        let g = graph();
        let mut index = SharedJoinIndex::new();
        let a = chain_engine(&[1, 2], Some(100));
        let b = chain_engine(&[1, 2], Some(500));
        index.subscribe(QueryId(0), &a, 0, 0, &g);
        index.subscribe(QueryId(1), &b, 0, 0, &g);
        index.attach_partner(QueryId(0), &a, 0, &g);
        let idx = *index.subs.get(&QueryId(0)).unwrap();
        assert_eq!(index.entries[idx].as_ref().unwrap().window, Some(500));
        // An unwindowed subscriber makes the table unbounded.
        let c = chain_engine(&[1, 2], None);
        index.subscribe(QueryId(2), &c, 0, 0, &g);
        assert_eq!(index.entries[idx].as_ref().unwrap().window, None);
        // ... and its departure tightens the window again.
        index.unsubscribe(QueryId(2));
        assert_eq!(index.entries[idx].as_ref().unwrap().window, Some(500));
    }
}
