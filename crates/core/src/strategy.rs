//! Query-execution strategies and the automatic strategy selector.
//!
//! The evaluation (Section 6.4) compares four SJ-Tree strategies — the cross
//! product of {1-edge, 2-edge path} decomposition and {track-everything,
//! lazy} search — against a non-incremental VF2 baseline. Section 6.5 then
//! derives a selection heuristic from the Relative Selectivity distribution:
//! "PathLazy strategy could be employed for queries with relative selectivity
//! below 0.001, and SingleLazy be employed for queries above 0.001".

use serde::{Deserialize, Serialize};
use sp_query::{canonicalize_subgraph, LeafSignature, QueryGraph};
use sp_selectivity::SelectivityEstimator;
use sp_sjtree::{decompose, expected_selectivity, DecompositionError, PrimitivePolicy};
use std::fmt;

/// The Relative Selectivity threshold below which the 2-edge ("PathLazy")
/// strategy is preferred (Section 6.5).
pub const RELATIVE_SELECTIVITY_THRESHOLD: f64 = 1e-3;

/// A query-execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// 1-edge decomposition, track every matching subgraph.
    Single,
    /// 1-edge decomposition with Lazy Search.
    SingleLazy,
    /// 2-edge path decomposition, track every matching subgraph.
    Path,
    /// 2-edge path decomposition with Lazy Search.
    PathLazy,
    /// Non-incremental baseline: full VF2 subgraph isomorphism over the
    /// current graph on every new edge.
    Vf2Baseline,
}

impl Strategy {
    /// All strategies, in the order the paper's plots list them.
    pub const ALL: [Strategy; 5] = [
        Strategy::Path,
        Strategy::Single,
        Strategy::PathLazy,
        Strategy::SingleLazy,
        Strategy::Vf2Baseline,
    ];

    /// The SJ-Tree strategies (everything except the VF2 baseline).
    pub const SJ_TREE: [Strategy; 4] = [
        Strategy::Path,
        Strategy::Single,
        Strategy::PathLazy,
        Strategy::SingleLazy,
    ];

    /// The decomposition policy behind the strategy, `None` for the VF2
    /// baseline.
    pub fn policy(self) -> Option<PrimitivePolicy> {
        match self {
            Strategy::Single | Strategy::SingleLazy => Some(PrimitivePolicy::SingleEdge),
            Strategy::Path | Strategy::PathLazy => Some(PrimitivePolicy::TwoEdgePath),
            Strategy::Vf2Baseline => None,
        }
    }

    /// Whether the strategy uses the Lazy Search bitmap.
    pub fn is_lazy(self) -> bool {
        matches!(self, Strategy::SingleLazy | Strategy::PathLazy)
    }

    /// The tag used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Single => "Single",
            Strategy::SingleLazy => "SingleLazy",
            Strategy::Path => "Path",
            Strategy::PathLazy => "PathLazy",
            Strategy::Vf2Baseline => "VF2",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of the automatic strategy selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyChoice {
    /// The selected strategy.
    pub strategy: Strategy,
    /// Relative Selectivity ξ(T_path, T_single) of the query under the given
    /// statistics.
    pub relative_selectivity: f64,
    /// Expected Selectivity of the 2-edge decomposition.
    pub expected_path: f64,
    /// Expected Selectivity of the 1-edge decomposition.
    pub expected_single: f64,
    /// Expected fraction of the chosen decomposition's leaf searches that
    /// shared-leaf evaluation will eliminate, given the registry state the
    /// caller described (see
    /// [`SelectivityEstimator::estimate_sharing_benefit`]). 0 when chosen
    /// without registry context ([`choose_strategy`]).
    pub sharing_benefit: f64,
}

/// Chooses between `SingleLazy` and `PathLazy` for a query using the
/// Relative Selectivity rule of Section 6.5: build both decompositions,
/// compute ξ = Ŝ(T_path)/Ŝ(T_single), and pick `PathLazy` when
/// ξ < [`RELATIVE_SELECTIVITY_THRESHOLD`].
pub fn choose_strategy(
    query: &QueryGraph,
    estimator: &SelectivityEstimator,
    threshold: f64,
) -> Result<StrategyChoice, DecompositionError> {
    choose_strategy_with_sharing(query, estimator, threshold, |_| false)
}

/// Like [`choose_strategy`], additionally reporting the expected leaf-search
/// savings of shared-leaf evaluation: `is_resident(sig)` tells the selector
/// which canonical leaf shapes some registered query already subscribes to
/// (e.g. [`SharedLeafIndex::contains`](crate::SharedLeafIndex::contains)).
/// `Auto` registration on [`StreamProcessor`](crate::StreamProcessor) uses
/// this to report how much of the new query's work the registry already
/// pays for.
pub fn choose_strategy_with_sharing<F>(
    query: &QueryGraph,
    estimator: &SelectivityEstimator,
    threshold: f64,
    is_resident: F,
) -> Result<StrategyChoice, DecompositionError>
where
    F: Fn(&LeafSignature) -> bool,
{
    let single = decompose(query, PrimitivePolicy::SingleEdge, estimator)?;
    let path = decompose(query, PrimitivePolicy::TwoEdgePath, estimator)?;
    let s_single = expected_selectivity(&single, estimator);
    let s_path = expected_selectivity(&path, estimator);
    let xi = s_path.relative_to(&s_single);
    let strategy = if xi < threshold {
        Strategy::PathLazy
    } else {
        Strategy::SingleLazy
    };
    let chosen_tree = if strategy == Strategy::PathLazy {
        &path
    } else {
        &single
    };
    let leaves: Vec<LeafSignature> = chosen_tree
        .leaf_subgraphs()
        .filter_map(|sg| canonicalize_subgraph(query, sg).map(|(sig, _)| sig))
        .collect();
    let sharing_benefit = estimator.estimate_sharing_benefit(leaves.iter(), is_resident);
    Ok(StrategyChoice {
        strategy,
        relative_selectivity: xi,
        expected_path: s_path.expected,
        expected_single: s_single.expected,
        sharing_benefit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{DynamicGraph, Schema, Timestamp};

    #[test]
    fn policy_and_laziness_mapping() {
        assert_eq!(Strategy::Single.policy(), Some(PrimitivePolicy::SingleEdge));
        assert_eq!(
            Strategy::PathLazy.policy(),
            Some(PrimitivePolicy::TwoEdgePath)
        );
        assert_eq!(Strategy::Vf2Baseline.policy(), None);
        assert!(Strategy::SingleLazy.is_lazy());
        assert!(Strategy::PathLazy.is_lazy());
        assert!(!Strategy::Single.is_lazy());
        assert!(!Strategy::Vf2Baseline.is_lazy());
    }

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Path", "Single", "PathLazy", "SingleLazy", "VF2"]
        );
        assert_eq!(Strategy::PathLazy.to_string(), "PathLazy");
    }

    /// A stream where both query edge types are common but the specific
    /// 2-edge combination the query needs is vanishingly rare: the Relative
    /// Selectivity is tiny and the selector must pick PathLazy. This is the
    /// netflow-shaped case of Figure 10.
    #[test]
    fn selector_picks_path_lazy_for_rare_wedges() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut g = DynamicGraph::new(schema);
        // Two disjoint hubs: one fans out esp edges, one fans out tcp edges,
        // so esp-in/tcp-out wedges are almost nonexistent even though both
        // types are plentiful.
        let hub_esp = g.add_vertex(vt);
        let hub_tcp = g.add_vertex(vt);
        for i in 0..300u64 {
            let a = g.add_vertex(vt);
            g.add_edge(hub_esp, a, esp, Timestamp(i));
            let b = g.add_vertex(vt);
            g.add_edge(hub_tcp, b, tcp, Timestamp(1000 + i));
        }
        // Exactly one esp -> tcp chain.
        let x = g.add_vertex(vt);
        let y = g.add_vertex(vt);
        let z = g.add_vertex(vt);
        g.add_edge(x, y, esp, Timestamp(5000));
        g.add_edge(y, z, tcp, Timestamp(5001));
        let est = SelectivityEstimator::from_graph(&g);

        // Query: v0 -esp-> v1 -tcp-> v2.
        let mut q = QueryGraph::new("esp-tcp");
        let v: Vec<_> = (0..3).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], esp);
        q.add_edge(v[1], v[2], tcp);
        let choice = choose_strategy(&q, &est, RELATIVE_SELECTIVITY_THRESHOLD).unwrap();
        assert!(
            choice.relative_selectivity < RELATIVE_SELECTIVITY_THRESHOLD,
            "xi = {}",
            choice.relative_selectivity
        );
        assert_eq!(choice.strategy, Strategy::PathLazy);
        assert!(choice.expected_path <= choice.expected_single);
    }

    /// A uniform stream where wedges are as common as edges: SingleLazy wins.
    #[test]
    fn selector_picks_single_lazy_for_uniform_streams() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t = schema.intern_edge_type("t");
        let mut g = DynamicGraph::new(schema);
        // A short chain: only one edge type, wedges plentiful relative to the
        // tiny edge count.
        let vs: Vec<_> = (0..6).map(|_| g.add_vertex(vt)).collect();
        for i in 0..5 {
            g.add_edge(vs[i], vs[i + 1], t, Timestamp(i as u64));
        }
        let est = SelectivityEstimator::from_graph(&g);
        let mut q = QueryGraph::new("t-t");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, t);
        q.add_edge(b, c, t);
        let choice = choose_strategy(&q, &est, RELATIVE_SELECTIVITY_THRESHOLD).unwrap();
        assert_eq!(choice.strategy, Strategy::SingleLazy);
        assert!(choice.relative_selectivity >= RELATIVE_SELECTIVITY_THRESHOLD);
    }

    #[test]
    fn selector_rejects_empty_queries() {
        let est = SelectivityEstimator::new();
        let q = QueryGraph::new("empty");
        assert!(choose_strategy(&q, &est, 1e-3).is_err());
    }
}
