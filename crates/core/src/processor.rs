//! The stream processor: one shared data graph, many continuous queries.
//!
//! [`StreamProcessor`] is the "query processing" half of the paper's
//! experimental setup (Section 6.1), generalized to the multi-query
//! deployment the system paper (StreamWorks) describes: it owns **one**
//! [`DynamicGraph`] shared by every registered query, streams
//! [`EdgeEvent`]s into it exactly once, and dispatches each new edge through
//! the [`QueryRegistry`]'s edge-type index so that only the engines whose
//! pattern can use the edge are invoked. Windowing is per query: the graph
//! retains edges for the *largest* registered window while each engine
//! filters and purges with its own `tW`.
//!
//! Matches are pushed into a [`MatchSink`]; [`StreamProcessor::process`] is
//! the convenience wrapper that collects them into a vector.

use crate::adaptive::{leaf_structure, AdaptiveStats, QueryDriftState};
use crate::engine::ContinuousQueryEngine;
use crate::error::EngineError;
use crate::metrics::PipelineMetrics;
use crate::profile::ProfileCounters;
use crate::registry::{QueryId, QueryRegistry, StrategySpec};
use crate::sink::{CollectSink, CountSink, MatchSink};
use crate::strategy::{choose_strategy_with_sharing, Strategy, RELATIVE_SELECTIVITY_THRESHOLD};
use sp_graph::{monotonic_nanos, DynamicGraph, EdgeEvent, Schema, VertexId};
use sp_iso::SubgraphMatch;
use sp_query::QueryGraph;
use sp_selectivity::{DriftConfig, SelectivityEstimator};
use sp_sjtree::SjTree;
use std::collections::HashMap;
use std::time::Instant;

/// Default number of edges between partial-match purges.
const DEFAULT_PURGE_INTERVAL: u64 = 4096;

/// The processor's drift-adaptivity state: per-query detectors plus the
/// shared check cadence.
#[derive(Debug, Clone)]
struct AdaptiveRuntime {
    config: DriftConfig,
    since_check: u64,
    per_query: HashMap<QueryId, QueryDriftState>,
    stats: AdaptiveStats,
}

impl AdaptiveRuntime {
    fn new(config: DriftConfig) -> Self {
        Self {
            config,
            since_check: 0,
            per_query: HashMap::new(),
            stats: AdaptiveStats::default(),
        }
    }
}

/// Owns the shared [`DynamicGraph`] and the [`QueryRegistry`] and feeds the
/// stream through both.
#[derive(Debug, Clone)]
pub struct StreamProcessor {
    graph: DynamicGraph,
    registry: QueryRegistry,
    estimator: SelectivityEstimator,
    collect_statistics: bool,
    purge_interval: u64,
    since_purge: u64,
    total_matches: u64,
    adaptive: Option<AdaptiveRuntime>,
    /// The strategy spec each live query was registered with, kept so that
    /// adaptivity enabled *after* registration still re-runs the strategy
    /// selection for `Auto` queries (the registry only stores the resolved
    /// engine).
    specs: HashMap<QueryId, StrategySpec>,
    /// Processor-level counters: events ingested and vertex-type conflicts.
    stream: ProfileCounters,
    /// Telemetry handles; `None` (the default) keeps the hot path at a
    /// single branch with no clock reads.
    metrics: Option<PipelineMetrics>,
}

impl StreamProcessor {
    /// Creates a processor with an empty data graph and no registered
    /// queries. Register queries with [`StreamProcessor::register`] (or
    /// [`StreamProcessor::register_engine`]); until a query is registered,
    /// processed edges only grow the graph.
    pub fn new(schema: Schema) -> Self {
        Self {
            graph: DynamicGraph::new(schema),
            registry: QueryRegistry::new(),
            estimator: SelectivityEstimator::new(),
            collect_statistics: true,
            purge_interval: DEFAULT_PURGE_INTERVAL,
            since_purge: 0,
            total_matches: 0,
            adaptive: None,
            specs: HashMap::new(),
            stream: ProfileCounters::new(),
            metrics: None,
        }
    }

    /// Convenience constructor for the single-query setup of the paper's
    /// experiments: a processor with exactly one registered engine. The
    /// engine's id is the first element of [`StreamProcessor::query_ids`].
    pub fn with_engine(schema: Schema, engine: ContinuousQueryEngine) -> Self {
        let mut p = Self::new(schema);
        p.register_engine(engine);
        p
    }

    /// Overrides how many edges are processed between partial-match purges
    /// (the purge is an amortized maintenance pass; correctness of reported
    /// matches does not depend on it).
    pub fn with_purge_interval(mut self, interval: u64) -> Self {
        self.purge_interval = interval.max(1);
        self
    }

    /// Enables or disables continuous stream-statistics collection (on by
    /// default). The statistics feed [`StrategySpec::Auto`] registration;
    /// disable them to reproduce the paper's measurement methodology, where
    /// statistics come from a stream prefix only.
    pub fn with_statistics(mut self, enabled: bool) -> Self {
        self.collect_statistics = enabled;
        self
    }

    /// Seeds the processor's stream statistics, e.g. from
    /// `Dataset::estimator_from_prefix`. Subsequent edges keep updating the
    /// estimator unless statistics collection is disabled.
    pub fn with_estimator(mut self, estimator: SelectivityEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Attaches telemetry (off by default): every processed edge records
    /// per-stage timing spans and every reported match records its
    /// detection latency into the bundle's histograms — see
    /// [`PipelineMetrics`] for the metric catalogue. With metrics off the
    /// hot path pays one branch and reads no clock.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches or detaches telemetry on a live processor (the runtime
    /// workers receive their handles over a control message after spawn).
    pub fn set_metrics(&mut self, metrics: Option<PipelineMetrics>) {
        self.metrics = metrics;
    }

    /// The attached telemetry bundle, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// Enables or disables shared-leaf evaluation (on by default): with
    /// sharing on, structurally identical SJ-Tree leaves from different
    /// registered queries are searched **once** per edge and the results
    /// fanned out; with sharing off every engine re-runs its own anchored
    /// searches. The reported match multiset is identical either way — the
    /// toggle exists for measurement (the `sharing` benchmark) and
    /// equivalence testing.
    pub fn with_sharing(mut self, enabled: bool) -> Self {
        self.registry.set_sharing(enabled);
        self
    }

    /// Snapshot of the shared-leaf index: distinct leaf shapes, current
    /// subscriptions, and how many anchored searches sharing eliminated.
    pub fn shared_leaf_stats(&self) -> crate::SharedLeafStats {
        self.registry.shared_leaf_stats()
    }

    /// Enables or disables scratch reuse on the per-edge hot path (on by
    /// default): with reuse on, the anchored-search buffers, join worklists
    /// and the shared-stage edge cache keep their warmed-up capacity across
    /// edges; with it off every buffer is released after each edge. The
    /// reported match multiset is identical either way — the toggle exists
    /// for allocation accounting and equivalence testing.
    pub fn with_scratch_reuse(mut self, enabled: bool) -> Self {
        self.registry.set_scratch_reuse(enabled);
        self
    }

    /// Enables or disables shared-**join** evaluation for queries
    /// registered afterwards (on by default): with it on, queries whose
    /// decompositions begin with the same canonical leaf sequence share one
    /// refcounted partial-match table for that prefix — leaf searches,
    /// inserts and hash joins for the prefix run once registry-wide, and
    /// the prefix-root matches are fanned out (window- and
    /// boundary-filtered per subscriber). The reported match multiset is
    /// identical either way; the toggle exists for measurement (the
    /// `sharedjoin` benchmark compares leaf-only sharing against
    /// leaf+join sharing) and equivalence testing. Unlike the leaf stage,
    /// subscriptions are decided at registration time — flip the toggle
    /// before registering.
    pub fn with_join_sharing(mut self, enabled: bool) -> Self {
        self.registry.set_join_sharing(enabled);
        self
    }

    /// Switches the shared join stage between the **trie** policy (on by
    /// default: nesting prefixes link parent→child, a child consumes its
    /// parent's emissions instead of re-running the parent's leaf searches,
    /// and the shared partials are stored exactly once) and the flat PR 5
    /// policy of independent per-prefix tables. The reported match multiset
    /// is identical either way; the toggle exists for the `sharedjoin`
    /// benchmark's trie-vs-flat comparison and the equivalence tests. Like
    /// [`StreamProcessor::with_join_sharing`], a registration-time
    /// property — flip it before registering.
    pub fn with_join_trie(mut self, enabled: bool) -> Self {
        self.registry.set_join_trie(enabled);
        self
    }

    /// Snapshot of the shared join stage: live prefix tables, current
    /// subscriptions, and how much join-stage work sharing eliminated.
    pub fn shared_join_stats(&self) -> crate::SharedJoinStats {
        self.registry.shared_join_stats()
    }

    /// Switches every partial-match store — each engine's and each shared
    /// prefix table's — between the **interned** representation (on by
    /// default: a stored match is a fixed-width arena row addressed by a
    /// copyable id, so storing/joining spilled-width matches is
    /// allocation-free) and the materialized representation (buckets hold
    /// `SubgraphMatch` values). Live state converts in place, so the toggle
    /// is safe at any point in the stream. The reported match multiset is
    /// identical either way — the toggle exists for allocation accounting
    /// and equivalence testing.
    pub fn with_match_interning(mut self, enabled: bool) -> Self {
        self.registry.set_match_interning(enabled);
        self
    }

    /// Total partial matches ever stored across every engine and shared
    /// prefix table — the denominator of the soak's
    /// `alloc.allocs_per_match`.
    pub fn stored_matches(&self) -> u64 {
        self.registry.stored_matches()
    }

    /// Enables drift-adaptive re-decomposition (off by default): every
    /// [`DriftConfig::check_interval`] processed edges, each registered
    /// query's [`DriftDetector`](sp_selectivity::DriftDetector) compares the
    /// live statistics against the ranking its plan was built on; when the
    /// detector fires and the authoritative re-plan differs, the engine is
    /// swapped via [`ContinuousQueryEngine::rebuild`] (replaying the
    /// retained graph, so no partial state is lost) and its leaf shapes are
    /// re-subscribed in the shared-leaf index. `Auto`-registered queries
    /// re-run the strategy selection; `Fixed` queries keep their strategy
    /// but may re-order leaves.
    ///
    /// Adaptivity is semantics-preserving: the reported match multiset is
    /// identical with it on or off. It only pays off when the statistics
    /// actually move — pair it with a decayed estimator
    /// ([`sp_selectivity::StatsMode::Decayed`] via
    /// [`StreamProcessor::with_estimator`]) and leave statistics collection
    /// enabled.
    pub fn with_adaptive(mut self, config: DriftConfig) -> Self {
        let mut adaptive = AdaptiveRuntime::new(config);
        // Backfill detectors for queries registered before the call, with
        // their original specs: a query registered `Auto` stays auto no
        // matter which order registration and `with_adaptive` happened in.
        for (id, engine) in self.registry.iter() {
            if engine.tree().is_some() {
                let spec = self
                    .specs
                    .get(&id)
                    .copied()
                    .unwrap_or(StrategySpec::Fixed(engine.strategy()));
                adaptive.per_query.insert(
                    id,
                    QueryDriftState::new(config, engine.query(), spec, &self.estimator),
                );
            }
        }
        self.adaptive = Some(adaptive);
        self
    }

    /// Whether drift-adaptive re-decomposition is enabled.
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Cumulative adaptivity counters (zeroes when adaptivity is off).
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        self.adaptive.as_ref().map(|a| a.stats).unwrap_or_default()
    }

    /// Registers a continuous query: decomposes it under the given strategy
    /// (or picks one via the Relative Selectivity rule for
    /// [`StrategySpec::Auto`]) against the processor's current stream
    /// statistics, and indexes it for dispatch. `window` is the query's own
    /// `tW`; the shared graph retains edges for the largest window across
    /// all registered queries.
    pub fn register(
        &mut self,
        query: QueryGraph,
        spec: impl Into<StrategySpec>,
        window: Option<u64>,
    ) -> Result<QueryId, EngineError> {
        let spec = spec.into();
        let strategy = match spec {
            StrategySpec::Fixed(s) => s,
            StrategySpec::Auto => {
                // Sharing-aware selection: the choice also reports how much
                // of the new query's leaf work the registry already pays for
                // (the rule itself is unchanged — equivalence with the
                // runtime facade's Auto path depends on that).
                let shared = self.registry.shared_leaves();
                choose_strategy_with_sharing(
                    &query,
                    &self.estimator,
                    RELATIVE_SELECTIVITY_THRESHOLD,
                    |sig| shared.contains(sig),
                )?
                .strategy
            }
        };
        let engine = ContinuousQueryEngine::new(query, strategy, &self.estimator, window)?;
        let id = self.register_engine(engine);
        // `register_engine` records a `Fixed` spec; keep `Auto` queries auto
        // so drift checks re-run the strategy selection for them.
        if spec == StrategySpec::Auto {
            self.record_registration(id, StrategySpec::Auto);
        }
        Ok(id)
    }

    /// Registers a pre-built engine (custom decompositions, replayed trees).
    /// Under adaptivity the engine's current strategy is treated as a
    /// `Fixed` registration: drift may re-order its leaves but never change
    /// the strategy.
    pub fn register_engine(&mut self, engine: ContinuousQueryEngine) -> QueryId {
        let strategy = engine.strategy();
        let id = self.registry.register_shared(engine, &self.graph);
        self.graph.set_window(self.registry.graph_retention());
        self.record_registration(id, StrategySpec::Fixed(strategy));
        id
    }

    /// Records a (re)registration's spec and, when adaptivity is on, seeds
    /// the query's drift detector against the current statistics.
    fn record_registration(&mut self, id: QueryId, spec: StrategySpec) {
        self.specs.insert(id, spec);
        if let Some(adaptive) = self.adaptive.as_mut() {
            if let Some(engine) = self.registry.engine(id) {
                if engine.tree().is_some() {
                    adaptive.per_query.insert(
                        id,
                        QueryDriftState::new(
                            adaptive.config,
                            engine.query(),
                            spec,
                            &self.estimator,
                        ),
                    );
                }
            }
        }
    }

    /// Deregisters a query mid-stream, returning its engine (and runtime
    /// state). The graph's retention window is recomputed immediately from
    /// the remaining queries (it shrinks when the removed query held the
    /// maximum `tW`), and the dispatch index stops routing the query's edge
    /// types. Deregistering the *last* query keeps the current retention
    /// window in place (rather than reverting to unbounded retention), so an
    /// idle processor does not accumulate edges forever; the next
    /// registration recomputes it.
    pub fn deregister(&mut self, id: QueryId) -> Option<ContinuousQueryEngine> {
        let engine = self.registry.deregister(id)?;
        if !self.registry.is_empty() {
            self.graph.set_window(self.registry.graph_retention());
        }
        self.specs.remove(&id);
        if let Some(adaptive) = self.adaptive.as_mut() {
            adaptive.per_query.remove(&id);
        }
        Some(engine)
    }

    /// Overrides the shared graph's retention window, bypassing the
    /// per-registry recomputation that [`StreamProcessor::register`] and
    /// [`StreamProcessor::deregister`] perform.
    ///
    /// This is the hook the parallel runtime (`sp-runtime`) uses to keep
    /// every worker's graph replica retaining edges for the *global* maximum
    /// window across all shards, so that a query registered mid-stream on
    /// any shard still finds the history it is entitled to. Callers that
    /// use the override are responsible for re-applying it after
    /// registering or deregistering queries (both recompute the window from
    /// the local registry).
    pub fn set_graph_retention(&mut self, window: Option<u64>) {
        self.graph.set_window(window);
    }

    /// Ingests one stream event, pushing every complete match it creates
    /// into `sink`. Returns the number of matches reported.
    ///
    /// A vertex-type conflict (the vertex already exists with a different
    /// concrete type) keeps the original type and is recorded in
    /// [`ProfileCounters::vertex_type_conflicts`].
    pub fn process_into<S: MatchSink + ?Sized>(&mut self, event: &EdgeEvent, sink: &mut S) -> u64 {
        self.stream.edges_processed += 1;
        // The single metrics branch of the hot path: with metrics off,
        // `started` stays `None` and no clock is ever read. The arrival
        // instant prefers the stamp the runtime facade put on the event (the
        // moment it left the producer) over "now", so detection latency
        // includes batching and queueing delay.
        let started = self.metrics.as_ref().map(|m| {
            m.edges.inc();
            let arrival = if event.arrival_ns != 0 {
                event.arrival_ns
            } else {
                monotonic_nanos()
            };
            (arrival, Instant::now())
        });
        let src = match self
            .graph
            .ensure_vertex(VertexId(event.src), event.src_type)
        {
            Ok(v) => v,
            Err(_) => {
                self.stream.vertex_type_conflicts += 1;
                VertexId(event.src)
            }
        };
        let dst = match self
            .graph
            .ensure_vertex(VertexId(event.dst), event.dst_type)
        {
            Ok(v) => v,
            Err(_) => {
                self.stream.vertex_type_conflicts += 1;
                VertexId(event.dst)
            }
        };
        let edge_id = self
            .graph
            .add_edge(src, dst, event.edge_type, event.timestamp);
        let edge = *self.graph.edge(edge_id).expect("edge was just inserted");

        if self.collect_statistics {
            self.estimator.observe_edge(&edge);
        }
        if let (Some(m), Some((_, t0))) = (&self.metrics, started) {
            m.ingest_ns.add(t0.elapsed().as_nanos() as u64);
        }

        let found = match (&self.metrics, started) {
            (Some(pm), Some((arrival_ns, _))) => self.registry.process_edge_timed(
                &self.graph,
                &edge,
                |q, m| {
                    pm.matches.inc();
                    pm.match_latency_ns
                        .record(monotonic_nanos().saturating_sub(arrival_ns));
                    sink.on_match(q, m)
                },
                pm,
            ),
            _ => self
                .registry
                .process_edge(&self.graph, &edge, |q, m| sink.on_match(q, m)),
        };
        self.total_matches += found;

        self.since_purge += 1;
        if self.since_purge >= self.purge_interval {
            let span = self.metrics.as_ref().map(|_| Instant::now());
            self.graph.expire();
            self.registry.purge(&self.graph);
            self.since_purge = 0;
            if let (Some(m), Some(t)) = (&self.metrics, span) {
                m.purge_ns.add(t.elapsed().as_nanos() as u64);
            }
        }
        if let (Some(m), Some((_, t0))) = (&self.metrics, started) {
            m.edge_ns.record(t0.elapsed().as_nanos() as u64);
        }

        // Drift cadence: re-decomposition is semantics-preserving, so the
        // check point only affects *when* work is saved, never what matches
        // are reported.
        if let Some(adaptive) = self.adaptive.as_mut() {
            adaptive.since_check += 1;
            if adaptive.since_check >= adaptive.config.check_interval {
                adaptive.since_check = 0;
                self.run_drift_checks();
            }
        }
        found
    }

    /// Runs one drift check over every registered query *now* (bypassing
    /// the [`DriftConfig::check_interval`] cadence): queries whose detector
    /// fires and whose authoritative re-plan differs from the active plan
    /// are rebuilt in place. Returns the number of engines rebuilt. A no-op
    /// when adaptivity is off.
    pub fn run_drift_checks(&mut self) -> usize {
        // Take the adaptive state out so the per-query loop can borrow the
        // registry, graph and estimator freely.
        let Some(mut adaptive) = self.adaptive.take() else {
            return 0;
        };
        let ids: Vec<QueryId> = self.registry.query_ids().collect();
        let mut rebuilt = 0;
        for id in ids {
            let Some(state) = adaptive.per_query.get_mut(&id) else {
                continue;
            };
            let Some(engine) = self.registry.engine(id) else {
                continue;
            };
            let Some(tree) = engine.tree() else {
                continue;
            };
            adaptive.stats.checks += 1;
            let current_strategy = engine.strategy();
            let current_leaves = leaf_structure(tree);
            let query = engine.query().clone();
            let mut drifted = false;
            let plan = state.check_plan(
                &query,
                current_strategy,
                &current_leaves,
                &self.estimator,
                &mut drifted,
            );
            if drifted {
                adaptive.stats.drifts_detected += 1;
            }
            let Some((strategy, tree)) = plan else {
                continue;
            };
            let engine = self.registry.engine_mut(id).expect("engine exists");
            if engine.rebuild(strategy, tree, &self.graph).is_ok() {
                self.registry.resubscribe(id, &self.graph);
                adaptive.stats.redecompositions += 1;
                rebuilt += 1;
            }
        }
        self.adaptive = Some(adaptive);
        rebuilt
    }

    /// Swaps one query's decomposition for an externally supplied plan:
    /// rebuilds the engine via [`ContinuousQueryEngine::rebuild`] (replaying
    /// the retained graph, preserving the reported match multiset) and
    /// re-subscribes its leaf shapes in the shared-leaf index. This is the
    /// entry point the parallel runtime's `Redecompose` control message
    /// lands on, and a deterministic lever for tests and tooling; the
    /// drift-driven path ([`StreamProcessor::run_drift_checks`]) computes
    /// the plan itself.
    pub fn redecompose(
        &mut self,
        id: QueryId,
        strategy: Strategy,
        tree: SjTree,
    ) -> Result<(), EngineError> {
        let engine = self
            .registry
            .engine_mut(id)
            .ok_or(EngineError::UnknownQuery)?;
        engine.rebuild(strategy, tree, &self.graph)?;
        self.registry.resubscribe(id, &self.graph);
        if let Some(adaptive) = self.adaptive.as_mut() {
            if let Some(state) = adaptive.per_query.get_mut(&id) {
                let engine = self.registry.engine(id).expect("engine exists");
                state.rebase(engine.query(), &self.estimator);
            }
            adaptive.stats.redecompositions += 1;
        }
        Ok(())
    }

    /// Ingests one stream event and returns the complete matches it created,
    /// tagged with the query they belong to.
    pub fn process(&mut self, event: &EdgeEvent) -> Vec<(QueryId, SubgraphMatch)> {
        let mut sink = CollectSink::new();
        self.process_into(event, &mut sink);
        sink.into_matches()
    }

    /// Ingests a batch of stream events into one sink, returning the number
    /// of matches reported. This is the batch loop both the sequential
    /// driver ([`StreamProcessor::process_all`]) and the parallel runtime's
    /// workers route through: one registry-owned edge cache and one warm
    /// per-engine scratch serve every edge of the batch.
    pub fn process_batch_into<'a, S, I>(&mut self, events: I, sink: &mut S) -> u64
    where
        S: MatchSink + ?Sized,
        I: IntoIterator<Item = &'a EdgeEvent>,
    {
        let mut found = 0;
        for e in events {
            found += self.process_into(e, sink);
        }
        found
    }

    /// Ingests a whole stream, returning the total number of matches found
    /// across all registered queries (allocation-free per event).
    pub fn process_all<'a, I>(&mut self, events: I) -> u64
    where
        I: IntoIterator<Item = &'a EdgeEvent>,
    {
        let mut sink = CountSink::new();
        self.process_batch_into(events, &mut sink);
        sink.matches
    }

    /// The shared data graph in its current state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The query registry.
    pub fn registry(&self) -> &QueryRegistry {
        &self.registry
    }

    /// Mutable access to the query registry.
    pub fn registry_mut(&mut self) -> &mut QueryRegistry {
        &mut self.registry
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.registry.len()
    }

    /// Ids of the registered queries, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.registry.query_ids().collect()
    }

    /// The engine of a registered query.
    pub fn engine_for(&self, id: QueryId) -> Option<&ContinuousQueryEngine> {
        self.registry.engine(id)
    }

    /// Mutable access to the engine of a registered query.
    pub fn engine_for_mut(&mut self, id: QueryId) -> Option<&mut ContinuousQueryEngine> {
        self.registry.engine_mut(id)
    }

    /// Single-query convenience: the one registered engine.
    ///
    /// # Panics
    /// Panics unless exactly one query is registered; multi-query callers
    /// use [`StreamProcessor::engine_for`].
    pub fn engine(&self) -> &ContinuousQueryEngine {
        assert_eq!(
            self.registry.len(),
            1,
            "StreamProcessor::engine() requires exactly one registered query"
        );
        self.registry.iter().next().expect("one query").1
    }

    /// Single-query convenience: mutable access to the one registered
    /// engine.
    ///
    /// # Panics
    /// Panics unless exactly one query is registered.
    pub fn engine_mut(&mut self) -> &mut ContinuousQueryEngine {
        assert_eq!(
            self.registry.len(),
            1,
            "StreamProcessor::engine_mut() requires exactly one registered query"
        );
        self.registry.iter_mut().next().expect("one query").1
    }

    /// Aggregated profiling counters: the engines' counters summed, with
    /// `edges_processed` reporting events *ingested by the processor* (each
    /// engine's own `edges_processed` counts only the edges dispatched to
    /// it) and `vertex_type_conflicts` from the ingestion path.
    pub fn profile(&self) -> ProfileCounters {
        let mut total = ProfileCounters::new();
        for (_, engine) in self.registry.iter() {
            total.merge(engine.profile());
        }
        total.edges_processed = self.stream.edges_processed;
        total.vertex_type_conflicts = self.stream.vertex_type_conflicts;
        total
    }

    /// Profiling counters of one query's engine.
    pub fn profile_for(&self, id: QueryId) -> Option<&ProfileCounters> {
        self.registry.engine(id).map(|e| e.profile())
    }

    /// The stream statistics collected so far.
    pub fn estimator(&self) -> &SelectivityEstimator {
        &self.estimator
    }

    /// Total matches found since construction, across all queries.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }

    /// Resets all runtime state — every engine's partial matches and
    /// counters, the processor's counters, and the data graph — while
    /// keeping the registered queries and their decompositions, so the same
    /// processor can replay another stream. Stream statistics are cleared
    /// only when live collection is enabled; an estimator seeded through
    /// [`StreamProcessor::with_estimator`] with collection disabled is
    /// external input and survives the reset.
    pub fn reset(&mut self) {
        let schema = self.graph.schema().clone();
        let window = self.registry.graph_retention();
        self.graph = DynamicGraph::new(schema);
        self.graph.set_window(window);
        for (_, engine) in self.registry.iter_mut() {
            engine.reset();
        }
        self.registry.reset_shared_state();
        if self.collect_statistics {
            let mode = self.estimator.mode();
            self.estimator = SelectivityEstimator::new().with_mode(mode);
        }
        if let Some(adaptive) = self.adaptive.as_mut() {
            adaptive.since_check = 0;
            for (id, state) in adaptive.per_query.iter_mut() {
                if let Some(engine) = self.registry.engine(*id) {
                    state.rebase(engine.query(), &self.estimator);
                }
            }
        }
        self.since_purge = 0;
        self.total_matches = 0;
        self.stream = ProfileCounters::new();
    }
}

// The parallel runtime moves engines and whole processors across worker
// threads; pin the `Send` guarantee at compile time so a future field (an
// `Rc`, a raw pointer) cannot silently take it away.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StreamProcessor>();
    assert_send::<PipelineMetrics>();
    assert_send::<ContinuousQueryEngine>();
    assert_send::<QueryRegistry>();
    assert_send::<ProfileCounters>();
    assert_send::<SubgraphMatch>();
    assert_send::<crate::sink::CollectSink>();
    assert_send::<crate::sink::CountSink>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sp_graph::{Schema, Timestamp};
    use sp_query::QueryGraph;
    use sp_selectivity::SelectivityEstimator;

    fn simple_setup(strategy: Strategy, window: Option<u64>) -> (Schema, StreamProcessor) {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let _ = ip;
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        let est = SelectivityEstimator::new();
        let engine = ContinuousQueryEngine::new(q, strategy, &est, window).unwrap();
        let proc = StreamProcessor::with_engine(schema.clone(), engine);
        (schema, proc)
    }

    #[test]
    fn processes_events_and_counts_matches() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let events = [
            EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)),
            EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)),
            EdgeEvent::homogeneous(7, 8, ip, tcp, Timestamp(3)),
        ];
        let found = proc.process_all(events.iter());
        assert_eq!(found, 1);
        assert_eq!(proc.total_matches(), 1);
        assert_eq!(proc.graph().num_edges(), 3);
        assert_eq!(proc.profile().edges_processed, 3);
    }

    #[test]
    fn metrics_record_stages_and_latency_without_changing_matches() {
        use sp_metrics::MetricsRegistry;

        let events: Vec<EdgeEvent> = {
            let (schema, _) = simple_setup(Strategy::SingleLazy, None);
            let ip = schema.vertex_type("ip").unwrap();
            let tcp = schema.edge_type("tcp").unwrap();
            let esp = schema.edge_type("esp").unwrap();
            (0..200u64)
                .map(|i| {
                    let ty = if i % 3 == 0 { esp } else { tcp };
                    EdgeEvent::homogeneous(i % 17, (i % 13) + 5, ip, ty, Timestamp(i))
                })
                .collect()
        };

        let run = |metrics: Option<&MetricsRegistry>| {
            let (_, mut proc) = simple_setup(Strategy::SingleLazy, None);
            if let Some(reg) = metrics {
                proc = proc.with_metrics(PipelineMetrics::register(reg));
            }
            let mut got: Vec<String> = Vec::new();
            {
                let mut sink = crate::sink::FnSink(|q: QueryId, m: SubgraphMatch| {
                    got.push(format!("{q}:{:?}", m.edge_pairs().collect::<Vec<_>>()));
                });
                for ev in &events {
                    proc.process_into(ev, &mut sink);
                }
            }
            got.sort();
            got
        };

        let reg = MetricsRegistry::new();
        let with = run(Some(&reg));
        let without = run(None);
        // Telemetry is observation only: identical match multiset.
        assert_eq!(with, without);
        assert!(!with.is_empty(), "test stream should produce matches");

        let snap = reg.snapshot();
        assert_eq!(snap.counter("stream.edges_total"), Some(200));
        assert_eq!(
            snap.counter("stream.matches_total"),
            Some(with.len() as u64)
        );
        // Per-edge pipeline histogram saw every edge; match latency saw
        // every match, measured from the ingest entry instant.
        assert_eq!(snap.histogram("pipeline.edge_ns").unwrap().count(), 200);
        assert_eq!(
            snap.histogram("match.latency_ns").unwrap().count(),
            with.len() as u64
        );
        // The stage spans that must run on this workload actually ticked.
        assert!(snap.counter("stage.ingest_ns").unwrap() > 0);
        assert!(snap.counter("stage.private_engine_ns").unwrap() > 0);
    }

    #[test]
    fn window_expires_graph_edges() {
        let (schema, proc) = simple_setup(Strategy::SingleLazy, Some(10));
        let mut proc = proc.with_purge_interval(1);
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        for i in 0..20u64 {
            let ev = EdgeEvent::homogeneous(i, i + 1000, ip, tcp, Timestamp(i * 5));
            proc.process(&ev);
        }
        // With a window of 10 ticks and edges every 5 ticks, only a handful
        // of edges stay live.
        assert!(proc.graph().num_edges() <= 3);
        assert!(proc.graph().total_edges_seen() == 20);
    }

    #[test]
    fn reset_clears_processor_state_between_runs() {
        let (schema, mut proc) = simple_setup(Strategy::PathLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)));
        assert_eq!(proc.profile().edges_processed, 1);
        proc.reset();
        assert_eq!(proc.profile().edges_processed, 0);
        assert_eq!(proc.graph().num_edges(), 0);
        assert_eq!(proc.engine().strategy(), Strategy::PathLazy);
    }

    #[test]
    fn matches_are_tagged_with_their_query_id() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let qid = proc.query_ids()[0];
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)));
        let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)));
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].0, qid);
        assert_eq!(matches[0].1.num_edges(), 2);
    }

    #[test]
    fn vertex_type_conflicts_are_counted_not_swallowed() {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let person = schema.intern_vertex_type("person");
        let tcp = schema.intern_edge_type("tcp");
        let mut q = QueryGraph::new("tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        let est = SelectivityEstimator::new();
        let engine = ContinuousQueryEngine::new(q, Strategy::Single, &est, None).unwrap();
        let mut proc = StreamProcessor::with_engine(schema, engine);
        // Vertex 1 first appears as "ip", then as "person": the conflict
        // keeps the original type and bumps the counter.
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(1)));
        assert_eq!(proc.profile().vertex_type_conflicts, 0);
        proc.process(&EdgeEvent::homogeneous(1, 3, person, tcp, Timestamp(2)));
        assert_eq!(proc.profile().vertex_type_conflicts, 1);
        assert_eq!(proc.graph().vertex_type(VertexId(1)), Some(ip));
    }

    #[test]
    fn dispatch_skips_engines_without_the_edge_type() {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut proc = StreamProcessor::new(schema);
        let mut q_tcp = QueryGraph::new("tcp-only");
        let a = q_tcp.add_any_vertex();
        let b = q_tcp.add_any_vertex();
        q_tcp.add_edge(a, b, tcp);
        let mut q_esp = QueryGraph::new("esp-only");
        let a = q_esp.add_any_vertex();
        let b = q_esp.add_any_vertex();
        q_esp.add_edge(a, b, esp);
        let tcp_id = proc.register(q_tcp, Strategy::Single, None).unwrap();
        let esp_id = proc.register(q_esp, Strategy::Single, None).unwrap();

        for i in 0..10u64 {
            proc.process(&EdgeEvent::homogeneous(i, i + 100, ip, tcp, Timestamp(i)));
        }
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(50)));

        // The esp engine never saw the 10 tcp edges; the tcp engine never
        // saw the esp edge. The processor ingested all 11.
        assert_eq!(proc.profile_for(tcp_id).unwrap().edges_processed, 10);
        assert_eq!(proc.profile_for(esp_id).unwrap().edges_processed, 1);
        assert_eq!(proc.profile().edges_processed, 11);
        assert_eq!(proc.total_matches(), 11);
    }

    #[test]
    fn deregister_returns_the_engine_and_stops_dispatch() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let qid = proc.query_ids()[0];
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)));
        let engine = proc.deregister(qid).expect("registered");
        assert_eq!(engine.profile().edges_processed, 1);
        assert_eq!(proc.num_queries(), 0);
        // Further events are ingested into the graph but matched by no one.
        proc.process(&EdgeEvent::homogeneous(2, 3, ip, esp, Timestamp(2)));
        assert_eq!(proc.total_matches(), 0);
        assert!(proc.deregister(qid).is_none());
    }

    #[test]
    fn deregister_recomputes_retention_and_dispatch_immediately() {
        // Regression test: removing the query with the widest window must
        // shrink the graph's retention to the remaining maximum right away
        // (not keep the old maximum), and the dispatch index must stop
        // routing the removed query's edge types.
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut proc = StreamProcessor::new(schema);
        let mut wide = QueryGraph::new("wide");
        let a = wide.add_any_vertex();
        let b = wide.add_any_vertex();
        wide.add_edge(a, b, esp);
        let mut narrow = QueryGraph::new("narrow");
        let a = narrow.add_any_vertex();
        let b = narrow.add_any_vertex();
        narrow.add_edge(a, b, tcp);
        let wide_id = proc.register(wide, Strategy::Single, Some(1_000)).unwrap();
        let narrow_id = proc.register(narrow, Strategy::Single, Some(10)).unwrap();
        assert_eq!(proc.graph().window(), Some(1_000));

        proc.deregister(wide_id).expect("wide query was registered");
        // Retention shrinks immediately, not on the next purge.
        assert_eq!(proc.graph().window(), Some(10));
        assert!(proc.registry().candidates(esp).is_empty());
        assert_eq!(proc.registry().candidates(tcp), &[narrow_id]);

        // With the narrow window in force, old edges actually expire.
        let mut proc = proc.with_purge_interval(1);
        for i in 0..50u64 {
            proc.process(&EdgeEvent::homogeneous(
                i,
                i + 500,
                ip,
                tcp,
                Timestamp(i * 10),
            ));
        }
        assert!(proc.graph().num_edges() <= 2);
    }

    #[test]
    fn set_graph_retention_overrides_registry_window() {
        let (_, mut proc) = simple_setup(Strategy::SingleLazy, Some(10));
        assert_eq!(proc.graph().window(), Some(10));
        // The runtime facade widens retention beyond the local registry's
        // maximum (e.g. another shard holds a wider query).
        proc.set_graph_retention(Some(500));
        assert_eq!(proc.graph().window(), Some(500));
        proc.set_graph_retention(None);
        assert_eq!(proc.graph().window(), None);
    }

    #[test]
    fn deregistering_the_last_query_keeps_graph_retention() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, Some(100));
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let qid = proc.query_ids()[0];
        assert_eq!(proc.graph().window(), Some(100));
        proc.deregister(qid);
        // The retention window survives so an idle processor keeps expiring
        // old edges instead of accumulating them forever.
        assert_eq!(proc.graph().window(), Some(100));
        let mut proc = proc.with_purge_interval(1);
        for i in 0..50u64 {
            proc.process(&EdgeEvent::homogeneous(
                i,
                i + 500,
                ip,
                tcp,
                Timestamp(i * 10),
            ));
        }
        assert!(proc.graph().num_edges() < 50);
    }

    #[test]
    fn reset_preserves_an_externally_seeded_estimator() {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let mut seed = SelectivityEstimator::new();
        seed.observe_edge(&sp_graph::EdgeData {
            id: sp_graph::EdgeId(0),
            src: VertexId(1),
            dst: VertexId(2),
            edge_type: tcp,
            timestamp: Timestamp(1),
        });
        let mut proc = StreamProcessor::new(schema)
            .with_estimator(seed)
            .with_statistics(false);
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, tcp, Timestamp(1)));
        proc.reset();
        // With live collection disabled the estimator is external input and
        // must survive the reset.
        assert_eq!(proc.estimator().num_edges_observed(), 1);
    }

    #[test]
    fn auto_strategy_registration_uses_stream_statistics() {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut proc = StreamProcessor::new(schema);
        // Warm the live statistics with plenty of traffic.
        for i in 0..200u64 {
            proc.process(&EdgeEvent::homogeneous(i, i + 1, ip, tcp, Timestamp(i)));
        }
        proc.process(&EdgeEvent::homogeneous(500, 501, ip, esp, Timestamp(300)));
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        let qid = proc.register(q, StrategySpec::Auto, None).unwrap();
        let chosen = proc.engine_for(qid).unwrap().strategy();
        assert!(chosen.is_lazy(), "auto picks a lazy strategy, got {chosen}");
    }

    #[test]
    fn drift_check_rebuilds_the_engine_when_the_ranking_flips() {
        use sp_selectivity::StatsMode;
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut proc = StreamProcessor::new(schema)
            .with_estimator(SelectivityEstimator::new().with_mode(StatsMode::Decayed(64)))
            .with_adaptive(sp_selectivity::DriftConfig {
                check_interval: 32,
                min_observations: 32,
                confirm_checks: 1,
            });
        assert!(proc.adaptive_enabled());
        // Phase 1: esp is rare.
        for i in 0..180u64 {
            let t = if i % 10 == 0 { esp } else { tcp };
            proc.process(&EdgeEvent::homogeneous(i, i + 1000, ip, t, Timestamp(i)));
        }
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        let qid = proc.register(q, Strategy::SingleLazy, Some(50)).unwrap();
        let leaf0_before = {
            let tree = proc.engine_for(qid).unwrap().tree().unwrap();
            tree.subgraph(tree.leaf(0)).primitive(tree.query()).unwrap()
        };
        assert_eq!(leaf0_before, sp_query::Primitive::SingleEdge(esp));

        // Phase 2: the mix inverts — esp floods, tcp dries up.
        for i in 0..600u64 {
            let t = if i % 10 == 0 { tcp } else { esp };
            proc.process(&EdgeEvent::homogeneous(
                10_000 + i,
                20_000 + i,
                ip,
                t,
                Timestamp(200 + i),
            ));
        }
        let stats = proc.adaptive_stats();
        assert!(stats.checks > 0);
        assert!(
            stats.redecompositions >= 1,
            "ranking flip must trigger a rebuild: {stats:?}"
        );
        assert_eq!(
            proc.profile_for(qid).unwrap().redecompositions,
            stats.redecompositions
        );
        let leaf0_after = {
            let tree = proc.engine_for(qid).unwrap().tree().unwrap();
            tree.subgraph(tree.leaf(0)).primitive(tree.query()).unwrap()
        };
        assert_eq!(
            leaf0_after,
            sp_query::Primitive::SingleEdge(tcp),
            "the now-rare tcp leaf must lead the decomposition"
        );
    }

    #[test]
    fn redecompose_swaps_plans_and_rejects_unknown_ids() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, Some(100));
        let ip = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let qid = proc.query_ids()[0];
        // Live partial mid-window, then an externally supplied flipped plan.
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)));
        let q = proc.engine_for(qid).unwrap().query().clone();
        let leaves = vec![
            sp_query::QuerySubgraph::from_edges(&q, [sp_query::QueryEdgeId(1)]),
            sp_query::QuerySubgraph::from_edges(&q, [sp_query::QueryEdgeId(0)]),
        ];
        let flipped = SjTree::from_leaves(q.clone(), leaves);
        proc.redecompose(qid, Strategy::SingleLazy, flipped.clone())
            .unwrap();
        assert_eq!(proc.profile_for(qid).unwrap().redecompositions, 1);
        // The partial still completes exactly once after the swap.
        let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)));
        assert_eq!(matches.len(), 1);
        assert!(matches!(
            proc.redecompose(QueryId(999), Strategy::SingleLazy, flipped),
            Err(EngineError::UnknownQuery)
        ));
    }

    #[test]
    fn register_rejects_empty_queries() {
        let schema = Schema::new();
        let mut proc = StreamProcessor::new(schema);
        let q = QueryGraph::new("empty");
        assert!(proc.register(q, StrategySpec::Auto, None).is_err());
    }
}
