//! The stream processor: owns the data graph and drives one engine.
//!
//! [`StreamProcessor`] is the "query processing" half of the paper's
//! experimental setup (Section 6.1): it initializes an empty data graph,
//! streams [`EdgeEvent`]s into it, invokes the continuous query algorithm
//! after every `AddEdge()`, maintains the sliding time window on both the
//! graph and the partial matches, and accumulates the reported matches.

use crate::engine::ContinuousQueryEngine;
use crate::profile::ProfileCounters;
use sp_graph::{DynamicGraph, EdgeEvent, Schema, VertexId};
use sp_iso::SubgraphMatch;

/// Default number of edges between partial-match purges.
const DEFAULT_PURGE_INTERVAL: u64 = 4096;

/// Owns a [`DynamicGraph`] and a [`ContinuousQueryEngine`] and feeds the
/// stream through both.
#[derive(Debug, Clone)]
pub struct StreamProcessor {
    graph: DynamicGraph,
    engine: ContinuousQueryEngine,
    purge_interval: u64,
    since_purge: u64,
    total_matches: u64,
}

impl StreamProcessor {
    /// Creates a processor with an empty data graph. The graph's sliding
    /// window is taken from the engine's window configuration.
    pub fn new(schema: Schema, engine: ContinuousQueryEngine) -> Self {
        let graph = match engine.window() {
            Some(w) => DynamicGraph::with_window(schema, w),
            None => DynamicGraph::new(schema),
        };
        Self {
            graph,
            engine,
            purge_interval: DEFAULT_PURGE_INTERVAL,
            since_purge: 0,
            total_matches: 0,
        }
    }

    /// Overrides how many edges are processed between partial-match purges
    /// (the purge is an amortized maintenance pass; correctness of reported
    /// matches does not depend on it).
    pub fn with_purge_interval(mut self, interval: u64) -> Self {
        self.purge_interval = interval.max(1);
        self
    }

    /// Ingests one stream event and returns the complete matches it created.
    pub fn process(&mut self, event: &EdgeEvent) -> Vec<SubgraphMatch> {
        // External ids map directly onto graph vertex ids. A type conflict
        // means the vertex already exists (with its original type); keep it.
        let src = self
            .graph
            .ensure_vertex(VertexId(event.src), event.src_type)
            .unwrap_or(VertexId(event.src));
        let dst = self
            .graph
            .ensure_vertex(VertexId(event.dst), event.dst_type)
            .unwrap_or(VertexId(event.dst));
        let edge_id = self
            .graph
            .add_edge(src, dst, event.edge_type, event.timestamp);
        let edge = *self.graph.edge(edge_id).expect("edge was just inserted");

        let matches = self.engine.process_edge(&self.graph, &edge);
        self.total_matches += matches.len() as u64;

        self.since_purge += 1;
        if self.since_purge >= self.purge_interval {
            self.graph.expire();
            self.engine.purge(&self.graph);
            self.since_purge = 0;
        }
        matches
    }

    /// Ingests a whole stream, returning the total number of matches found.
    pub fn process_all<'a, I>(&mut self, events: I) -> u64
    where
        I: IntoIterator<Item = &'a EdgeEvent>,
    {
        let mut found = 0u64;
        for e in events {
            found += self.process(e).len() as u64;
        }
        found
    }

    /// The data graph in its current state.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The engine.
    pub fn engine(&self) -> &ContinuousQueryEngine {
        &self.engine
    }

    /// Mutable access to the engine (e.g. to reset profiling counters).
    pub fn engine_mut(&mut self) -> &mut ContinuousQueryEngine {
        &mut self.engine
    }

    /// Profiling counters of the engine.
    pub fn profile(&self) -> &ProfileCounters {
        self.engine.profile()
    }

    /// Total matches found since construction.
    pub fn total_matches(&self) -> u64 {
        self.total_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sp_graph::{Schema, Timestamp};
    use sp_query::QueryGraph;
    use sp_selectivity::SelectivityEstimator;

    fn simple_setup(strategy: Strategy, window: Option<u64>) -> (Schema, StreamProcessor) {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let _ = ip;
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        let est = SelectivityEstimator::new();
        let engine = ContinuousQueryEngine::new(q, strategy, &est, window).unwrap();
        let proc = StreamProcessor::new(schema.clone(), engine);
        (schema, proc)
    }

    #[test]
    fn processes_events_and_counts_matches() {
        let (schema, mut proc) = simple_setup(Strategy::SingleLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let events = vec![
            EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)),
            EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)),
            EdgeEvent::homogeneous(7, 8, ip, tcp, Timestamp(3)),
        ];
        let found = proc.process_all(events.iter());
        assert_eq!(found, 1);
        assert_eq!(proc.total_matches(), 1);
        assert_eq!(proc.graph().num_edges(), 3);
        assert_eq!(proc.profile().edges_processed, 3);
    }

    #[test]
    fn window_expires_graph_edges() {
        let (schema, proc) = simple_setup(Strategy::SingleLazy, Some(10));
        let mut proc = proc.with_purge_interval(1);
        let ip = schema.vertex_type("ip").unwrap();
        let tcp = schema.edge_type("tcp").unwrap();
        for i in 0..20u64 {
            let ev = EdgeEvent::homogeneous(i, i + 1000, ip, tcp, Timestamp(i * 5));
            proc.process(&ev);
        }
        // With a window of 10 ticks and edges every 5 ticks, only a handful
        // of edges stay live.
        assert!(proc.graph().num_edges() <= 3);
        assert!(proc.graph().total_edges_seen() == 20);
    }

    #[test]
    fn engine_mut_allows_reset_between_runs() {
        let (schema, mut proc) = simple_setup(Strategy::PathLazy, None);
        let ip = schema.vertex_type("ip").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1)));
        assert_eq!(proc.profile().edges_processed, 1);
        proc.engine_mut().reset();
        assert_eq!(proc.profile().edges_processed, 0);
        assert_eq!(proc.engine().strategy(), Strategy::PathLazy);
    }
}
