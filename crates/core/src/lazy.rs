//! The per-vertex search-enablement bitmap of the Lazy Search algorithm.
//!
//! "We use a bitmap structure Mb to maintain this information. Each row in
//! the bitmap refers to a vertex in Gd and the i-th column refers to gi, or
//! the i-th leaf in the SJ-Tree. If the search for subgraph gi is enabled for
//! vertex u in Gd, then Mb[u][i] = 1 and zero otherwise." (Section 4)
//!
//! Rows are stored sparsely (most vertices never enable anything), and each
//! row is a 64-bit mask, which bounds supported SJ-Trees to 64 leaves — far
//! above the query sizes the paper evaluates (≤ 15 edges).

use sp_graph::VertexId;
use std::collections::HashMap;

/// Maximum number of SJ-Tree leaves the bitmap supports.
pub const MAX_LEAVES: usize = 64;

/// Sparse per-vertex bitmap of enabled leaf searches.
#[derive(Debug, Clone, Default)]
pub struct LazyBitmap {
    rows: HashMap<VertexId, u64>,
}

impl LazyBitmap {
    /// Creates an empty bitmap (nothing enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables search for leaf `rank` around vertex `v`. Returns `true` if
    /// the bit was newly set (i.e. the search was previously disabled).
    pub fn enable(&mut self, v: VertexId, rank: usize) -> bool {
        debug_assert!(rank < MAX_LEAVES);
        let row = self.rows.entry(v).or_insert(0);
        let bit = 1u64 << rank;
        let newly = *row & bit == 0;
        *row |= bit;
        newly
    }

    /// Returns `true` when search for leaf `rank` is enabled around `v`.
    /// Leaf 0 (the most selective primitive) is always enabled — it is
    /// searched unconditionally around every new edge.
    pub fn is_enabled(&self, v: VertexId, rank: usize) -> bool {
        if rank == 0 {
            return true;
        }
        debug_assert!(rank < MAX_LEAVES);
        self.rows
            .get(&v)
            .is_some_and(|row| row & (1u64 << rank) != 0)
    }

    /// Drops the row of a vertex (called when the vertex leaves the window).
    pub fn forget(&mut self, v: VertexId) {
        self.rows.remove(&v);
    }

    /// Number of vertices with at least one enabled bit.
    pub fn num_tracked_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Total number of set bits (enabled (vertex, leaf) pairs).
    pub fn num_enabled(&self) -> usize {
        self.rows.values().map(|r| r.count_ones() as usize).sum()
    }

    /// Clears the bitmap.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_zero_is_always_enabled() {
        let b = LazyBitmap::new();
        assert!(b.is_enabled(VertexId(1), 0));
        assert!(!b.is_enabled(VertexId(1), 1));
    }

    #[test]
    fn enable_is_idempotent_and_reports_newness() {
        let mut b = LazyBitmap::new();
        assert!(b.enable(VertexId(5), 2));
        assert!(!b.enable(VertexId(5), 2));
        assert!(b.is_enabled(VertexId(5), 2));
        assert!(!b.is_enabled(VertexId(6), 2));
        assert_eq!(b.num_enabled(), 1);
        assert_eq!(b.num_tracked_vertices(), 1);
    }

    #[test]
    fn forget_clears_a_vertex_row() {
        let mut b = LazyBitmap::new();
        b.enable(VertexId(5), 1);
        b.enable(VertexId(5), 3);
        assert_eq!(b.num_enabled(), 2);
        b.forget(VertexId(5));
        assert!(!b.is_enabled(VertexId(5), 1));
        assert_eq!(b.num_tracked_vertices(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = LazyBitmap::new();
        b.enable(VertexId(1), 1);
        b.enable(VertexId(2), 2);
        b.clear();
        assert_eq!(b.num_enabled(), 0);
        assert!(b.is_enabled(VertexId(1), 0));
        assert!(!b.is_enabled(VertexId(1), 1));
    }

    #[test]
    fn highest_supported_rank_works() {
        let mut b = LazyBitmap::new();
        assert!(b.enable(VertexId(1), MAX_LEAVES - 1));
        assert!(b.is_enabled(VertexId(1), MAX_LEAVES - 1));
    }
}
