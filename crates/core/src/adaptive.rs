//! Adaptive re-decomposition: keeping registered queries' plans aligned
//! with a drifting stream.
//!
//! A query's SJ-Tree is built from the stream statistics at registration
//! time; on a drifting stream those statistics go stale and the engine keeps
//! searching a now-common leaf first. This module provides the plumbing the
//! [`StreamProcessor`](crate::StreamProcessor) and the parallel runtime
//! facade share to close the loop:
//!
//! 1. a moving [`SelectivityEstimator`] ([`StatsMode::Decayed`]) keeps the
//!    statistics tracking the recent stream;
//! 2. a per-query [`DriftDetector`] (wrapped in [`QueryDriftState`]) watches
//!    the frequency ranking of the query's candidate primitives and the
//!    Relative Selectivity threshold side;
//! 3. when the detector fires, [`plan_query`] re-plans authoritatively —
//!    re-resolving `Auto` strategies and re-running the decomposition — and
//!    the caller swaps engines with
//!    [`ContinuousQueryEngine::rebuild`](crate::ContinuousQueryEngine::rebuild)
//!    only when the plan really changed ([`leaf_structure`] decides).
//!
//! [`StatsMode::Decayed`]: sp_selectivity::StatsMode

use crate::error::EngineError;
use crate::registry::StrategySpec;
use crate::strategy::{choose_strategy, Strategy, RELATIVE_SELECTIVITY_THRESHOLD};
use sp_query::{Primitive, QueryEdgeId, QueryGraph};
use sp_selectivity::{DriftConfig, DriftDetector, SelectivityEstimator};
use sp_sjtree::{decompose, PrimitivePolicy, SjTree};

/// Cumulative adaptivity counters of one processor (sequential or facade).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Per-query drift checks evaluated.
    pub checks: u64,
    /// Checks whose detector fired (ranking or threshold-side movement).
    pub drifts_detected: u64,
    /// Engine rebuilds actually performed (detector fired *and* the
    /// authoritative re-plan differed from the active plan).
    pub redecompositions: u64,
}

/// Computes the authoritative plan for a query under the current statistics:
/// the strategy (re-resolving [`StrategySpec::Auto`] with the Relative
/// Selectivity rule) and the SJ-Tree it decomposes to.
///
/// # Errors
/// [`EngineError::RebuildMismatch`] for [`Strategy::Vf2Baseline`] (no
/// SJ-Tree to plan), or a decomposition error for empty queries.
pub fn plan_query(
    query: &QueryGraph,
    spec: StrategySpec,
    estimator: &SelectivityEstimator,
) -> Result<(Strategy, SjTree), EngineError> {
    let strategy = match spec {
        StrategySpec::Fixed(s) => s,
        StrategySpec::Auto => {
            choose_strategy(query, estimator, RELATIVE_SELECTIVITY_THRESHOLD)?.strategy
        }
    };
    let policy = strategy.policy().ok_or(EngineError::RebuildMismatch)?;
    let tree = decompose(query, policy, estimator)?;
    Ok((strategy, tree))
}

/// The order-sensitive leaf structure of a tree: each leaf's (sorted) query
/// edge ids, in selectivity-rank order. Two plans over the same query are
/// interchangeable exactly when their strategy and leaf structure agree —
/// this is the comparison that decides whether a detected drift warrants an
/// engine rebuild.
pub fn leaf_structure(tree: &SjTree) -> Vec<Vec<QueryEdgeId>> {
    tree.leaf_subgraphs()
        .map(|sg| {
            let mut edges: Vec<QueryEdgeId> = sg.edges().collect();
            edges.sort_unstable();
            edges
        })
        .collect()
}

/// A replacement plan must beat the active one by at least this factor on
/// the [`plan_cost`] proxy before an engine rebuild (window replay) is paid
/// for. Mid-rank reorders among similarly selective leaves move the proxy
/// barely at all and are ignored; a genuine rank-0 flip (the hot leaf
/// becoming cold or vice versa) moves it by orders of magnitude. A strategy
/// change always rebuilds.
pub const REDECOMPOSITION_GAIN: f64 = 0.5;

/// Geometric down-weighting of later leaf ranks in [`plan_cost`].
const RANK_WEIGHT: f64 = 0.25;

/// Lazy-search cost proxy of a leaf order under the current statistics:
/// the selectivity of each leaf, geometrically down-weighted by rank. Rank 0
/// dominates because the lazy gate searches it for every dispatched edge
/// and its matches trigger the enablement cascade; later ranks only run
/// when enabled. The proxy deliberately depends on *order* — the Expected
/// Selectivity product does not, so it cannot rank two orderings of the
/// same leaves.
pub fn plan_cost(
    query: &QueryGraph,
    leaves: &[Vec<QueryEdgeId>],
    estimator: &SelectivityEstimator,
) -> f64 {
    let mut cost = 0.0;
    let mut weight = 1.0;
    for leaf in leaves {
        let s = match leaf.as_slice() {
            [e] => estimator.selectivity(&query.edge_primitive(*e)),
            [a, b] => query
                .wedge_primitive(*a, *b)
                .map(|p| estimator.selectivity(&p))
                .unwrap_or_else(|| {
                    leaf.iter()
                        .map(|&e| estimator.selectivity(&query.edge_primitive(e)))
                        .product()
                }),
            _ => leaf
                .iter()
                .map(|&e| estimator.selectivity(&query.edge_primitive(e)))
                .product(),
        };
        cost += s * weight;
        weight *= RANK_WEIGHT;
    }
    cost
}

/// Every primitive the decomposition could rank for this query: each
/// distinct single-edge primitive plus each distinct wedge its edge pairs
/// can form. Tracking the full candidate set (instead of just the current
/// leaves) lets the detector see a wedge overtaking a single edge before
/// the plan uses it.
fn tracked_primitives(query: &QueryGraph) -> Vec<Primitive> {
    let mut tracked: Vec<Primitive> = Vec::new();
    for e in query.edge_ids() {
        let p = query.edge_primitive(e);
        if !tracked.contains(&p) {
            tracked.push(p);
        }
    }
    let edges: Vec<QueryEdgeId> = query.edge_ids().collect();
    for (i, &a) in edges.iter().enumerate() {
        for &b in &edges[i + 1..] {
            if let Some(p) = query.wedge_primitive(a, b) {
                if !tracked.contains(&p) {
                    tracked.push(p);
                }
            }
        }
    }
    tracked
}

/// Leaf primitives of a query under one decomposition policy; used for the
/// detector's ξ baseline. Falls back to the single-edge primitives when the
/// decomposition fails (it cannot for registered queries).
fn leaf_primitives(
    query: &QueryGraph,
    policy: PrimitivePolicy,
    estimator: &SelectivityEstimator,
) -> Vec<Primitive> {
    match decompose(query, policy, estimator) {
        Ok(tree) => tree
            .leaf_subgraphs()
            .filter_map(|sg| sg.primitive(query))
            .collect(),
        Err(_) => query.edge_ids().map(|e| query.edge_primitive(e)).collect(),
    }
}

/// Per-query drift bookkeeping: the registration spec (so `Auto` stays
/// auto across re-plans) plus a [`DriftDetector`] baselined on the active
/// plan. Owned by the sequential processor per registered query, and by the
/// parallel runtime facade per shard-assigned query.
#[derive(Debug, Clone)]
pub struct QueryDriftState {
    spec: StrategySpec,
    detector: DriftDetector,
}

impl QueryDriftState {
    /// Creates the state for a freshly (re)planned query and baselines the
    /// detector on the current statistics.
    pub fn new(
        config: DriftConfig,
        query: &QueryGraph,
        spec: StrategySpec,
        estimator: &SelectivityEstimator,
    ) -> Self {
        let mut state = Self {
            spec,
            detector: DriftDetector::new(config),
        };
        state.rebase(query, estimator);
        state
    }

    /// The strategy spec the query was registered with.
    pub fn spec(&self) -> StrategySpec {
        self.spec
    }

    /// The wrapped detector (stats for reporting).
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Re-baselines the detector against the current statistics: the
    /// ranking of the query's candidate primitives and the ξ threshold side
    /// of its two decompositions. Call after every plan change (and after
    /// an externally driven [`redecompose`](crate::StreamProcessor::redecompose)).
    pub fn rebase(&mut self, query: &QueryGraph, estimator: &SelectivityEstimator) {
        let tracked = tracked_primitives(query);
        let t1 = leaf_primitives(query, PrimitivePolicy::SingleEdge, estimator);
        let tk = leaf_primitives(query, PrimitivePolicy::TwoEdgePath, estimator);
        self.detector
            .rebase(estimator, tracked, tk, t1, RELATIVE_SELECTIVITY_THRESHOLD);
    }

    /// One drift check against the active plan. Returns the replacement
    /// `(strategy, tree)` when the detector confirms movement **and** the
    /// authoritative re-plan is *materially* better: the strategy changed,
    /// or the new leaf order beats the active one by
    /// [`REDECOMPOSITION_GAIN`] on the [`plan_cost`] proxy (an engine
    /// rebuild replays the retained window, so marginal reorders are not
    /// worth paying for — and on a stream mid-transition they would thrash).
    /// Returns `None` (re-baselining, so the movement becomes the new
    /// normal) otherwise. `drifted` reports whether the detector fired, for
    /// stats.
    pub fn check_plan(
        &mut self,
        query: &QueryGraph,
        current_strategy: Strategy,
        current_leaves: &[Vec<QueryEdgeId>],
        estimator: &SelectivityEstimator,
        drifted: &mut bool,
    ) -> Option<(Strategy, SjTree)> {
        *drifted = false;
        if !self.detector.check(estimator) {
            return None;
        }
        *drifted = true;
        let plan = plan_query(query, self.spec, estimator).ok()?;
        if plan.0 == current_strategy {
            let new_leaves = leaf_structure(&plan.1);
            if new_leaves == current_leaves {
                // The movement did not touch the plan: it is the new normal.
                self.rebase(query, estimator);
                return None;
            }
            let current_cost = plan_cost(query, current_leaves, estimator);
            let new_cost = plan_cost(query, &new_leaves, estimator);
            if new_cost > current_cost * REDECOMPOSITION_GAIN {
                // The plan wants to move but not (yet) materially — the
                // ranking typically first flips right at the selectivity
                // crossing point, where the two orders cost the same.
                // Deliberately keep the *old* baseline so the detector keeps
                // firing while the gap widens; once it clears the gain
                // threshold the rebuild below goes through.
                return None;
            }
        }
        self.rebase(query, estimator);
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{DynamicGraph, EdgeType, Schema, Timestamp};

    fn two_type_query(a: EdgeType, b: EdgeType) -> QueryGraph {
        let mut q = QueryGraph::new("chain");
        let v0 = q.add_any_vertex();
        let v1 = q.add_any_vertex();
        let v2 = q.add_any_vertex();
        q.add_edge(v0, v1, a);
        q.add_edge(v1, v2, b);
        q
    }

    fn estimator_with_mix(a: EdgeType, na: u64, b: EdgeType, nb: u64) -> SelectivityEstimator {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let mut g = DynamicGraph::new(schema);
        let mut est = SelectivityEstimator::new();
        let mut feed = |g: &mut DynamicGraph, t, n: u64| {
            for i in 0..n {
                let x = g.add_vertex(vt);
                let y = g.add_vertex(vt);
                let e = g.add_edge(x, y, t, Timestamp(i));
                est.observe_edge(g.edge(e).unwrap());
            }
        };
        feed(&mut g, a, na);
        feed(&mut g, b, nb);
        est
    }

    #[test]
    fn plan_query_resolves_auto_and_rejects_vf2() {
        let a = EdgeType(0);
        let b = EdgeType(1);
        let q = two_type_query(a, b);
        let est = estimator_with_mix(a, 90, b, 10);
        let (strategy, tree) = plan_query(&q, StrategySpec::Auto, &est).unwrap();
        assert!(strategy.is_lazy());
        assert_eq!(tree.query().num_edges(), 2);
        let (strategy, _) = plan_query(&q, StrategySpec::Fixed(Strategy::Path), &est).unwrap();
        assert_eq!(strategy, Strategy::Path);
        assert!(matches!(
            plan_query(&q, StrategySpec::Fixed(Strategy::Vf2Baseline), &est),
            Err(EngineError::RebuildMismatch)
        ));
    }

    #[test]
    fn leaf_structure_orders_by_rank() {
        let a = EdgeType(0);
        let b = EdgeType(1);
        let q = two_type_query(a, b);
        // b rare: the b-edge leaf (query edge 1) ranks first.
        let est = estimator_with_mix(a, 90, b, 10);
        let (_, tree) = plan_query(&q, StrategySpec::Fixed(Strategy::SingleLazy), &est).unwrap();
        assert_eq!(
            leaf_structure(&tree),
            vec![vec![QueryEdgeId(1)], vec![QueryEdgeId(0)]]
        );
        // Flip the mix: the leaf order flips with it.
        let est = estimator_with_mix(a, 10, b, 90);
        let (_, tree) = plan_query(&q, StrategySpec::Fixed(Strategy::SingleLazy), &est).unwrap();
        assert_eq!(
            leaf_structure(&tree),
            vec![vec![QueryEdgeId(0)], vec![QueryEdgeId(1)]]
        );
    }

    #[test]
    fn tracked_primitives_cover_edges_and_wedges() {
        let a = EdgeType(0);
        let q = two_type_query(a, a);
        let tracked = tracked_primitives(&q);
        // One distinct single-edge primitive + one wedge.
        assert_eq!(tracked.len(), 2);
        assert!(tracked.contains(&Primitive::SingleEdge(a)));
    }

    #[test]
    fn check_plan_fires_only_when_the_plan_changes() {
        let a = EdgeType(0);
        let b = EdgeType(1);
        let q = two_type_query(a, b);
        let est = estimator_with_mix(a, 90, b, 10);
        let cfg = DriftConfig {
            check_interval: 1,
            min_observations: 1,
            confirm_checks: 1,
        };
        let spec = StrategySpec::Fixed(Strategy::SingleLazy);
        let mut state = QueryDriftState::new(cfg, &q, spec, &est);
        let (strategy, tree) = plan_query(&q, spec, &est).unwrap();
        let leaves = leaf_structure(&tree);

        // Same statistics: no drift, no plan.
        let mut drifted = false;
        assert!(state
            .check_plan(&q, strategy, &leaves, &est, &mut drifted)
            .is_none());
        assert!(!drifted);

        // Inverted mix: drift fires and the re-plan flips the leaf order.
        let inverted = estimator_with_mix(a, 10, b, 90);
        let plan = state.check_plan(&q, strategy, &leaves, &inverted, &mut drifted);
        assert!(drifted);
        let (new_strategy, new_tree) = plan.expect("plan must change");
        assert_eq!(new_strategy, strategy);
        assert_ne!(leaf_structure(&new_tree), leaves);

        // The detector re-baselined: the inverted mix is the new normal.
        let new_leaves = leaf_structure(&new_tree);
        assert!(state
            .check_plan(&q, new_strategy, &new_leaves, &inverted, &mut drifted)
            .is_none());
        assert!(!drifted);
    }
}
