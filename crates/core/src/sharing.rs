//! Shared-leaf evaluation: one anchored search per distinct leaf shape per
//! streaming edge.
//!
//! The SJ-Tree decomposes each query into small leaf subgraphs whose matches
//! are found by anchored search and joined upward. With many registered
//! queries, distinct queries routinely decompose into *structurally
//! identical* leaves (the same typed edge, the same wedge), and the
//! per-engine pipeline re-ran the same anchored search once per query per
//! edge. [`SharedLeafIndex`] deduplicates that work across the registry —
//! the shared-subpattern design of "Large-scale continuous subgraph queries
//! on streams" (Choudhury et al., 2012) and StreamWorks:
//!
//! * at registration, every SJ-Tree leaf is canonicalized to a
//!   [`LeafSignature`] (vertex numbering normalized; vertex types, edge
//!   types and direction preserved) and the query subscribes to that shape,
//!   keeping the [`CanonicalMapping`] back to its own numbering;
//! * per edge, the registry asks the index to
//!   [`prepare_into`](SharedLeafIndex::prepare_into) each candidate engine
//!   (one reused fan-out buffer for the whole dispatch list): the anchored
//!   search for each distinct signature runs **once** (memoized in an
//!   [`EdgeSearchCache`] for the duration of the edge) and its matches are
//!   rebased onto every subscriber via [`SubgraphMatch::remapped`];
//! * lazy engines keep their enable/disable gating by *filtering the
//!   fan-out* — the index consults
//!   [`ContinuousQueryEngine::leaf_accepts`] before rebasing, and a
//!   signature none of whose gate-passing subscribers need it is never
//!   searched at all.
//!
//! Sharing is semantics-preserving: the engine consumes prepared matches in
//! exactly the order its own search would have produced work items, so the
//! reported match multiset is byte-identical to the per-engine path (the
//! equivalence tests assert this with sharing on, off, and against
//! independent processors).

use crate::engine::{ContinuousQueryEngine, LeafFanout, PreparedLeaf};
use crate::registry::QueryId;
use sp_graph::{DynamicGraph, EdgeData, EdgeType};
use sp_iso::{find_matches_containing_edge_into, SearchScratch, SubgraphMatch};
use sp_query::{canonicalize_subgraph, CanonicalMapping, LeafSignature, QueryGraph, QuerySubgraph};
use sp_sjtree::NodeId;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// One interned canonical leaf shape: the materialized canonical query (what
/// the anchored matcher runs against) plus subscriber bookkeeping.
#[derive(Debug, Clone)]
struct SigEntry {
    signature: LeafSignature,
    /// Canonical query graph the shared search runs against.
    query: QueryGraph,
    /// Subgraph view covering all of `query`.
    subgraph: QuerySubgraph,
    /// Distinct edge types in the leaf — the cheap "can this edge possibly
    /// match?" pre-filter.
    edge_types: Vec<EdgeType>,
    /// The `(query, leaf node)` subscriptions currently pointing here, in
    /// subscription order. Owned by the entry so
    /// [`SharedLeafIndex::subscribers`] can hand out a slice instead of
    /// assembling a fresh `Vec` per call (the old per-edge allocation).
    subs: Vec<(QueryId, NodeId)>,
}

/// One leaf subscription of one query: which signature it points at and how
/// to translate canonical matches back into the query's own numbering.
#[derive(Debug, Clone)]
struct LeafSub {
    /// Selectivity rank of the leaf in its engine (also its index in the
    /// prepared fan-out).
    rank: usize,
    /// The SJ-Tree node of the leaf (introspection only; the engine resolves
    /// ranks itself).
    node: NodeId,
    /// Index into the entry table.
    sig: usize,
    /// Canonical → subscriber numbering.
    mapping: CanonicalMapping,
}

/// Snapshot of the index's bookkeeping, used by tests, examples and the
/// `sharing` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharedLeafStats {
    /// Distinct canonical leaf shapes currently interned.
    pub distinct_leaves: usize,
    /// Current (query, leaf) subscriptions across all shared queries.
    pub total_subscriptions: usize,
    /// Queries currently evaluated through the shared stage.
    pub shared_queries: usize,
    /// Anchored leaf searches actually executed by the shared stage.
    pub searches_run: u64,
    /// Leaf searches *eliminated*: consumers served from a search another
    /// subscriber already triggered for the same edge.
    pub searches_shared: u64,
    /// Leaf searches delegated back to their engine because the shape has a
    /// single subscriber — nothing to share, so the engine searches its own
    /// numbering directly (no canonical search, no rebase).
    pub searches_delegated: u64,
}

impl SharedLeafStats {
    /// Fraction of would-be leaf searches that sharing eliminated
    /// (`shared / (run + shared + delegated)`; 0 when nothing ran).
    pub fn elimination_ratio(&self) -> f64 {
        let total = self.searches_run + self.searches_shared + self.searches_delegated;
        if total == 0 {
            0.0
        } else {
            self.searches_shared as f64 / total as f64
        }
    }
}

/// Per-edge memo of shared search executions: signature index → matches (in
/// canonical numbering) and the search's wall time.
///
/// The cache is scoped to one edge *logically* but owned by the registry
/// *physically*: [`EdgeSearchCache::begin_edge`] resets the memo while
/// keeping the map's capacity, recycling each entry's match buffer into a
/// spare pool, and retaining the anchored-search scratch — so the per-edge
/// shared stage stops allocating once the buffers have warmed up.
#[derive(Debug, Clone, Default)]
pub struct EdgeSearchCache {
    searches: HashMap<usize, CachedSearch>,
    /// Recycled match buffers, handed back out to fresh cache entries.
    spare: Vec<Vec<SubgraphMatch>>,
    /// Reusable anchored-search frontier/binding buffers.
    scratch: SearchScratch,
}

/// Cap on pooled spare buffers — enough for every distinct signature a
/// realistic edge fans out to, without hoarding after a burst.
const SPARE_SEARCH_BUFFERS_CAP: usize = 256;

#[derive(Debug, Clone)]
struct CachedSearch {
    matches: Vec<SubgraphMatch>,
    elapsed: Duration,
    /// Set once the first consumer has been charged the search time.
    consumed: bool,
}

impl EdgeSearchCache {
    /// An empty cache for one edge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the memo for a new edge, keeping warmed-up capacity: the memo
    /// map keeps its table, each entry's match buffer moves to the spare
    /// pool, and the search scratch is retained as-is.
    pub fn begin_edge(&mut self) {
        let spare = &mut self.spare;
        for (_, cs) in self.searches.drain() {
            let mut buf = cs.matches;
            if spare.len() < SPARE_SEARCH_BUFFERS_CAP && buf.capacity() > 0 {
                buf.clear();
                spare.push(buf);
            }
        }
    }

    /// Drops all retained capacity (memo table, spare pool, search scratch),
    /// returning the memory to the allocator.
    pub fn release(&mut self) {
        *self = Self::default();
    }
}

/// The registry-wide index of canonical leaf shapes and their subscribers.
#[derive(Debug, Clone, Default)]
pub struct SharedLeafIndex {
    by_sig: HashMap<LeafSignature, usize>,
    entries: Vec<Option<SigEntry>>,
    free: Vec<usize>,
    /// Per-query subscriptions in leaf-rank order. A query absent from this
    /// map (VF2 baseline, oversized leaf) is evaluated on its private path.
    subs: BTreeMap<QueryId, Vec<LeafSub>>,
    searches_run: u64,
    searches_shared: u64,
    searches_delegated: u64,
}

impl SharedLeafIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes a query's engine: canonicalizes every SJ-Tree leaf and
    /// interns the shapes. Returns `false` — leaving the engine on its
    /// private search path — for the VF2 baseline or when a (hand-built)
    /// leaf exceeds the canonicalization size cap.
    pub fn subscribe(&mut self, id: QueryId, engine: &ContinuousQueryEngine) -> bool {
        self.subscribe_from(id, engine, 0)
    }

    /// Like [`SharedLeafIndex::subscribe`], but only subscribes the leaves
    /// of rank `start_rank` and above. The shared **join** stage uses this
    /// for queries whose leading leaves are already evaluated inside a
    /// shared prefix table: the prefix leaves must not be interned here, or
    /// the leaf stage would run (and count) searches the join stage already
    /// performed. A `start_rank` at or past the leaf count still subscribes
    /// (with no shapes), keeping the query on the prepared fan-out path.
    pub fn subscribe_from(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        start_rank: usize,
    ) -> bool {
        let Some(tree) = engine.tree() else {
            return false;
        };
        let query = tree.query();
        let mut canon = Vec::with_capacity(tree.num_leaves());
        for (rank, &leaf) in tree.leaves().iter().enumerate().skip(start_rank) {
            let Some((sig, mapping)) = canonicalize_subgraph(query, tree.subgraph(leaf)) else {
                return false;
            };
            canon.push((rank, leaf, sig, mapping));
        }
        let subs = canon
            .into_iter()
            .map(|(rank, node, sig, mapping)| LeafSub {
                rank,
                node,
                sig: self.intern(sig, id, node),
                mapping,
            })
            .collect();
        self.subs.insert(id, subs);
        true
    }

    /// Drops a query's subscriptions. The last unsubscriber of a shape drops
    /// the interned entry entirely (`distinct_leaves` shrinks).
    pub fn unsubscribe(&mut self, id: QueryId) {
        let Some(subs) = self.subs.remove(&id) else {
            return;
        };
        for sub in subs {
            let entry = self.entries[sub.sig]
                .as_mut()
                .expect("subscription references a live entry");
            let at = entry
                .subs
                .iter()
                .position(|&(q, n)| q == id && n == sub.node)
                .expect("subscription is listed on its entry");
            entry.subs.remove(at);
            if entry.subs.is_empty() {
                let entry = self.entries[sub.sig].take().expect("checked above");
                self.by_sig.remove(&entry.signature);
                self.free.push(sub.sig);
            }
        }
    }

    /// Whether a query is evaluated through the shared stage.
    pub fn is_subscribed(&self, id: QueryId) -> bool {
        self.subs.contains_key(&id)
    }

    /// Whether a canonical leaf shape is currently resident in the index
    /// (the residency predicate behind sharing-aware cost estimates).
    pub fn contains(&self, sig: &LeafSignature) -> bool {
        self.by_sig.contains_key(sig)
    }

    /// The subscribers of a canonical leaf shape, as `(query, leaf node)`
    /// pairs in subscription order. Borrows the entry-owned list — no
    /// allocation per call (the old implementation assembled a fresh `Vec`
    /// by walking every subscription).
    pub fn subscribers(&self, sig: &LeafSignature) -> &[(QueryId, NodeId)] {
        self.by_sig
            .get(sig)
            .and_then(|&idx| self.entries[idx].as_ref())
            .map(|entry| entry.subs.as_slice())
            .unwrap_or(&[])
    }

    /// Current and cumulative bookkeeping.
    pub fn stats(&self) -> SharedLeafStats {
        SharedLeafStats {
            distinct_leaves: self.by_sig.len(),
            total_subscriptions: self.subs.values().map(Vec::len).sum(),
            shared_queries: self.subs.len(),
            searches_run: self.searches_run,
            searches_shared: self.searches_shared,
            searches_delegated: self.searches_delegated,
        }
    }

    /// Builds the prepared fan-out for one candidate engine on one edge
    /// into `out` (cleared first): `out[rank]` is `None` for gate-filtered
    /// leaves, a rebased shared-search result for shapes with multiple
    /// subscribers, and [`LeafFanout::SearchLocally`] for single-subscriber
    /// shapes (nothing to share — the engine searches its own numbering,
    /// paying neither the canonical search nor the rebase). Returns whether
    /// the query is subscribed; `false` leaves `out` empty and the caller
    /// falls back to the engine's private path.
    ///
    /// The first consumer of a signature this edge triggers the actual
    /// anchored search (and is charged its wall time); every further
    /// consumer is served from `cache` and counted as an eliminated search.
    /// `out` is caller-owned so the registry can drive the whole per-edge
    /// fan-out through **one** reused buffer instead of allocating a fresh
    /// vector per candidate engine — the batching half of the cheap-leaf
    /// wall-clock work, alongside the interned
    /// [`JoinKey`](sp_iso::JoinKey)s in the match store.
    pub fn prepare_into(
        &mut self,
        id: QueryId,
        engine: &ContinuousQueryEngine,
        graph: &DynamicGraph,
        edge: &EdgeData,
        cache: &mut EdgeSearchCache,
        out: &mut Vec<Option<LeafFanout>>,
    ) -> bool {
        out.clear();
        let SharedLeafIndex {
            entries,
            subs,
            searches_run,
            searches_shared,
            searches_delegated,
            ..
        } = self;
        let Some(subs) = subs.get(&id) else {
            return false;
        };
        out.reserve(subs.len());
        for sub in subs {
            // Ranks below a shared-join prefix are absent from the
            // subscription list (`subscribe_from`); leave their fan-out
            // slots empty — the engine skips them entirely.
            while out.len() < sub.rank {
                out.push(None);
            }
            debug_assert_eq!(sub.rank, out.len(), "subscriptions are in rank order");
            if !engine.leaf_accepts(sub.rank, edge) {
                out.push(None);
                continue;
            }
            let entry = entries[sub.sig]
                .as_ref()
                .expect("subscription references a live entry");
            if !entry.edge_types.contains(&edge.edge_type) {
                // The edge's type does not occur in the leaf: the anchored
                // search would trivially find nothing. Feed the engine an
                // empty result without touching the cache or the stats.
                out.push(Some(LeafFanout::Prepared(PreparedLeaf {
                    matches: Vec::new(),
                    charged: None,
                    shared: false,
                })));
                continue;
            }
            if entry.subs.len() == 1 {
                // No other query (or leaf) can reuse this search: skip the
                // canonical indirection entirely.
                *searches_delegated += 1;
                out.push(Some(LeafFanout::SearchLocally));
                continue;
            }
            let cached = match cache.searches.entry(sub.sig) {
                Entry::Occupied(o) => o.into_mut(),
                Entry::Vacant(v) => {
                    let t0 = Instant::now();
                    // Reuse a recycled buffer and the cache-owned scratch:
                    // in the steady state (buffers warmed, no matches) the
                    // shared search allocates nothing.
                    let mut matches = cache.spare.pop().unwrap_or_default();
                    find_matches_containing_edge_into(
                        graph,
                        &entry.query,
                        &entry.subgraph,
                        edge,
                        &mut cache.scratch,
                        &mut matches,
                    );
                    let elapsed = t0.elapsed();
                    *searches_run += 1;
                    v.insert(CachedSearch {
                        matches,
                        elapsed,
                        consumed: false,
                    })
                }
            };
            let shared = cached.consumed;
            if shared {
                *searches_shared += 1;
            }
            let charged = if cached.consumed {
                None
            } else {
                Some(cached.elapsed)
            };
            cached.consumed = true;
            let matches = cached
                .matches
                .iter()
                .map(|m| m.remapped(&sub.mapping.vertices, &sub.mapping.edges))
                .collect();
            out.push(Some(LeafFanout::Prepared(PreparedLeaf {
                matches,
                charged,
                shared,
            })));
        }
        true
    }

    /// Interns a signature, materializing the canonical query on first use.
    fn intern(&mut self, sig: LeafSignature, id: QueryId, node: NodeId) -> usize {
        if let Some(&idx) = self.by_sig.get(&sig) {
            let entry = self.entries[idx].as_mut().expect("interned entry is live");
            entry.subs.push((id, node));
            return idx;
        }
        let (query, subgraph) = sig.instantiate("shared-leaf");
        let entry = SigEntry {
            edge_types: sig.edge_types(),
            signature: sig.clone(),
            query,
            subgraph,
            subs: vec![(id, node)],
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Some(entry);
                slot
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        self.by_sig.insert(sig, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use sp_graph::EdgeType;
    use sp_selectivity::SelectivityEstimator;

    fn engine_for(types: &[u32]) -> ContinuousQueryEngine {
        let mut q = QueryGraph::new("q");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, EdgeType(t));
            prev = next;
        }
        ContinuousQueryEngine::new(q, Strategy::Single, &SelectivityEstimator::new(), None).unwrap()
    }

    #[test]
    fn identical_leaves_intern_once_and_drop_with_the_last_subscriber() {
        let mut index = SharedLeafIndex::new();
        // Two queries over the same two edge types share both leaf shapes.
        assert!(index.subscribe(QueryId(0), &engine_for(&[1, 2])));
        assert!(index.subscribe(QueryId(1), &engine_for(&[1, 2])));
        // A third query shares one type and brings one new shape.
        assert!(index.subscribe(QueryId(2), &engine_for(&[2, 9])));
        let stats = index.stats();
        assert_eq!(stats.distinct_leaves, 3);
        assert_eq!(stats.total_subscriptions, 6);
        assert_eq!(stats.shared_queries, 3);

        index.unsubscribe(QueryId(0));
        assert_eq!(index.stats().distinct_leaves, 3, "Q1 still holds both");
        index.unsubscribe(QueryId(1));
        // The type-1 shape lost its last subscriber; type-2 survives via Q2.
        assert_eq!(index.stats().distinct_leaves, 2);
        index.unsubscribe(QueryId(2));
        assert_eq!(index.stats().distinct_leaves, 0);
        assert_eq!(index.stats().total_subscriptions, 0);
    }

    #[test]
    fn vf2_engines_are_not_subscribed() {
        let mut q = QueryGraph::new("vf2");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        let engine = ContinuousQueryEngine::new(
            q,
            Strategy::Vf2Baseline,
            &SelectivityEstimator::new(),
            None,
        )
        .unwrap();
        let mut index = SharedLeafIndex::new();
        assert!(!index.subscribe(QueryId(0), &engine));
        assert!(!index.is_subscribed(QueryId(0)));
    }

    #[test]
    fn subscribers_lists_query_and_node() {
        let mut index = SharedLeafIndex::new();
        let e0 = engine_for(&[4]);
        let e1 = engine_for(&[4]);
        index.subscribe(QueryId(7), &e0);
        index.subscribe(QueryId(9), &e1);
        let tree = e0.tree().unwrap();
        let (sig, _) = canonicalize_subgraph(tree.query(), tree.subgraph(tree.leaf(0))).unwrap();
        let subs = index.subscribers(&sig);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].0, QueryId(7));
        assert_eq!(subs[1].0, QueryId(9));
        assert!(index.contains(&sig));
    }
}
