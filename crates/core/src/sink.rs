//! Pluggable receivers for reported matches.
//!
//! [`StreamProcessor::process_into`](crate::StreamProcessor::process_into)
//! pushes every complete match into a [`MatchSink`] instead of returning an
//! allocated vector, so high-throughput consumers (benchmarks, counters,
//! alert pipelines) can consume matches without per-event allocation.
//!
//! The sink is the **copy-on-emit boundary** of the interned match
//! representation: partial matches live as fixed-width arena rows inside
//! their `MatchStore`s, and only a completion crossing into `on_match` is
//! materialized into the caller-visible [`SubgraphMatch`] form (one decode
//! per reported match, at the root join). Everything a sink receives is an
//! owned, self-contained match — no arena ids or store lifetimes leak past
//! this trait.

use crate::registry::QueryId;
use sp_iso::SubgraphMatch;

/// Receives the complete matches produced while processing stream events.
pub trait MatchSink {
    /// Called once per complete match, with the id of the query it belongs
    /// to.
    fn on_match(&mut self, query: QueryId, m: SubgraphMatch);
}

/// A sink that only counts matches — no allocation per match.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    /// Number of matches received so far.
    pub matches: u64,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchSink for CountSink {
    fn on_match(&mut self, _query: QueryId, _m: SubgraphMatch) {
        self.matches += 1;
    }
}

/// A sink that collects `(query, match)` pairs into a vector.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// The collected matches, in report order.
    pub matches: Vec<(QueryId, SubgraphMatch)>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, yielding the collected matches.
    pub fn into_matches(self) -> Vec<(QueryId, SubgraphMatch)> {
        self.matches
    }
}

impl MatchSink for CollectSink {
    fn on_match(&mut self, query: QueryId, m: SubgraphMatch) {
        self.matches.push((query, m));
    }
}

impl MatchSink for Vec<(QueryId, SubgraphMatch)> {
    fn on_match(&mut self, query: QueryId, m: SubgraphMatch) {
        self.push((query, m));
    }
}

/// Adapts a closure into a [`MatchSink`].
#[derive(Debug)]
pub struct FnSink<F>(pub F);

impl<F: FnMut(QueryId, SubgraphMatch)> MatchSink for FnSink<F> {
    fn on_match(&mut self, query: QueryId, m: SubgraphMatch) {
        (self.0)(query, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_counts() {
        let mut sink = CountSink::new();
        sink.on_match(QueryId(0), SubgraphMatch::new());
        sink.on_match(QueryId(1), SubgraphMatch::new());
        assert_eq!(sink.matches, 2);
    }

    #[test]
    fn collect_sink_collects_in_order() {
        let mut sink = CollectSink::new();
        sink.on_match(QueryId(3), SubgraphMatch::new());
        sink.on_match(QueryId(1), SubgraphMatch::new());
        let matches = sink.into_matches();
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].0, QueryId(3));
        assert_eq!(matches[1].0, QueryId(1));
    }

    #[test]
    fn fn_sink_forwards() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|q: QueryId, _m: SubgraphMatch| seen.push(q));
            sink.on_match(QueryId(7), SubgraphMatch::new());
        }
        assert_eq!(seen, vec![QueryId(7)]);
    }
}
