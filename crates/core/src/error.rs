//! Engine error type.

use sp_sjtree::DecompositionError;
use std::fmt;

/// Errors produced while constructing or driving the continuous query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query graph could not be decomposed (e.g. it has no edges).
    Decomposition(DecompositionError),
    /// The query graph has more leaves than the lazy bitmap supports.
    TooManyLeaves {
        /// Number of leaves in the decomposition.
        leaves: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The query graph must be connected for the VF2 baseline.
    DisconnectedQuery,
    /// A re-decomposition was requested with a strategy that has no SJ-Tree
    /// (the VF2 baseline) or with a tree that does not decompose the
    /// engine's own query.
    RebuildMismatch,
    /// The query id is not (or no longer) registered.
    UnknownQuery,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Decomposition(e) => write!(f, "query decomposition failed: {e}"),
            EngineError::TooManyLeaves { leaves, max } => {
                write!(
                    f,
                    "SJ-Tree has {leaves} leaves, the engine supports at most {max}"
                )
            }
            EngineError::DisconnectedQuery => write!(f, "query graph must be connected"),
            EngineError::RebuildMismatch => write!(
                f,
                "rebuild requires an SJ-Tree strategy and a tree over the same query"
            ),
            EngineError::UnknownQuery => write!(f, "query is not registered"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DecompositionError> for EngineError {
    fn from(e: DecompositionError) -> Self {
        EngineError::Decomposition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = EngineError::from(DecompositionError::EmptyQuery);
        assert!(e.to_string().contains("decomposition failed"));
        let e = EngineError::TooManyLeaves {
            leaves: 70,
            max: 64,
        };
        assert!(e.to_string().contains("70"));
        assert!(EngineError::DisconnectedQuery
            .to_string()
            .contains("connected"));
    }
}
