//! Per-engine profiling counters.
//!
//! Section 6.4 of the paper profiles "the time spent in performing subgraph
//! isomorphism and the time spent in updating the SJ-Tree" and finds the
//! former to dominate (≥ 95%). [`ProfileCounters`] exposes the same split so
//! that the `profile` experiment can reproduce the claim.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters and timers accumulated while an engine processes a stream.
///
/// Every engine owns one instance counting only the edges *dispatched to it*
/// by the edge-type index; `StreamProcessor::profile` additionally reports
/// stream-level counters (events ingested, vertex-type conflicts) aggregated
/// with the engines' counters via [`ProfileCounters::merge`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileCounters {
    /// Number of streaming edges processed. For an engine this counts the
    /// edges dispatched to it; in the processor aggregate it counts events
    /// ingested from the stream.
    pub edges_processed: u64,
    /// Number of stream events whose external vertex id arrived with a type
    /// conflicting with the type already recorded for that vertex (the
    /// original type is kept). Only the stream-level counters track this;
    /// engines never see the conflict.
    pub vertex_type_conflicts: u64,
    /// Number of leaf-level subgraph-isomorphism invocations.
    pub iso_searches: u64,
    /// Number of leaf matches found by those searches.
    pub leaf_matches: u64,
    /// Number of retroactive (vertex-anchored) searches triggered by enabling
    /// a lazy leaf.
    pub retroactive_searches: u64,
    /// Number of searches skipped because the lazy bitmap had them disabled.
    pub searches_skipped: u64,
    /// Number of leaf searches this query did **not** have to run because a
    /// structurally identical leaf had already been searched for this edge
    /// (shared-leaf evaluation): the engine consumed the shared result
    /// instead. Always 0 when sharing is disabled or the engine runs
    /// standalone.
    pub leaf_searches_shared: u64,
    /// Prefix-root matches this query consumed from the shared join stage
    /// (`SharedJoinIndex`) instead of producing them with its own leaf
    /// searches and hash joins. Always 0 when the query is not subscribed
    /// to a shared prefix table.
    pub shared_join_emissions: u64,
    /// Number of dispatched edges on which this query's prefix work (leaf
    /// searches + internal joins for the leading leaves) was served by a
    /// shared prefix table with other live subscribers — i.e. join-stage
    /// work genuinely deduplicated across the registry.
    pub join_stages_shared: u64,
    /// Number of complete query matches reported.
    pub complete_matches: u64,
    /// Number of times the engine's decomposition was swapped for a new
    /// SJ-Tree by drift-triggered re-decomposition
    /// (`ContinuousQueryEngine::rebuild`).
    pub redecompositions: u64,
    /// Anchored + retroactive searches performed while replaying the
    /// retained graph during re-decompositions. Kept separate from
    /// [`ProfileCounters::iso_searches`] /
    /// [`ProfileCounters::retroactive_searches`] so the steady-state stream
    /// cost of a plan and the one-off cost of switching plans stay
    /// individually visible (the `drift` benchmark reports both).
    pub replay_searches: u64,
    /// Wall time spent inside re-decomposition replays (isomorphism and
    /// store updates), likewise kept out of
    /// [`ProfileCounters::iso_time`] / [`ProfileCounters::update_time`].
    #[serde(with = "duration_nanos")]
    pub replay_time: Duration,
    /// Number of partial matches purged (window expiry).
    pub partial_matches_purged: u64,
    /// Wall time spent inside subgraph isomorphism.
    #[serde(with = "duration_nanos")]
    pub iso_time: Duration,
    /// Wall time spent updating the SJ-Tree (hash probes, joins, inserts).
    #[serde(with = "duration_nanos")]
    pub update_time: Duration,
    /// Peak number of partial matches stored at any point.
    pub peak_partial_matches: usize,
}

impl ProfileCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of the measured time spent in subgraph isomorphism
    /// (`NaN`-free: returns 0 when nothing was measured).
    pub fn iso_time_fraction(&self) -> f64 {
        let total = self.iso_time.as_secs_f64() + self.update_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.iso_time.as_secs_f64() / total
        }
    }

    /// Records a new partial-match population and updates the peak.
    pub fn note_partial_matches(&mut self, live: usize) {
        if live > self.peak_partial_matches {
            self.peak_partial_matches = live;
        }
    }

    /// Adds `other`'s counters and timers into `self`. Peaks are summed: the
    /// aggregate reports an upper bound of the simultaneous partial-match
    /// population across engines.
    pub fn merge(&mut self, other: &ProfileCounters) {
        self.edges_processed += other.edges_processed;
        self.vertex_type_conflicts += other.vertex_type_conflicts;
        self.iso_searches += other.iso_searches;
        self.leaf_matches += other.leaf_matches;
        self.retroactive_searches += other.retroactive_searches;
        self.searches_skipped += other.searches_skipped;
        self.leaf_searches_shared += other.leaf_searches_shared;
        self.shared_join_emissions += other.shared_join_emissions;
        self.join_stages_shared += other.join_stages_shared;
        self.complete_matches += other.complete_matches;
        self.redecompositions += other.redecompositions;
        self.replay_searches += other.replay_searches;
        self.replay_time += other.replay_time;
        self.partial_matches_purged += other.partial_matches_purged;
        self.iso_time += other.iso_time;
        self.update_time += other.update_time;
        self.peak_partial_matches += other.peak_partial_matches;
    }
}

/// Serialize `Duration` as integer **nanoseconds** so profiles are readable
/// in JSON experiment output at full precision (sub-microsecond engine spans
/// used to round to 0). The field names are unchanged, so historical
/// `BENCH_*.json` files still diff structurally; only the unit moved.
mod duration_nanos {
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_nanos() as u64)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let nanos = u64::deserialize(d)?;
        Ok(Duration::from_nanos(nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_fraction_handles_zero() {
        let p = ProfileCounters::new();
        assert_eq!(p.iso_time_fraction(), 0.0);
    }

    #[test]
    fn iso_fraction_is_ratio() {
        let mut p = ProfileCounters::new();
        p.iso_time = Duration::from_millis(95);
        p.update_time = Duration::from_millis(5);
        assert!((p.iso_time_fraction() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn peak_tracking() {
        let mut p = ProfileCounters::new();
        p.note_partial_matches(10);
        p.note_partial_matches(3);
        p.note_partial_matches(25);
        assert_eq!(p.peak_partial_matches, 25);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ProfileCounters::new();
        a.edges_processed = 5;
        a.iso_searches = 2;
        a.vertex_type_conflicts = 1;
        a.iso_time = Duration::from_micros(10);
        a.peak_partial_matches = 4;
        let mut b = ProfileCounters::new();
        b.edges_processed = 7;
        b.iso_searches = 3;
        b.iso_time = Duration::from_micros(5);
        b.peak_partial_matches = 2;
        a.merge(&b);
        assert_eq!(a.edges_processed, 12);
        assert_eq!(a.iso_searches, 5);
        assert_eq!(a.vertex_type_conflicts, 1);
        assert_eq!(a.iso_time, Duration::from_micros(15));
        assert_eq!(a.peak_partial_matches, 6);
    }

    #[test]
    fn serde_roundtrip_keeps_durations() {
        let mut p = ProfileCounters::new();
        p.iso_time = Duration::from_micros(1234);
        p.update_time = Duration::from_micros(56);
        p.replay_time = Duration::from_nanos(789); // sub-microsecond survives
        p.edges_processed = 9;
        let json = serde_json::to_string(&p).unwrap();
        let back: ProfileCounters = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iso_time, Duration::from_micros(1234));
        assert_eq!(back.update_time, Duration::from_micros(56));
        assert_eq!(back.replay_time, Duration::from_nanos(789));
        assert_eq!(back.edges_processed, 9);
    }

    #[test]
    fn durations_serialize_as_integer_nanoseconds() {
        let mut p = ProfileCounters::new();
        p.iso_time = Duration::from_micros(3);
        let json = serde_json::to_string(&p).unwrap();
        // Same field name as before, integer value, nanosecond unit.
        assert!(json.contains("\"iso_time\":3000"), "json: {json}");
        assert!(json.contains("\"update_time\":0"), "json: {json}");
    }
}
