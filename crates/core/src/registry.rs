//! The multi-query registry and its edge-type dispatch index.
//!
//! The paper's deployment story (StreamWorks) is a monitoring system where
//! many continuous queries watch one edge stream. [`QueryRegistry`] owns one
//! [`ContinuousQueryEngine`] per registered query and maintains an
//! *edge-type → candidate queries* index so that an incoming edge is only
//! handed to the engines whose query contains that edge's type — every other
//! engine provably never sees the edge (its
//! [`ProfileCounters::edges_processed`](crate::ProfileCounters) stays put).
//! Skipping is sound: a leaf search anchored at an edge whose type occurs
//! nowhere in the query can neither produce a leaf match nor enable a lazy
//! search, and the VF2 baseline only reports embeddings that use the new
//! edge.

use crate::engine::{ContinuousQueryEngine, LeafFanout};
use crate::metrics::PipelineMetrics;
use crate::sharedjoin::{JoinSubscription, SharedJoinIndex, SharedJoinStats};
use crate::sharing::{EdgeSearchCache, SharedLeafIndex, SharedLeafStats};
use crate::strategy::Strategy;
use sp_graph::{DynamicGraph, EdgeData, EdgeType};
use sp_iso::SubgraphMatch;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Instant;

/// Stable identifier of a registered continuous query. Ids are never reused,
/// even after the query is deregistered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// How a query's execution strategy is chosen at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// Use the given strategy as-is.
    Fixed(Strategy),
    /// Choose between `SingleLazy` and `PathLazy` with the Relative
    /// Selectivity rule of Section 6.5, evaluated against the stream
    /// statistics the processor has collected so far.
    Auto,
}

impl From<Strategy> for StrategySpec {
    fn from(s: Strategy) -> Self {
        StrategySpec::Fixed(s)
    }
}

/// Owns the engines of all registered queries plus the edge-type dispatch
/// index and the shared-leaf index over them.
#[derive(Debug, Clone)]
pub struct QueryRegistry {
    /// Engines by query id; a `BTreeMap` keeps iteration (and therefore match
    /// reporting) in registration order.
    engines: BTreeMap<QueryId, ContinuousQueryEngine>,
    /// Edge type → queries whose pattern contains an edge of that type.
    dispatch: HashMap<EdgeType, Vec<QueryId>>,
    /// Canonical leaf shape → subscribers; deduplicates the anchored leaf
    /// searches across queries (see [`crate::SharedLeafIndex`]).
    shared: SharedLeafIndex,
    /// Canonical SJ-Tree prefix → refcounted shared partial-match table;
    /// deduplicates the join stage across queries with common decomposition
    /// prefixes (see [`crate::SharedJoinIndex`]).
    join: SharedJoinIndex,
    /// Whether dispatched edges go through the shared leaf-search stage
    /// (default) or every engine re-runs its own searches.
    sharing: bool,
    /// Whether *newly registered* queries may additionally share their join
    /// stage (default). Unlike the stateless leaf stage this is a
    /// registration-time property: a subscribed query's prefix state lives
    /// in the shared table, so subscriptions are never toggled mid-stream.
    join_sharing: bool,
    /// Reusable fan-out buffer for the shared leaf-search stage: one
    /// allocation serves every candidate engine of every edge instead of a
    /// fresh vector per engine per edge.
    fanout: Vec<Option<LeafFanout>>,
    /// Registry-owned per-edge memo for the shared leaf-search stage,
    /// *reset* (not reconstructed) per edge so its map table, match buffers
    /// and search scratch keep their capacity across the stream.
    cache: EdgeSearchCache,
    /// Reusable buffer for each engine's complete matches; drained into
    /// `emit` per engine.
    complete: Vec<SubgraphMatch>,
    /// Whether the per-edge hot path reuses warmed-up scratch capacity
    /// (default). Disabling releases every engine's scratch and the edge
    /// cache after each edge — the algorithm is identical, only the
    /// allocator traffic differs (the equivalence tests run both).
    scratch_reuse: bool,
    /// Whether partial-match stores — every engine's and every shared
    /// prefix table's — intern matches as fixed-width arena rows (default)
    /// or keep materialized buckets. The registry is authoritative:
    /// registration applies the flag to the incoming engine, and toggling
    /// converts all live state in place. Match output is identical either
    /// way (the equivalence tests run both); only allocator traffic and
    /// store memory differ.
    match_interning: bool,
    /// The next subscription boundary: one past the id of the last
    /// processed edge. A query registered now is entitled to matches
    /// anchored at edge ids `>= boundary` (see the shared-join module docs).
    boundary: u64,
    /// Each live query's original registration boundary, preserved across
    /// drift-driven re-subscriptions.
    origins: HashMap<QueryId, u64>,
    next_id: u64,
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self {
            engines: BTreeMap::new(),
            dispatch: HashMap::new(),
            shared: SharedLeafIndex::new(),
            join: SharedJoinIndex::new(),
            sharing: true,
            join_sharing: true,
            fanout: Vec::new(),
            cache: EdgeSearchCache::new(),
            complete: Vec::new(),
            scratch_reuse: true,
            match_interning: true,
            boundary: 0,
            origins: HashMap::new(),
            next_id: 0,
        }
    }
}

impl QueryRegistry {
    /// Creates an empty registry (shared-leaf evaluation enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables shared-leaf evaluation. Disabling reverts to the
    /// per-engine search path (each engine re-runs its own anchored leaf
    /// searches); the reported match multiset is identical either way.
    /// Queries registered while sharing is off still subscribe, so sharing
    /// can be toggled back on at any time.
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sharing = enabled;
    }

    /// Whether shared-leaf evaluation is active.
    pub fn sharing_enabled(&self) -> bool {
        self.sharing
    }

    /// Enables or disables scratch reuse on the per-edge hot path (enabled
    /// by default). With reuse off, every engine's search scratch and the
    /// registry's edge cache are released after each edge, so each edge
    /// starts allocation-cold. Match output is identical either way — this
    /// knob exists for allocation accounting and the equivalence tests.
    pub fn set_scratch_reuse(&mut self, enabled: bool) {
        self.scratch_reuse = enabled;
    }

    /// Whether the per-edge hot path retains warmed-up scratch capacity.
    pub fn scratch_reuse_enabled(&self) -> bool {
        self.scratch_reuse
    }

    /// Switches every partial-match store the registry reaches — each
    /// engine's and each shared prefix table's — between the interned
    /// (fixed-width arena row, default) and materialized representations,
    /// converting live state in place; engines registered later adopt the
    /// flag at registration. Reported matches are identical either way —
    /// this knob exists for allocation accounting and the equivalence
    /// tests.
    pub fn set_match_interning(&mut self, enabled: bool) {
        self.match_interning = enabled;
        for engine in self.engines.values_mut() {
            engine.set_match_interning(enabled);
        }
        self.join.set_match_interning(enabled);
    }

    /// Whether partial matches are stored as interned arena rows.
    pub fn match_interning_enabled(&self) -> bool {
        self.match_interning
    }

    /// Total partial matches ever stored across every live engine and
    /// shared prefix table — the denominator of the soak's
    /// `alloc.allocs_per_match`.
    pub fn stored_matches(&self) -> u64 {
        self.engines
            .values()
            .map(ContinuousQueryEngine::stored_matches)
            .sum::<u64>()
            + self.join.lifetime_stored()
    }

    /// Snapshot of the shared-leaf index bookkeeping (distinct shapes,
    /// subscriptions, searches run vs eliminated).
    pub fn shared_leaf_stats(&self) -> SharedLeafStats {
        self.shared.stats()
    }

    /// Read access to the shared-leaf index (residency queries for
    /// sharing-aware cost estimates).
    pub fn shared_leaves(&self) -> &SharedLeafIndex {
        &self.shared
    }

    /// Enables or disables shared-join subscription for *future*
    /// registrations (enabled by default). Queries already subscribed to a
    /// prefix table keep running through it — their prefix state lives in
    /// the shared table and cannot be toggled statelessly the way the leaf
    /// stage can.
    pub fn set_join_sharing(&mut self, enabled: bool) {
        self.join_sharing = enabled;
    }

    /// Whether new registrations may share their join stage.
    pub fn join_sharing_enabled(&self) -> bool {
        self.join_sharing
    }

    /// Switches the shared join stage between the trie policy (default:
    /// nesting prefixes link parent→child and share storage) and the flat
    /// PR 5 policy (independent tables) for *future* subscriptions. Like
    /// [`QueryRegistry::set_join_sharing`], a registration-time property.
    pub fn set_join_trie(&mut self, enabled: bool) {
        self.join.set_trie(enabled);
    }

    /// Whether the shared join stage links nesting prefixes into a trie.
    pub fn join_trie_enabled(&self) -> bool {
        self.join.trie_enabled()
    }

    /// Snapshot of the shared join stage bookkeeping (live tables,
    /// subscriptions, work run vs saved).
    pub fn shared_join_stats(&self) -> SharedJoinStats {
        self.join.stats()
    }

    /// Read access to the shared join index (residency queries for
    /// sharing-aware cost estimates).
    pub fn shared_joins(&self) -> &SharedJoinIndex {
        &self.join
    }

    /// Registers an engine, indexing it under every edge type its query
    /// uses and subscribing its leaves to the shared-leaf index. Returns the
    /// new query's id.
    ///
    /// This path never enables shared-**join** evaluation (subscribing a
    /// prefix table may need to back-fill it from the data graph, which the
    /// registry does not own); callers with a graph at hand — the
    /// [`StreamProcessor`](crate::StreamProcessor) — use
    /// [`QueryRegistry::register_shared`].
    pub fn register(&mut self, mut engine: ContinuousQueryEngine) -> QueryId {
        // The registry's representation choice is authoritative; an engine
        // built elsewhere converts (usually a no-op — both default on).
        engine.set_match_interning(self.match_interning);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        for edge_type in query_edge_types(&engine) {
            let slot = self.dispatch.entry(edge_type).or_default();
            if !slot.contains(&id) {
                slot.push(id);
            }
        }
        self.shared.subscribe(id, &engine);
        self.origins.insert(id, self.boundary);
        self.engines.insert(id, engine);
        id
    }

    /// Like [`QueryRegistry::register`], additionally subscribing the query
    /// to the shared join stage when enabled: its decomposition's canonical
    /// prefix chain is matched against the live tables and the other
    /// registered chains, possibly creating a new refcounted table and
    /// migrating previously private partners onto it (see
    /// [`crate::SharedJoinIndex`]). `graph` is the shared data graph,
    /// needed to back-fill tables for subscribers entitled to retained
    /// history.
    pub fn register_shared(
        &mut self,
        engine: ContinuousQueryEngine,
        graph: &DynamicGraph,
    ) -> QueryId {
        let id = self.register(engine);
        if self.sharing && self.join_sharing {
            self.subscribe_join(id, graph);
        }
        id
    }

    /// Runs the shared-join subscription policy for one query (newly
    /// registered or freshly re-decomposed), narrowing its leaf-stage
    /// subscription to the suffix leaves on success and migrating any
    /// partners the policy pulled in.
    fn subscribe_join(&mut self, id: QueryId, graph: &DynamicGraph) {
        let Some(engine) = self.engines.get(&id) else {
            return;
        };
        let boundary = self.origins.get(&id).copied().unwrap_or(self.boundary);
        let outcome = self
            .join
            .subscribe(id, engine, boundary, self.boundary, graph);
        let JoinSubscription::Shared { depth, migrations } = outcome else {
            return;
        };
        self.adopt_join_subscription(id, depth);
        for partner in migrations {
            let Some(partner_engine) = self.engines.get(&partner) else {
                continue;
            };
            let partner_boundary = self.origins.get(&partner).copied().unwrap_or(self.boundary);
            if let Some(partner_depth) =
                self.join
                    .attach_partner(partner, partner_engine, partner_boundary, graph)
            {
                self.adopt_join_subscription(partner, partner_depth);
            }
        }
    }

    /// Switches one engine onto its shared prefix: drop the (now redundant)
    /// private prefix tables and narrow the leaf-stage subscription to the
    /// suffix leaves.
    fn adopt_join_subscription(&mut self, id: QueryId, depth: usize) {
        let engine = self.engines.get_mut(&id).expect("subscribed engine exists");
        engine.clear_prefix_state(depth);
        self.shared.unsubscribe(id);
        self.shared.subscribe_from(id, engine, depth);
    }

    /// Removes a query, returning its engine (with all its runtime state) or
    /// `None` for an unknown id. The dispatch index drops the query from
    /// every edge-type slot, and the shared-leaf index drops shapes whose
    /// last subscriber left.
    pub fn deregister(&mut self, id: QueryId) -> Option<ContinuousQueryEngine> {
        let engine = self.engines.remove(&id)?;
        self.dispatch.retain(|_, ids| {
            ids.retain(|&q| q != id);
            !ids.is_empty()
        });
        self.shared.unsubscribe(id);
        self.join.unsubscribe(id);
        self.origins.remove(&id);
        Some(engine)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The engine of a query.
    pub fn engine(&self, id: QueryId) -> Option<&ContinuousQueryEngine> {
        self.engines.get(&id)
    }

    /// Mutable access to the engine of a query.
    pub fn engine_mut(&mut self, id: QueryId) -> Option<&mut ContinuousQueryEngine> {
        self.engines.get_mut(&id)
    }

    /// Iterates over `(id, engine)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &ContinuousQueryEngine)> + '_ {
        self.engines.iter().map(|(&id, e)| (id, e))
    }

    /// Iterates mutably over `(id, engine)` pairs in registration order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (QueryId, &mut ContinuousQueryEngine)> + '_ {
        self.engines.iter_mut().map(|(&id, e)| (id, e))
    }

    /// Ids of all registered queries, in registration order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.engines.keys().copied()
    }

    /// The queries whose pattern contains the given edge type (the dispatch
    /// index lookup). The slice is in registration order.
    pub fn candidates(&self, edge_type: EdgeType) -> &[QueryId] {
        self.dispatch
            .get(&edge_type)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The graph retention window implied by the registered queries (see
    /// [`retention_for_windows`]): the maximum `tW` across engines, or
    /// `None` (retain everything) when any engine is unwindowed or the
    /// registry is empty. Individual engines still purge and filter with
    /// their own, possibly smaller, window.
    pub fn graph_retention(&self) -> Option<u64> {
        retention_for_windows(self.engines.values().map(|e| e.window()))
    }

    /// Dispatches one new edge (already inserted into `graph`) to every
    /// candidate engine and forwards the complete matches to `emit`. Returns
    /// the number of matches reported.
    ///
    /// With sharing enabled this is the three-stage pipeline: the shared
    /// **join** stage advances each live canonical prefix table once for
    /// the edge and fans the rebased prefix-root matches into each
    /// subscriber; the shared **leaf** stage runs each distinct canonical
    /// leaf search once and fans the rebased matches into each subscriber's
    /// private join stage; engines that cannot share (VF2 baseline,
    /// oversized leaves) and the sharing-off path run their private
    /// searches instead.
    pub fn process_edge(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        emit: impl FnMut(QueryId, SubgraphMatch),
    ) -> u64 {
        self.process_edge_inner(graph, edge, emit, None)
    }

    /// [`QueryRegistry::process_edge`] with per-stage timing spans recorded
    /// into `metrics` (`stage.dispatch_ns`, `stage.shared_join_ns`,
    /// `stage.shared_leaf_ns`, `stage.private_engine_ns`, `stage.emit_ns`).
    /// The processor routes here when metrics are attached; the untimed path
    /// reads no clock at all.
    pub fn process_edge_timed(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        emit: impl FnMut(QueryId, SubgraphMatch),
        metrics: &PipelineMetrics,
    ) -> u64 {
        self.process_edge_inner(graph, edge, emit, Some(metrics))
    }

    fn process_edge_inner(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        mut emit: impl FnMut(QueryId, SubgraphMatch),
        metrics: Option<&PipelineMetrics>,
    ) -> u64 {
        // Edge ids are monotone in arrival order; one past the newest edge
        // is the boundary recorded for queries registered from now on.
        self.boundary = self.boundary.max(edge.id.0 + 1);
        let QueryRegistry {
            engines,
            dispatch,
            shared,
            join,
            sharing,
            fanout,
            cache,
            complete,
            scratch_reuse,
            ..
        } = self;
        let span = metrics.map(|_| Instant::now());
        let ids = dispatch.get(&edge.edge_type);
        if let (Some(m), Some(t)) = (metrics, span) {
            m.dispatch_ns.add(t.elapsed().as_nanos() as u64);
        }
        let Some(ids) = ids else {
            return 0;
        };
        let mut reported = 0;
        // Reset the registry-owned per-edge memo in place: the map table,
        // the recycled match buffers and the anchored-search scratch keep
        // their capacity from previous edges.
        cache.begin_edge();
        // Stage 0: advance every shared prefix table this edge can touch —
        // one search-and-join pass per table, not per subscriber. Runs
        // independently of the leaf-stage toggle: a subscribed query's
        // prefix state lives here.
        let span = metrics.map(|_| Instant::now());
        join.advance_edge(graph, edge);
        if let (Some(m), Some(t)) = (metrics, span) {
            m.shared_join_ns.add(t.elapsed().as_nanos() as u64);
        }
        for &id in ids {
            let engine = engines
                .get_mut(&id)
                .expect("dispatch index only references live queries");
            // The per-subscriber fan-out of the shared prefix tables is
            // stage-0 work too, so its span joins `shared_join_ns`.
            let span = metrics.map(|_| Instant::now());
            let mut feed = join.feed_for(id, edge);
            if let (Some(m), Some(t)) = (metrics, span) {
                m.shared_join_ns.add(t.elapsed().as_nanos() as u64);
            }
            let span = metrics.map(|_| Instant::now());
            let prepared = *sharing && shared.prepare_into(id, engine, graph, edge, cache, fanout);
            if let (Some(m), Some(t)) = (metrics, span) {
                m.shared_leaf_ns.add(t.elapsed().as_nanos() as u64);
            }
            let span = metrics.map(|_| Instant::now());
            match (prepared, feed.as_mut()) {
                (true, feed) => {
                    engine.process_edge_shared_into(graph, edge, Some(fanout), feed, complete)
                }
                (false, Some(feed)) => {
                    engine.process_edge_shared_into(graph, edge, None, Some(feed), complete)
                }
                (false, None) => engine.process_edge_shared_into(graph, edge, None, None, complete),
            };
            if let Some(feed) = feed {
                // The engine drained the feed; its emission buffer goes
                // back to the shared join stage's pool.
                join.recycle_feed(feed);
            }
            if let (Some(m), Some(t)) = (metrics, span) {
                m.private_engine_ns.add(t.elapsed().as_nanos() as u64);
            }
            let span = metrics.map(|_| Instant::now());
            for m in complete.drain(..) {
                reported += 1;
                emit(id, m);
            }
            if let (Some(m), Some(t)) = (metrics, span) {
                m.emit_ns.add(t.elapsed().as_nanos() as u64);
            }
        }
        fanout.clear();
        if !*scratch_reuse {
            // Allocation-cold mode: hand every warmed buffer back after the
            // edge, so the next edge starts from scratch. Output-identical —
            // used by the equivalence tests and for memory accounting.
            cache.release();
            for &id in ids {
                engines
                    .get_mut(&id)
                    .expect("dispatch index only references live queries")
                    .release_scratch();
            }
        }
        reported
    }

    /// Re-registers a query's shapes with both shared stages after its
    /// engine was re-decomposed: the old leaf subscriptions are dropped
    /// (shapes whose last subscriber left are evicted), the old prefix
    /// subscription is dropped (a table whose last subscriber left is
    /// evicted — drift moves prefix refcounts exactly like leaf refcounts),
    /// and the engine's *current* decomposition is re-subscribed in their
    /// place with its **original** registration boundary, so the rebuilt
    /// engine keeps seeing exactly the matches a never-rebuilt one would.
    /// Returns whether the query is on a shared leaf path afterwards
    /// (`false` for unknown ids and engines that cannot share). The
    /// dispatch index needs no update — re-decomposition never changes the
    /// query's edge types.
    pub fn resubscribe(&mut self, id: QueryId, graph: &DynamicGraph) -> bool {
        let Some(engine) = self.engines.get(&id) else {
            return false;
        };
        self.shared.unsubscribe(id);
        self.join.unsubscribe(id);
        let ok = self.shared.subscribe(id, engine);
        if self.sharing && self.join_sharing {
            self.subscribe_join(id, graph);
        }
        ok
    }

    /// Clears all shared-stage runtime state (prefix-table contents,
    /// subscription boundaries, the stream-position counter) while keeping
    /// the registered queries and their subscriptions, so the registry can
    /// replay another stream from scratch. The processor's
    /// [`reset`](crate::StreamProcessor::reset) calls this alongside
    /// resetting every engine.
    pub fn reset_shared_state(&mut self) {
        self.boundary = 0;
        for origin in self.origins.values_mut() {
            *origin = 0;
        }
        self.join.reset();
    }

    /// Runs every engine's and every shared prefix table's purge pass
    /// against the current graph. Returns the total number of partial
    /// matches dropped.
    pub fn purge(&mut self, graph: &DynamicGraph) -> usize {
        let engines: usize = self.engines.values_mut().map(|e| e.purge(graph)).sum();
        engines + self.join.purge(graph)
    }
}

/// The graph retention window implied by a set of per-query windows: the
/// maximum `tW`, or `None` (retain everything) when any window is `None` or
/// the set is empty. This is the single encoding of the retention rule,
/// shared by [`QueryRegistry::graph_retention`] and the parallel runtime's
/// global-retention broadcast — the sequential-equivalence guarantee depends
/// on both sides computing it identically.
pub fn retention_for_windows<I>(windows: I) -> Option<u64>
where
    I: IntoIterator<Item = Option<u64>>,
{
    let mut max = 0u64;
    let mut any = false;
    for window in windows {
        match window {
            None => return None,
            Some(w) => {
                any = true;
                max = max.max(w);
            }
        }
    }
    if any {
        Some(max)
    } else {
        None
    }
}

/// Distinct edge types used by an engine's query.
fn query_edge_types(engine: &ContinuousQueryEngine) -> Vec<EdgeType> {
    let mut types: Vec<EdgeType> = engine.query().edges().map(|e| e.edge_type).collect();
    types.sort_unstable();
    types.dedup();
    types
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_query::QueryGraph;
    use sp_selectivity::SelectivityEstimator;

    fn engine_for(types: &[EdgeType], window: Option<u64>) -> ContinuousQueryEngine {
        let mut q = QueryGraph::new("q");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t);
            prev = next;
        }
        let est = SelectivityEstimator::new();
        ContinuousQueryEngine::new(q, Strategy::SingleLazy, &est, window).unwrap()
    }

    #[test]
    fn dispatch_index_tracks_registered_edge_types() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0), EdgeType(1)], None));
        let b = reg.register(engine_for(&[EdgeType(1), EdgeType(2)], None));
        assert_eq!(reg.candidates(EdgeType(0)), &[a]);
        assert_eq!(reg.candidates(EdgeType(1)), &[a, b]);
        assert_eq!(reg.candidates(EdgeType(2)), &[b]);
        assert!(reg.candidates(EdgeType(9)).is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn deregister_removes_dispatch_entries() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0), EdgeType(1)], None));
        let b = reg.register(engine_for(&[EdgeType(1)], None));
        assert!(reg.deregister(a).is_some());
        assert!(reg.candidates(EdgeType(0)).is_empty());
        assert_eq!(reg.candidates(EdgeType(1)), &[b]);
        assert!(reg.deregister(a).is_none(), "double deregister");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0)], None));
        reg.deregister(a);
        let b = reg.register(engine_for(&[EdgeType(0)], None));
        assert_ne!(a, b);
    }

    #[test]
    fn graph_retention_is_max_window() {
        let mut reg = QueryRegistry::new();
        assert_eq!(reg.graph_retention(), None);
        reg.register(engine_for(&[EdgeType(0)], Some(10)));
        assert_eq!(reg.graph_retention(), Some(10));
        let wide = reg.register(engine_for(&[EdgeType(1)], Some(500)));
        assert_eq!(reg.graph_retention(), Some(500));
        reg.register(engine_for(&[EdgeType(2)], None));
        assert_eq!(reg.graph_retention(), None);
        reg.deregister(wide);
        assert_eq!(reg.graph_retention(), None);
    }

    #[test]
    fn retention_rule_helper_matches_registry_semantics() {
        assert_eq!(retention_for_windows([]), None);
        assert_eq!(retention_for_windows([Some(10)]), Some(10));
        assert_eq!(retention_for_windows([Some(10), Some(500)]), Some(500));
        assert_eq!(retention_for_windows([Some(10), None]), None);
    }

    #[test]
    fn duplicate_edge_types_in_one_query_index_once() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(3), EdgeType(3)], None));
        assert_eq!(reg.candidates(EdgeType(3)), &[a]);
    }
}
