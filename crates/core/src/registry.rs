//! The multi-query registry and its edge-type dispatch index.
//!
//! The paper's deployment story (StreamWorks) is a monitoring system where
//! many continuous queries watch one edge stream. [`QueryRegistry`] owns one
//! [`ContinuousQueryEngine`] per registered query and maintains an
//! *edge-type → candidate queries* index so that an incoming edge is only
//! handed to the engines whose query contains that edge's type — every other
//! engine provably never sees the edge (its
//! [`ProfileCounters::edges_processed`](crate::ProfileCounters) stays put).
//! Skipping is sound: a leaf search anchored at an edge whose type occurs
//! nowhere in the query can neither produce a leaf match nor enable a lazy
//! search, and the VF2 baseline only reports embeddings that use the new
//! edge.

use crate::engine::{ContinuousQueryEngine, LeafFanout};
use crate::sharing::{EdgeSearchCache, SharedLeafIndex, SharedLeafStats};
use crate::strategy::Strategy;
use sp_graph::{DynamicGraph, EdgeData, EdgeType};
use sp_iso::SubgraphMatch;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Stable identifier of a registered continuous query. Ids are never reused,
/// even after the query is deregistered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// How a query's execution strategy is chosen at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// Use the given strategy as-is.
    Fixed(Strategy),
    /// Choose between `SingleLazy` and `PathLazy` with the Relative
    /// Selectivity rule of Section 6.5, evaluated against the stream
    /// statistics the processor has collected so far.
    Auto,
}

impl From<Strategy> for StrategySpec {
    fn from(s: Strategy) -> Self {
        StrategySpec::Fixed(s)
    }
}

/// Owns the engines of all registered queries plus the edge-type dispatch
/// index and the shared-leaf index over them.
#[derive(Debug, Clone)]
pub struct QueryRegistry {
    /// Engines by query id; a `BTreeMap` keeps iteration (and therefore match
    /// reporting) in registration order.
    engines: BTreeMap<QueryId, ContinuousQueryEngine>,
    /// Edge type → queries whose pattern contains an edge of that type.
    dispatch: HashMap<EdgeType, Vec<QueryId>>,
    /// Canonical leaf shape → subscribers; deduplicates the anchored leaf
    /// searches across queries (see [`crate::SharedLeafIndex`]).
    shared: SharedLeafIndex,
    /// Whether dispatched edges go through the shared leaf-search stage
    /// (default) or every engine re-runs its own searches.
    sharing: bool,
    /// Reusable fan-out buffer for the shared leaf-search stage: one
    /// allocation serves every candidate engine of every edge instead of a
    /// fresh vector per engine per edge.
    fanout: Vec<Option<LeafFanout>>,
    next_id: u64,
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self {
            engines: BTreeMap::new(),
            dispatch: HashMap::new(),
            shared: SharedLeafIndex::new(),
            sharing: true,
            fanout: Vec::new(),
            next_id: 0,
        }
    }
}

impl QueryRegistry {
    /// Creates an empty registry (shared-leaf evaluation enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables shared-leaf evaluation. Disabling reverts to the
    /// per-engine search path (each engine re-runs its own anchored leaf
    /// searches); the reported match multiset is identical either way.
    /// Queries registered while sharing is off still subscribe, so sharing
    /// can be toggled back on at any time.
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sharing = enabled;
    }

    /// Whether shared-leaf evaluation is active.
    pub fn sharing_enabled(&self) -> bool {
        self.sharing
    }

    /// Snapshot of the shared-leaf index bookkeeping (distinct shapes,
    /// subscriptions, searches run vs eliminated).
    pub fn shared_leaf_stats(&self) -> SharedLeafStats {
        self.shared.stats()
    }

    /// Read access to the shared-leaf index (residency queries for
    /// sharing-aware cost estimates).
    pub fn shared_leaves(&self) -> &SharedLeafIndex {
        &self.shared
    }

    /// Registers an engine, indexing it under every edge type its query
    /// uses and subscribing its leaves to the shared-leaf index. Returns the
    /// new query's id.
    pub fn register(&mut self, engine: ContinuousQueryEngine) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        for edge_type in query_edge_types(&engine) {
            let slot = self.dispatch.entry(edge_type).or_default();
            if !slot.contains(&id) {
                slot.push(id);
            }
        }
        self.shared.subscribe(id, &engine);
        self.engines.insert(id, engine);
        id
    }

    /// Removes a query, returning its engine (with all its runtime state) or
    /// `None` for an unknown id. The dispatch index drops the query from
    /// every edge-type slot, and the shared-leaf index drops shapes whose
    /// last subscriber left.
    pub fn deregister(&mut self, id: QueryId) -> Option<ContinuousQueryEngine> {
        let engine = self.engines.remove(&id)?;
        self.dispatch.retain(|_, ids| {
            ids.retain(|&q| q != id);
            !ids.is_empty()
        });
        self.shared.unsubscribe(id);
        Some(engine)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The engine of a query.
    pub fn engine(&self, id: QueryId) -> Option<&ContinuousQueryEngine> {
        self.engines.get(&id)
    }

    /// Mutable access to the engine of a query.
    pub fn engine_mut(&mut self, id: QueryId) -> Option<&mut ContinuousQueryEngine> {
        self.engines.get_mut(&id)
    }

    /// Iterates over `(id, engine)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &ContinuousQueryEngine)> + '_ {
        self.engines.iter().map(|(&id, e)| (id, e))
    }

    /// Iterates mutably over `(id, engine)` pairs in registration order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (QueryId, &mut ContinuousQueryEngine)> + '_ {
        self.engines.iter_mut().map(|(&id, e)| (id, e))
    }

    /// Ids of all registered queries, in registration order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.engines.keys().copied()
    }

    /// The queries whose pattern contains the given edge type (the dispatch
    /// index lookup). The slice is in registration order.
    pub fn candidates(&self, edge_type: EdgeType) -> &[QueryId] {
        self.dispatch
            .get(&edge_type)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The graph retention window implied by the registered queries (see
    /// [`retention_for_windows`]): the maximum `tW` across engines, or
    /// `None` (retain everything) when any engine is unwindowed or the
    /// registry is empty. Individual engines still purge and filter with
    /// their own, possibly smaller, window.
    pub fn graph_retention(&self) -> Option<u64> {
        retention_for_windows(self.engines.values().map(|e| e.window()))
    }

    /// Dispatches one new edge (already inserted into `graph`) to every
    /// candidate engine and forwards the complete matches to `emit`. Returns
    /// the number of matches reported.
    ///
    /// With sharing enabled this is the two-stage pipeline: the shared
    /// leaf-search stage runs each distinct canonical leaf search **once**
    /// for the edge and fans the rebased matches into each subscriber's
    /// join stage; engines that cannot share (VF2 baseline, oversized
    /// leaves) and the sharing-off path run their private searches instead.
    pub fn process_edge(
        &mut self,
        graph: &DynamicGraph,
        edge: &EdgeData,
        mut emit: impl FnMut(QueryId, SubgraphMatch),
    ) -> u64 {
        let QueryRegistry {
            engines,
            dispatch,
            shared,
            sharing,
            fanout,
            ..
        } = self;
        let Some(ids) = dispatch.get(&edge.edge_type) else {
            return 0;
        };
        let mut reported = 0;
        let mut cache = EdgeSearchCache::new();
        for &id in ids {
            let engine = engines
                .get_mut(&id)
                .expect("dispatch index only references live queries");
            let prepared =
                *sharing && shared.prepare_into(id, engine, graph, edge, &mut cache, fanout);
            let matches = if prepared {
                engine.process_edge_prepared(graph, edge, fanout)
            } else {
                engine.process_edge(graph, edge)
            };
            for m in matches {
                reported += 1;
                emit(id, m);
            }
        }
        fanout.clear();
        reported
    }

    /// Re-registers a query's leaf shapes with the shared-leaf index after
    /// its engine was re-decomposed: the old subscriptions are dropped
    /// (shapes whose last subscriber left are evicted) and the engine's
    /// *current* leaves subscribed in their place, preserving the
    /// single-subscriber delegation rule for everyone else. Returns whether
    /// the query is on the shared path afterwards (`false` for unknown ids
    /// and engines that cannot share). The dispatch index needs no update —
    /// re-decomposition never changes the query's edge types.
    pub fn resubscribe(&mut self, id: QueryId) -> bool {
        let Some(engine) = self.engines.get(&id) else {
            return false;
        };
        self.shared.unsubscribe(id);
        self.shared.subscribe(id, engine)
    }

    /// Runs every engine's purge pass against the current graph. Returns the
    /// total number of partial matches dropped.
    pub fn purge(&mut self, graph: &DynamicGraph) -> usize {
        self.engines.values_mut().map(|e| e.purge(graph)).sum()
    }
}

/// The graph retention window implied by a set of per-query windows: the
/// maximum `tW`, or `None` (retain everything) when any window is `None` or
/// the set is empty. This is the single encoding of the retention rule,
/// shared by [`QueryRegistry::graph_retention`] and the parallel runtime's
/// global-retention broadcast — the sequential-equivalence guarantee depends
/// on both sides computing it identically.
pub fn retention_for_windows<I>(windows: I) -> Option<u64>
where
    I: IntoIterator<Item = Option<u64>>,
{
    let mut max = 0u64;
    let mut any = false;
    for window in windows {
        match window {
            None => return None,
            Some(w) => {
                any = true;
                max = max.max(w);
            }
        }
    }
    if any {
        Some(max)
    } else {
        None
    }
}

/// Distinct edge types used by an engine's query.
fn query_edge_types(engine: &ContinuousQueryEngine) -> Vec<EdgeType> {
    let mut types: Vec<EdgeType> = engine.query().edges().map(|e| e.edge_type).collect();
    types.sort_unstable();
    types.dedup();
    types
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_query::QueryGraph;
    use sp_selectivity::SelectivityEstimator;

    fn engine_for(types: &[EdgeType], window: Option<u64>) -> ContinuousQueryEngine {
        let mut q = QueryGraph::new("q");
        let mut prev = q.add_any_vertex();
        for &t in types {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t);
            prev = next;
        }
        let est = SelectivityEstimator::new();
        ContinuousQueryEngine::new(q, Strategy::SingleLazy, &est, window).unwrap()
    }

    #[test]
    fn dispatch_index_tracks_registered_edge_types() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0), EdgeType(1)], None));
        let b = reg.register(engine_for(&[EdgeType(1), EdgeType(2)], None));
        assert_eq!(reg.candidates(EdgeType(0)), &[a]);
        assert_eq!(reg.candidates(EdgeType(1)), &[a, b]);
        assert_eq!(reg.candidates(EdgeType(2)), &[b]);
        assert!(reg.candidates(EdgeType(9)).is_empty());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn deregister_removes_dispatch_entries() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0), EdgeType(1)], None));
        let b = reg.register(engine_for(&[EdgeType(1)], None));
        assert!(reg.deregister(a).is_some());
        assert!(reg.candidates(EdgeType(0)).is_empty());
        assert_eq!(reg.candidates(EdgeType(1)), &[b]);
        assert!(reg.deregister(a).is_none(), "double deregister");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(0)], None));
        reg.deregister(a);
        let b = reg.register(engine_for(&[EdgeType(0)], None));
        assert_ne!(a, b);
    }

    #[test]
    fn graph_retention_is_max_window() {
        let mut reg = QueryRegistry::new();
        assert_eq!(reg.graph_retention(), None);
        reg.register(engine_for(&[EdgeType(0)], Some(10)));
        assert_eq!(reg.graph_retention(), Some(10));
        let wide = reg.register(engine_for(&[EdgeType(1)], Some(500)));
        assert_eq!(reg.graph_retention(), Some(500));
        reg.register(engine_for(&[EdgeType(2)], None));
        assert_eq!(reg.graph_retention(), None);
        reg.deregister(wide);
        assert_eq!(reg.graph_retention(), None);
    }

    #[test]
    fn retention_rule_helper_matches_registry_semantics() {
        assert_eq!(retention_for_windows([]), None);
        assert_eq!(retention_for_windows([Some(10)]), Some(10));
        assert_eq!(retention_for_windows([Some(10), Some(500)]), Some(500));
        assert_eq!(retention_for_windows([Some(10), None]), None);
    }

    #[test]
    fn duplicate_edge_types_in_one_query_index_once() {
        let mut reg = QueryRegistry::new();
        let a = reg.register(engine_for(&[EdgeType(3), EdgeType(3)], None));
        assert_eq!(reg.candidates(EdgeType(3)), &[a]);
    }
}
