//! # streampattern — continuous subgraph pattern detection on streaming graphs
//!
//! This crate is the top of the StreamPattern workspace, a faithful
//! reproduction of *"A Selectivity based approach to Continuous Pattern
//! Detection in Streaming Graphs"* (Choudhury et al., EDBT 2015). It wires the
//! substrates — the dynamic graph store (`sp-graph`), the query model
//! (`sp-query`), the matchers (`sp-iso`), the stream statistics
//! (`sp-selectivity`) and the SJ-Tree (`sp-sjtree`) — into a continuous query
//! engine.
//!
//! ## Quick start
//!
//! ```
//! use sp_graph::{EdgeEvent, Schema, Timestamp};
//! use sp_query::QueryGraph;
//! use sp_selectivity::SelectivityEstimator;
//! use streampattern::{ContinuousQueryEngine, StreamProcessor, Strategy};
//!
//! // 1. A schema shared by the stream and the query.
//! let mut schema = Schema::new();
//! let ip = schema.intern_vertex_type("ip");
//! let tcp = schema.intern_edge_type("tcp");
//! let esp = schema.intern_edge_type("esp");
//!
//! // 2. The pattern to watch for: x -esp-> y -tcp-> z.
//! let mut query = QueryGraph::new("esp-then-tcp");
//! let x = query.add_any_vertex();
//! let y = query.add_any_vertex();
//! let z = query.add_any_vertex();
//! query.add_edge(x, y, esp);
//! query.add_edge(y, z, tcp);
//!
//! // 3. Statistics from a stream prefix drive the decomposition.
//! let estimator = SelectivityEstimator::new();
//! // (a real application feeds the estimator from the stream; see
//! //  `SelectivityEstimator::observe_edge`)
//!
//! // 4. Build the engine and process the stream.
//! let engine = ContinuousQueryEngine::new(query, Strategy::SingleLazy, &estimator, None)
//!     .expect("valid query");
//! let mut proc = StreamProcessor::new(schema, engine);
//! let t = Timestamp(1);
//! assert!(proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, t)).is_empty());
//! let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)));
//! assert_eq!(matches.len(), 1); // 1 -esp-> 2 -tcp-> 3
//! ```
//!
//! ## Strategies
//!
//! The four SJ-Tree strategies of the paper's evaluation, plus the
//! non-incremental baseline, are exposed through [`Strategy`]:
//!
//! | strategy | decomposition | lazy search |
//! |---|---|---|
//! | [`Strategy::Single`]     | 1-edge leaves    | no  |
//! | [`Strategy::SingleLazy`] | 1-edge leaves    | yes |
//! | [`Strategy::Path`]       | 2-edge leaves    | no  |
//! | [`Strategy::PathLazy`]   | 2-edge leaves    | yes |
//! | [`Strategy::Vf2Baseline`]| none (full VF2 per edge) | — |
//!
//! [`choose_strategy`] implements the automatic selection rule of Section
//! 6.5: *PathLazy* when the Relative Selectivity of the 2-edge decomposition
//! is below 10⁻³, *SingleLazy* otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod lazy;
mod processor;
mod profile;
mod strategy;

pub use engine::ContinuousQueryEngine;
pub use error::EngineError;
pub use lazy::LazyBitmap;
pub use processor::StreamProcessor;
pub use profile::ProfileCounters;
pub use strategy::{choose_strategy, Strategy, StrategyChoice, RELATIVE_SELECTIVITY_THRESHOLD};

// Re-export the building blocks so that downstream users only need one
// dependency for common tasks.
pub use sp_graph::{
    DynamicGraph, EdgeData, EdgeEvent, EdgeId, EdgeType, Schema, Timestamp, VertexId, VertexType,
};
pub use sp_iso::SubgraphMatch;
pub use sp_query::{QueryEdgeId, QueryGraph, QueryVertexId};
pub use sp_selectivity::SelectivityEstimator;
pub use sp_sjtree::{PrimitivePolicy, SjTree};
