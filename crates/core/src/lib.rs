//! # streampattern — continuous subgraph pattern detection on streaming graphs
//!
//! This crate is the top of the StreamPattern workspace, a faithful
//! reproduction of *"A Selectivity based approach to Continuous Pattern
//! Detection in Streaming Graphs"* (Choudhury et al., EDBT 2015). It wires the
//! substrates — the dynamic graph store (`sp-graph`), the query model
//! (`sp-query`), the matchers (`sp-iso`), the stream statistics
//! (`sp-selectivity`) and the SJ-Tree (`sp-sjtree`) — into a continuous
//! **multi-query** engine: one [`StreamProcessor`] owns one shared
//! [`DynamicGraph`] plus a [`QueryRegistry`] of continuous queries, and an
//! edge-type dispatch index hands each incoming edge only to the queries
//! whose pattern can use it.
//!
//! ## Quick start
//!
//! ```
//! use sp_graph::{EdgeEvent, Schema, Timestamp};
//! use sp_query::QueryGraph;
//! use streampattern::{StrategySpec, StreamProcessor, Strategy};
//!
//! // 1. A schema shared by the stream and the queries.
//! let mut schema = Schema::new();
//! let ip = schema.intern_vertex_type("ip");
//! let tcp = schema.intern_edge_type("tcp");
//! let esp = schema.intern_edge_type("esp");
//! let dns = schema.intern_edge_type("dns");
//!
//! // 2. One processor, one shared data graph, many continuous queries.
//! let mut proc = StreamProcessor::new(schema);
//!
//! // Pattern A: x -esp-> y -tcp-> z, within a 100-tick window.
//! let mut tunnel = QueryGraph::new("esp-then-tcp");
//! let x = tunnel.add_any_vertex();
//! let y = tunnel.add_any_vertex();
//! let z = tunnel.add_any_vertex();
//! tunnel.add_edge(x, y, esp);
//! tunnel.add_edge(y, z, tcp);
//! let tunnel_id = proc.register(tunnel, Strategy::SingleLazy, Some(100)).unwrap();
//!
//! // Pattern B: a dns edge, with the strategy chosen automatically from the
//! // stream statistics the processor maintains.
//! let mut lookup = QueryGraph::new("dns");
//! let a = lookup.add_any_vertex();
//! let b = lookup.add_any_vertex();
//! lookup.add_edge(a, b, dns);
//! let lookup_id = proc.register(lookup, StrategySpec::Auto, None).unwrap();
//!
//! // 3. Stream edges. Each edge is ingested once and dispatched only to the
//! //    queries whose pattern contains its type.
//! assert!(proc.process(&EdgeEvent::homogeneous(1, 2, ip, esp, Timestamp(1))).is_empty());
//! let matches = proc.process(&EdgeEvent::homogeneous(2, 3, ip, tcp, Timestamp(2)));
//! assert_eq!(matches.len(), 1); // 1 -esp-> 2 -tcp-> 3
//! assert_eq!(matches[0].0, tunnel_id);
//! let matches = proc.process(&EdgeEvent::homogeneous(9, 10, ip, dns, Timestamp(3)));
//! assert_eq!(matches[0].0, lookup_id);
//!
//! // The dns engine never saw the esp/tcp edges (dispatch index), and the
//! // processor ingested every event exactly once.
//! assert_eq!(proc.profile_for(lookup_id).unwrap().edges_processed, 1);
//! assert_eq!(proc.profile().edges_processed, 3);
//! ```
//!
//! ## Strategies
//!
//! The four SJ-Tree strategies of the paper's evaluation, plus the
//! non-incremental baseline, are exposed through [`Strategy`]:
//!
//! | strategy | decomposition | lazy search |
//! |---|---|---|
//! | [`Strategy::Single`]     | 1-edge leaves    | no  |
//! | [`Strategy::SingleLazy`] | 1-edge leaves    | yes |
//! | [`Strategy::Path`]       | 2-edge leaves    | no  |
//! | [`Strategy::PathLazy`]   | 2-edge leaves    | yes |
//! | [`Strategy::Vf2Baseline`]| none (full VF2 per edge) | — |
//!
//! [`choose_strategy`] implements the automatic selection rule of Section
//! 6.5: *PathLazy* when the Relative Selectivity of the 2-edge decomposition
//! is below 10⁻³, *SingleLazy* otherwise. Registering a query with
//! [`StrategySpec::Auto`] applies the rule against the processor's live
//! stream statistics.
//!
//! ## Windows
//!
//! Windowing is per query: each engine filters and purges with its own `tW`,
//! while the shared graph retains edges for the *largest* window across
//! registered queries (unbounded if any query is unwindowed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod engine;
mod error;
mod lazy;
mod metrics;
mod processor;
mod profile;
mod registry;
mod sharedjoin;
mod sharing;
mod sink;
mod strategy;

pub use adaptive::{
    leaf_structure, plan_cost, plan_query, AdaptiveStats, QueryDriftState, REDECOMPOSITION_GAIN,
};
pub use engine::{ContinuousQueryEngine, LeafFanout, PrefixFeed, PreparedLeaf};
pub use error::EngineError;
pub use lazy::{LazyBitmap, MAX_LEAVES};
pub use metrics::PipelineMetrics;
pub use processor::StreamProcessor;
pub use profile::ProfileCounters;
pub use registry::{retention_for_windows, QueryId, QueryRegistry, StrategySpec};
pub use sharedjoin::{
    tree_chain, JoinSubscription, SharedJoinIndex, SharedJoinStats, TrieNodeInfo, MIN_PREFIX_DEPTH,
};
pub use sharing::{EdgeSearchCache, SharedLeafIndex, SharedLeafStats};
pub use sink::{CollectSink, CountSink, FnSink, MatchSink};
pub use strategy::{
    choose_strategy, choose_strategy_with_sharing, Strategy, StrategyChoice,
    RELATIVE_SELECTIVITY_THRESHOLD,
};

// Re-export the building blocks so that downstream users only need one
// dependency for common tasks.
pub use sp_graph::{
    DynamicGraph, EdgeData, EdgeEvent, EdgeId, EdgeType, Schema, Timestamp, VertexId, VertexType,
};
pub use sp_iso::SubgraphMatch;
pub use sp_query::{
    canonicalize_subgraph, prefix_chain, ChainStep, LeafSignature, PrefixSignature, QueryEdgeId,
    QueryGraph, QueryVertexId,
};
pub use sp_selectivity::{DriftConfig, DriftDetector, DriftStats, SelectivityEstimator, StatsMode};
pub use sp_sjtree::{PrimitivePolicy, SjTree};
