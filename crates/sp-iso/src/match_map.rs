//! The match representation shared by the matchers, the SJ-Tree and the
//! engine.

use sp_graph::{DynamicGraph, EdgeId, Timestamp, VertexId};
use sp_query::{QueryEdgeId, QueryVertexId};

/// Maximum number of cut vertices a [`JoinKey`] stores without a heap
/// allocation. Real decompositions join on one or two shared vertices; three
/// covers every tree the workspace builds.
pub const JOIN_KEY_INLINE: usize = 3;

/// Maximum number of vertex (and edge) bindings a [`SubgraphMatch`] stores
/// inline, without a heap allocation. Eight covers every query the built-in
/// workloads register (up to a 7-edge / 8-vertex pattern); larger hand-built
/// queries spill to a `Vec` transparently.
pub const MATCH_INLINE_BINDINGS: usize = 8;

/// Generates a sorted small-vec map: entries of up to
/// [`MATCH_INLINE_BINDINGS`] pairs live inline in the enum (clone is a
/// memcpy — no allocation), larger maps spill to a `Vec`. The representation
/// is canonical by length (inline iff it fits), so the derived `Eq`/`Ord`
/// are consistent; unused inline slots are kept zeroed so the derived
/// comparisons never read garbage. Iteration order is ascending by key,
/// matching the `BTreeMap` these maps replaced — the SJ-Tree join stage
/// clones one `SubgraphMatch` per stored partial match, which made the two
/// `BTreeMap`s the hottest allocation of the hash-join update path.
macro_rules! small_sorted_map {
    ($name:ident, $k:ty, $v:ty, $zero:expr) => {
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
        enum $name {
            /// `(len, entries)`; slots at `len..` are zeroed.
            Inline(u8, [($k, $v); MATCH_INLINE_BINDINGS]),
            /// More than [`MATCH_INLINE_BINDINGS`] bindings.
            Spilled(Vec<($k, $v)>),
        }

        impl $name {
            fn new() -> Self {
                $name::Inline(0, [$zero; MATCH_INLINE_BINDINGS])
            }

            fn as_slice(&self) -> &[($k, $v)] {
                match self {
                    $name::Inline(n, entries) => &entries[..*n as usize],
                    $name::Spilled(v) => v.as_slice(),
                }
            }

            fn len(&self) -> usize {
                self.as_slice().len()
            }

            // Generated for both binding maps; only the edge map's emptiness
            // is semantically meaningful (`SubgraphMatch::is_empty`).
            #[allow(dead_code)]
            fn is_empty(&self) -> bool {
                self.len() == 0
            }

            fn get(&self, key: $k) -> Option<$v> {
                let slice = self.as_slice();
                slice
                    .binary_search_by_key(&key, |&(k, _)| k)
                    .ok()
                    .map(|i| slice[i].1)
            }

            fn iter(&self) -> impl Iterator<Item = ($k, $v)> + '_ {
                self.as_slice().iter().copied()
            }

            fn values(&self) -> impl Iterator<Item = $v> + '_ {
                self.as_slice().iter().map(|&(_, v)| v)
            }

            /// Inserts or overwrites, keeping the entries sorted by key.
            fn insert(&mut self, key: $k, value: $v) {
                match self.as_slice().binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(i) => match self {
                        $name::Inline(_, entries) => entries[i].1 = value,
                        $name::Spilled(v) => v[i].1 = value,
                    },
                    Err(i) => self.insert_at(i, (key, value)),
                }
            }

            fn insert_at(&mut self, i: usize, entry: ($k, $v)) {
                match self {
                    $name::Inline(n, entries) if (*n as usize) < MATCH_INLINE_BINDINGS => {
                        let len = *n as usize;
                        entries.copy_within(i..len, i + 1);
                        entries[i] = entry;
                        *n += 1;
                    }
                    $name::Inline(n, entries) => {
                        let mut v: Vec<($k, $v)> = entries[..*n as usize].to_vec();
                        v.insert(i, entry);
                        *self = $name::Spilled(v);
                    }
                    $name::Spilled(v) => v.insert(i, entry),
                }
            }

            /// Removes `key` if present, keeping the entries sorted. The
            /// vacated inline slot is re-zeroed and a spilled map that fits
            /// inline again is converted back, so the representation stays
            /// canonical by length and derived comparisons stay consistent.
            fn remove(&mut self, key: $k) -> bool {
                let Ok(i) = self.as_slice().binary_search_by_key(&key, |&(k, _)| k) else {
                    return false;
                };
                match self {
                    $name::Inline(n, entries) => {
                        let len = *n as usize;
                        entries.copy_within(i + 1..len, i);
                        entries[len - 1] = $zero;
                        *n -= 1;
                    }
                    $name::Spilled(v) => {
                        v.remove(i);
                        if v.len() <= MATCH_INLINE_BINDINGS {
                            let len = v.len();
                            let mut inline = [$zero; MATCH_INLINE_BINDINGS];
                            inline[..len].copy_from_slice(v);
                            *self = $name::Inline(len as u8, inline);
                        }
                    }
                }
                true
            }

            /// Appends an entry whose key is strictly greater than every
            /// existing key, skipping the binary search. The decode path of
            /// the interned match representation produces bindings in
            /// ascending slot (= key) order, so materializing a stored row
            /// is a plain append per slot.
            fn push(&mut self, key: $k, value: $v) {
                debug_assert!(
                    self.as_slice().last().is_none_or(|&(k, _)| k < key),
                    "push requires strictly ascending keys"
                );
                let len = self.len();
                self.insert_at(len, (key, value));
            }

            /// Resets to empty, dropping any spilled storage (inline storage
            /// is simply re-zeroed).
            fn clear(&mut self) {
                *self = $name::new();
            }

            fn is_inline(&self) -> bool {
                matches!(self, $name::Inline(..))
            }
        }
    };
}

small_sorted_map!(
    VertexBindings,
    QueryVertexId,
    VertexId,
    (QueryVertexId(0), VertexId(0))
);
small_sorted_map!(
    EdgeBindings,
    QueryEdgeId,
    EdgeId,
    (QueryEdgeId(0), EdgeId(0))
);

/// An interned hash-join key: the projection of a match onto a join node's
/// cut vertices ([`SubgraphMatch::project_key`]).
///
/// The partial-match store computes one key per inserted match (Property 4's
/// `GET-JOIN-KEY`), which made the `Vec<VertexId>` key the hottest
/// allocation of the SJ-Tree update path. Keys of up to
/// [`JOIN_KEY_INLINE`] vertices — all real cuts — are stored inline;
/// longer keys spill to a `Vec`. Construction is canonical by length
/// (inline iff it fits), so the derived `Eq`/`Hash` are consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// At most [`JOIN_KEY_INLINE`] cut vertices, stored inline: the first
    /// field is the number of valid entries, unused slots are zeroed.
    Inline(u8, [VertexId; JOIN_KEY_INLINE]),
    /// More than [`JOIN_KEY_INLINE`] cut vertices (not produced by the
    /// built-in decompositions, but hand-built trees may).
    Spilled(Vec<VertexId>),
}

/// A match (possibly partial) between a query subgraph and a data subgraph.
///
/// Following Definition 3.1.2 a match is "a set of edge pairs", each pair
/// mapping a query edge to a data edge. The vertex binding is kept alongside
/// because every consistency check (injectivity, join compatibility, join-key
/// projection) is expressed on vertices. Bindings are stored in inline
/// small-vec maps ([`MATCH_INLINE_BINDINGS`] entries each), so cloning a
/// match — which the SJ-Tree join stage does once per stored partial match —
/// does not allocate for any built-in workload query.
/// The derived ordering (edge binding, then vertex binding, then time span)
/// has no semantic meaning; it exists so match stores can keep buckets
/// sorted and deduplicate in `O(log n)` instead of scanning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SubgraphMatch {
    edge_map: EdgeBindings,
    vertex_map: VertexBindings,
    earliest: Timestamp,
    latest: Timestamp,
}

impl Default for SubgraphMatch {
    fn default() -> Self {
        Self::new()
    }
}

impl SubgraphMatch {
    /// Creates an empty match.
    pub fn new() -> Self {
        Self {
            edge_map: EdgeBindings::new(),
            vertex_map: VertexBindings::new(),
            earliest: Timestamp(u64::MAX),
            latest: Timestamp(0),
        }
    }

    /// Builds a match directly from binding pairs given in strictly
    /// ascending key order (the order [`SubgraphMatch::edge_pairs`] /
    /// [`SubgraphMatch::vertex_pairs`] iterate), plus the precomputed time
    /// interval. This is the decode half of the interned (fixed-width row)
    /// match representation: the row stores bindings in ascending query-id
    /// slot order, so materialization appends each binding in `O(1)` with no
    /// searching and no re-derivation of the interval.
    pub fn from_sorted_bindings(
        edges: impl IntoIterator<Item = (QueryEdgeId, EdgeId)>,
        vertices: impl IntoIterator<Item = (QueryVertexId, VertexId)>,
        earliest: Timestamp,
        latest: Timestamp,
    ) -> Self {
        let mut out = Self::new();
        for (qe, de) in edges {
            out.edge_map.push(qe, de);
        }
        for (qv, dv) in vertices {
            out.vertex_map.push(qv, dv);
        }
        out.earliest = earliest;
        out.latest = latest;
        out
    }

    /// `true` while both binding maps still fit their inline storage —
    /// i.e. no heap allocation backs this match. The high-fan-in regression
    /// tests assert this stays true for the workload queries, pinning the
    /// "no per-match allocation in the join stage" property.
    pub fn bindings_inline(&self) -> bool {
        self.edge_map.is_inline() && self.vertex_map.is_inline()
    }

    /// Number of matched edges.
    pub fn num_edges(&self) -> usize {
        self.edge_map.len()
    }

    /// Number of bound vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_map.len()
    }

    /// Returns `true` when nothing is bound yet.
    pub fn is_empty(&self) -> bool {
        self.edge_map.is_empty()
    }

    /// The data edge bound to a query edge, if any.
    pub fn data_edge(&self, q: QueryEdgeId) -> Option<EdgeId> {
        self.edge_map.get(q)
    }

    /// The data vertex bound to a query vertex, if any.
    pub fn data_vertex(&self, q: QueryVertexId) -> Option<VertexId> {
        self.vertex_map.get(q)
    }

    /// Iterates over the (query edge, data edge) pairs in query-edge order.
    pub fn edge_pairs(&self) -> impl Iterator<Item = (QueryEdgeId, EdgeId)> + '_ {
        self.edge_map.iter()
    }

    /// Iterates over the (query vertex, data vertex) pairs in query-vertex
    /// order.
    pub fn vertex_pairs(&self) -> impl Iterator<Item = (QueryVertexId, VertexId)> + '_ {
        self.vertex_map.iter()
    }

    /// Returns `true` if the given data edge is used by this match.
    pub fn uses_data_edge(&self, e: EdgeId) -> bool {
        self.edge_map.values().any(|d| d == e)
    }

    /// Returns `true` if the given data vertex is bound by this match.
    pub fn uses_data_vertex(&self, v: VertexId) -> bool {
        self.vertex_map.values().any(|d| d == v)
    }

    /// Earliest timestamp among the matched edges (`u64::MAX` if empty).
    pub fn earliest(&self) -> Timestamp {
        self.earliest
    }

    /// Latest timestamp among the matched edges (`0` if empty).
    pub fn latest(&self) -> Timestamp {
        self.latest
    }

    /// The time interval τ(g) spanned by the matched edges (Section 2.1).
    pub fn duration(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.latest.saturating_since(self.earliest)
        }
    }

    /// Returns `true` when the match fits inside a time window of width `tw`.
    pub fn within_window(&self, tw: u64) -> bool {
        self.duration() < tw
    }

    /// Attempts to bind `query_vertex -> data_vertex`, enforcing consistency
    /// (a query vertex may only be bound once, to a single data vertex) and
    /// injectivity (two query vertices may not share a data vertex).
    pub fn bind_vertex(&mut self, q: QueryVertexId, d: VertexId) -> bool {
        match self.vertex_map.get(q) {
            Some(existing) => existing == d,
            None => {
                if self.vertex_map.values().any(|v| v == d) {
                    return false;
                }
                self.vertex_map.insert(q, d);
                true
            }
        }
    }

    /// Like [`SubgraphMatch::bind_vertex`], but reports what happened so a
    /// speculative caller knows what to undo: `None` = conflict (nothing
    /// changed), `Some(true)` = a new binding was inserted (undo with
    /// [`SubgraphMatch::unbind_vertex`]), `Some(false)` = the vertex was
    /// already bound to the same data vertex (nothing to undo).
    pub fn bind_vertex_tracked(&mut self, q: QueryVertexId, d: VertexId) -> Option<bool> {
        match self.vertex_map.get(q) {
            Some(existing) => (existing == d).then_some(false),
            None => {
                if self.vertex_map.values().any(|v| v == d) {
                    return None;
                }
                self.vertex_map.insert(q, d);
                Some(true)
            }
        }
    }

    /// Removes the binding of `q`, if any. Paired with
    /// [`SubgraphMatch::bind_vertex`] to extend a match speculatively in
    /// place instead of cloning it per candidate.
    pub fn unbind_vertex(&mut self, q: QueryVertexId) {
        self.vertex_map.remove(q);
    }

    /// Removes the binding of `q`, if any. The time interval is **not**
    /// recomputed (binds only widen it); callers snapshot
    /// [`SubgraphMatch::time_span`] before the bind and restore it after.
    pub fn unbind_edge(&mut self, q: QueryEdgeId) {
        self.edge_map.remove(q);
    }

    /// The `(earliest, latest)` interval, for snapshot/restore around
    /// speculative binds (binds only ever widen the interval, so undo is a
    /// plain restore).
    pub fn time_span(&self) -> (Timestamp, Timestamp) {
        (self.earliest, self.latest)
    }

    /// Restores an interval snapshot taken with
    /// [`SubgraphMatch::time_span`].
    pub fn restore_time_span(&mut self, span: (Timestamp, Timestamp)) {
        self.earliest = span.0;
        self.latest = span.1;
    }

    /// Resets to an empty match so the allocation (if any) can be reused for
    /// another search seed.
    pub fn clear(&mut self) {
        self.edge_map.clear();
        self.vertex_map.clear();
        self.earliest = Timestamp(u64::MAX);
        self.latest = Timestamp(0);
    }

    /// Attempts to bind `query_edge -> data_edge`. Fails if either side is
    /// already bound (to anything else) — data edges may not be reused.
    pub fn bind_edge(&mut self, q: QueryEdgeId, d: EdgeId, timestamp: Timestamp) -> bool {
        if self.edge_map.get(q).is_some() || self.edge_map.values().any(|e| e == d) {
            return false;
        }
        self.edge_map.insert(q, d);
        if timestamp < self.earliest {
            self.earliest = timestamp;
        }
        if timestamp > self.latest {
            self.latest = timestamp;
        }
        true
    }

    /// Returns `true` when this match can be joined with `other`:
    ///
    /// * query vertices bound by both map to the same data vertex;
    /// * query edges are disjoint and data edges are disjoint;
    /// * the combined vertex binding stays injective.
    pub fn compatible_with(&self, other: &SubgraphMatch) -> bool {
        // Shared query vertices must agree; disjoint query vertices must not
        // collide on data vertices (injectivity of the union).
        for (qv, dv) in self.vertex_map.iter() {
            match other.vertex_map.get(qv) {
                Some(odv) => {
                    if odv != dv {
                        return false;
                    }
                }
                None => {
                    if other
                        .vertex_map
                        .iter()
                        .any(|(oqv, odv)| oqv != qv && odv == dv)
                    {
                        return false;
                    }
                }
            }
        }
        // Query edges must be disjoint (the decomposition partitions edges)
        // and data edges must not be reused.
        for (qe, de) in self.edge_map.iter() {
            if other.edge_map.get(qe).is_some() {
                return false;
            }
            if other.edge_map.values().any(|ode| ode == de) {
                return false;
            }
        }
        true
    }

    /// Joins two compatible matches into a larger one (Definition 3.1.3).
    /// Returns `None` when the matches are incompatible.
    pub fn join(&self, other: &SubgraphMatch) -> Option<SubgraphMatch> {
        if !self.compatible_with(other) {
            return None;
        }
        let mut out = self.clone();
        for (qe, de) in other.edge_map.iter() {
            out.edge_map.insert(qe, de);
        }
        for (qv, dv) in other.vertex_map.iter() {
            out.vertex_map.insert(qv, dv);
        }
        out.earliest = out.earliest.min(other.earliest);
        out.latest = out.latest.max(other.latest);
        Some(out)
    }

    /// Projects the match onto a set of query vertices, returning the bound
    /// data vertices in the order given. Returns `None` when any of the
    /// vertices is unbound. This is the `GET-JOIN-KEY` / projection operator
    /// Π of Property 4 — the result is used as the hash-join key.
    pub fn project_vertices(&self, vertices: &[QueryVertexId]) -> Option<Vec<VertexId>> {
        vertices.iter().map(|&q| self.vertex_map.get(q)).collect()
    }

    /// Projects the match onto a set of query vertices as an interned
    /// [`JoinKey`] — the allocation-free variant of
    /// [`SubgraphMatch::project_vertices`] used by the partial-match store's
    /// hash tables. Returns `None` when any vertex is unbound.
    pub fn project_key(&self, vertices: &[QueryVertexId]) -> Option<JoinKey> {
        if vertices.len() <= JOIN_KEY_INLINE {
            let mut ids = [VertexId(0); JOIN_KEY_INLINE];
            for (slot, &q) in ids.iter_mut().zip(vertices) {
                *slot = self.vertex_map.get(q)?;
            }
            Some(JoinKey::Inline(vertices.len() as u8, ids))
        } else {
            self.project_vertices(vertices).map(JoinKey::Spilled)
        }
    }

    /// Checks that every matched data edge still exists in the graph
    /// (edges may have been expired by the sliding window).
    pub fn is_live(&self, graph: &DynamicGraph) -> bool {
        self.edge_map.values().all(|e| graph.contains_edge(e))
    }

    /// Rebases a match found against a *canonical* leaf (query vertices
    /// `0..n`, query edges `0..m`) onto another query's numbering:
    /// `vertex_map[c]` / `edge_map[c]` name the target ids for canonical
    /// vertex/edge `c`. Data bindings and the time interval are preserved
    /// byte for byte, so the result is exactly the match an anchored search
    /// against the target query's own leaf would have produced.
    ///
    /// # Panics
    /// Panics when the match binds a canonical id outside the mappings.
    pub fn remapped(
        &self,
        vertex_map: &[QueryVertexId],
        edge_map: &[QueryEdgeId],
    ) -> SubgraphMatch {
        let mut out = SubgraphMatch::new();
        for (qv, dv) in self.vertex_map.iter() {
            out.vertex_map.insert(vertex_map[qv.0], dv);
        }
        for (qe, de) in self.edge_map.iter() {
            out.edge_map.insert(edge_map[qe.0], de);
        }
        out.earliest = self.earliest;
        out.latest = self.latest;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(i: usize) -> QueryVertexId {
        QueryVertexId(i)
    }
    fn qe(i: usize) -> QueryEdgeId {
        QueryEdgeId(i)
    }
    fn dv(i: u64) -> VertexId {
        VertexId(i)
    }
    fn de(i: u64) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn bind_vertex_enforces_consistency_and_injectivity() {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(qv(0), dv(10)));
        // Re-binding to the same data vertex is fine.
        assert!(m.bind_vertex(qv(0), dv(10)));
        // Re-binding to a different data vertex is not.
        assert!(!m.bind_vertex(qv(0), dv(11)));
        // A second query vertex may not reuse the same data vertex.
        assert!(!m.bind_vertex(qv(1), dv(10)));
        assert!(m.bind_vertex(qv(1), dv(11)));
        assert_eq!(m.num_vertices(), 2);
    }

    #[test]
    fn bind_edge_tracks_time_interval() {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_edge(qe(0), de(100), Timestamp(50)));
        assert!(m.bind_edge(qe(1), de(101), Timestamp(20)));
        assert!(m.bind_edge(qe(2), de(102), Timestamp(70)));
        assert_eq!(m.earliest(), Timestamp(20));
        assert_eq!(m.latest(), Timestamp(70));
        assert_eq!(m.duration(), 50);
        assert!(m.within_window(51));
        assert!(!m.within_window(50));
    }

    #[test]
    fn bind_edge_rejects_reuse() {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_edge(qe(0), de(1), Timestamp(0)));
        // Same query edge cannot be bound twice.
        assert!(!m.bind_edge(qe(0), de(2), Timestamp(0)));
        // Same data edge cannot serve two query edges.
        assert!(!m.bind_edge(qe(1), de(1), Timestamp(0)));
    }

    #[test]
    fn join_of_compatible_matches_unions_bindings() {
        let mut a = SubgraphMatch::new();
        a.bind_vertex(qv(0), dv(10));
        a.bind_vertex(qv(1), dv(11));
        a.bind_edge(qe(0), de(1), Timestamp(5));

        let mut b = SubgraphMatch::new();
        b.bind_vertex(qv(1), dv(11));
        b.bind_vertex(qv(2), dv(12));
        b.bind_edge(qe(1), de(2), Timestamp(9));

        let j = a.join(&b).expect("compatible");
        assert_eq!(j.num_edges(), 2);
        assert_eq!(j.num_vertices(), 3);
        assert_eq!(j.earliest(), Timestamp(5));
        assert_eq!(j.latest(), Timestamp(9));
    }

    #[test]
    fn join_rejects_conflicting_shared_vertex() {
        let mut a = SubgraphMatch::new();
        a.bind_vertex(qv(1), dv(11));
        a.bind_edge(qe(0), de(1), Timestamp(0));
        let mut b = SubgraphMatch::new();
        b.bind_vertex(qv(1), dv(99));
        b.bind_edge(qe(1), de(2), Timestamp(0));
        assert!(a.join(&b).is_none());
    }

    #[test]
    fn join_rejects_non_injective_union() {
        // Different query vertices bound to the same data vertex.
        let mut a = SubgraphMatch::new();
        a.bind_vertex(qv(0), dv(10));
        a.bind_edge(qe(0), de(1), Timestamp(0));
        let mut b = SubgraphMatch::new();
        b.bind_vertex(qv(2), dv(10));
        b.bind_edge(qe(1), de(2), Timestamp(0));
        assert!(a.join(&b).is_none());
    }

    #[test]
    fn join_rejects_data_edge_reuse() {
        let mut a = SubgraphMatch::new();
        a.bind_edge(qe(0), de(7), Timestamp(0));
        let mut b = SubgraphMatch::new();
        b.bind_edge(qe(1), de(7), Timestamp(0));
        assert!(a.join(&b).is_none());
    }

    #[test]
    fn projection_produces_join_keys() {
        let mut m = SubgraphMatch::new();
        m.bind_vertex(qv(0), dv(10));
        m.bind_vertex(qv(2), dv(12));
        assert_eq!(
            m.project_vertices(&[qv(2), qv(0)]),
            Some(vec![dv(12), dv(10)])
        );
        assert_eq!(m.project_vertices(&[qv(1)]), None);
        assert_eq!(m.project_vertices(&[]), Some(vec![]));
    }

    #[test]
    fn project_key_interns_small_cuts_inline_and_spills_large_ones() {
        let mut m = SubgraphMatch::new();
        for i in 0..5usize {
            assert!(m.bind_vertex(qv(i), dv(10 + i as u64)));
        }
        // ≤ JOIN_KEY_INLINE cut vertices: inline, no heap key.
        let small = m.project_key(&[qv(2), qv(0)]).unwrap();
        assert_eq!(small, JoinKey::Inline(2, [dv(12), dv(10), VertexId(0)]));
        // Same projection, same key — and a different projection differs.
        assert_eq!(small, m.project_key(&[qv(2), qv(0)]).unwrap());
        assert_ne!(small, m.project_key(&[qv(0), qv(2)]).unwrap());
        // Oversized cuts spill to the Vec representation.
        let large = m.project_key(&[qv(0), qv(1), qv(2), qv(3)]).unwrap();
        assert_eq!(
            large,
            JoinKey::Spilled(vec![dv(10), dv(11), dv(12), dv(13)])
        );
        // Unbound vertices fail the projection, like project_vertices.
        assert_eq!(m.project_key(&[qv(9)]), None);
        assert_eq!(
            m.project_key(&[]).unwrap(),
            JoinKey::Inline(0, [VertexId(0); JOIN_KEY_INLINE])
        );
    }

    #[test]
    fn empty_match_properties() {
        let m = SubgraphMatch::new();
        assert!(m.is_empty());
        assert_eq!(m.duration(), 0);
        assert!(m.within_window(1));
    }

    #[test]
    fn remapped_rebases_ids_and_keeps_data_bindings() {
        let mut canon = SubgraphMatch::new();
        canon.bind_vertex(qv(0), dv(10));
        canon.bind_vertex(qv(1), dv(11));
        canon.bind_edge(qe(0), de(100), Timestamp(7));
        // Canonical vertex 0 -> query vertex 4, 1 -> 2; edge 0 -> query edge 3.
        let m = canon.remapped(&[qv(4), qv(2)], &[qe(3)]);
        assert_eq!(m.data_vertex(qv(4)), Some(dv(10)));
        assert_eq!(m.data_vertex(qv(2)), Some(dv(11)));
        assert_eq!(m.data_vertex(qv(0)), None);
        assert_eq!(m.data_edge(qe(3)), Some(de(100)));
        assert_eq!(m.earliest(), Timestamp(7));
        assert_eq!(m.latest(), Timestamp(7));
        assert_eq!(m.num_edges(), 1);
        assert_eq!(m.num_vertices(), 2);
    }

    #[test]
    fn inline_bindings_spill_transparently_past_the_cap() {
        let mut m = SubgraphMatch::new();
        // Fill exactly to the inline capacity: still allocation-free.
        for i in 0..super::MATCH_INLINE_BINDINGS {
            assert!(m.bind_vertex(qv(i), dv(100 + i as u64)));
            assert!(m.bind_edge(qe(i), de(200 + i as u64), Timestamp(i as u64)));
        }
        assert!(m.bindings_inline());
        assert_eq!(m.num_vertices(), super::MATCH_INLINE_BINDINGS);
        // One more of each spills to the heap without losing anything.
        let extra = super::MATCH_INLINE_BINDINGS;
        assert!(m.bind_vertex(qv(extra), dv(999)));
        assert!(m.bind_edge(qe(extra), de(998), Timestamp(50)));
        assert!(!m.bindings_inline());
        assert_eq!(m.num_vertices(), extra + 1);
        assert_eq!(m.num_edges(), extra + 1);
        for i in 0..extra {
            assert_eq!(m.data_vertex(qv(i)), Some(dv(100 + i as u64)));
            assert_eq!(m.data_edge(qe(i)), Some(de(200 + i as u64)));
        }
        assert_eq!(m.data_vertex(qv(extra)), Some(dv(999)));
        // Iteration order stays ascending by query id across the spill.
        let keys: Vec<usize> = m.vertex_pairs().map(|(q, _)| q.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn out_of_order_binds_keep_sorted_iteration() {
        let mut m = SubgraphMatch::new();
        for &i in &[5usize, 1, 3, 0, 4, 2] {
            assert!(m.bind_vertex(qv(i), dv(10 + i as u64)));
        }
        let keys: Vec<usize> = m.vertex_pairs().map(|(q, _)| q.0).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5]);
        assert!(m.bindings_inline());
    }

    #[test]
    fn unbind_reverses_bind_exactly() {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(qv(0), dv(10)));
        assert!(m.bind_vertex(qv(2), dv(12)));
        assert!(m.bind_edge(qe(0), de(100), Timestamp(5)));
        let reference = m.clone();
        let span = m.time_span();

        // Speculative extension: bind, then undo.
        assert_eq!(m.bind_vertex_tracked(qv(1), dv(11)), Some(true));
        assert!(m.bind_edge(qe(1), de(101), Timestamp(9)));
        assert_eq!(m.latest(), Timestamp(9));
        m.unbind_edge(qe(1));
        m.unbind_vertex(qv(1));
        m.restore_time_span(span);
        assert_eq!(m, reference, "undo must restore the match byte for byte");

        // Tracked re-bind of an existing consistent binding: nothing to undo.
        assert_eq!(m.bind_vertex_tracked(qv(0), dv(10)), Some(false));
        assert_eq!(m, reference);
        // Conflicting tracked bind changes nothing.
        assert_eq!(m.bind_vertex_tracked(qv(0), dv(99)), None);
        assert_eq!(m.bind_vertex_tracked(qv(5), dv(12)), None);
        assert_eq!(m, reference);
    }

    #[test]
    fn remove_from_spilled_map_restores_canonical_inline_form() {
        // Spill past the inline cap, then unbind back under it: the match
        // must compare equal to one that never spilled (store-bucket dedup
        // relies on the derived Eq/Ord).
        let build = |extra: bool| {
            let mut m = SubgraphMatch::new();
            for i in 0..super::MATCH_INLINE_BINDINGS {
                assert!(m.bind_vertex(qv(i), dv(100 + i as u64)));
            }
            if extra {
                let e = super::MATCH_INLINE_BINDINGS;
                assert!(m.bind_vertex(qv(e), dv(999)));
                assert!(!m.bindings_inline());
                m.unbind_vertex(qv(e));
            }
            m
        };
        let via_spill = build(true);
        let never_spilled = build(false);
        assert!(via_spill.bindings_inline());
        assert_eq!(via_spill, never_spilled);
        assert_eq!(via_spill.cmp(&never_spilled), std::cmp::Ordering::Equal);
    }

    #[test]
    fn clear_resets_to_the_empty_match() {
        let mut m = SubgraphMatch::new();
        m.bind_vertex(qv(3), dv(30));
        m.bind_edge(qe(2), de(20), Timestamp(7));
        m.clear();
        assert_eq!(m, SubgraphMatch::new());
        assert!(m.is_empty());
        assert_eq!(m.duration(), 0);
    }

    #[test]
    fn usage_queries() {
        let mut m = SubgraphMatch::new();
        m.bind_vertex(qv(0), dv(10));
        m.bind_edge(qe(0), de(5), Timestamp(1));
        assert!(m.uses_data_vertex(dv(10)));
        assert!(!m.uses_data_vertex(dv(11)));
        assert!(m.uses_data_edge(de(5)));
        assert!(!m.uses_data_edge(de(6)));
        assert_eq!(m.data_vertex(qv(0)), Some(dv(10)));
        assert_eq!(m.data_edge(qe(0)), Some(de(5)));
        assert_eq!(m.data_edge(qe(9)), None);
    }
}
