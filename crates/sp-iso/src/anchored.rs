//! Anchored (local) subgraph isomorphism.
//!
//! These routines implement the `SUBGRAPH-ISO(Gd, gqsub, es)` primitive used
//! on every incoming edge by Algorithms 1 and 3: find every embedding of a
//! small query subgraph that contains the new data edge (or, for the lazy
//! retroactive search of Section 4, that touches a given data vertex). The
//! search never looks further than the neighborhood of already-bound
//! vertices, so its cost is bounded by `O(d̄^(k-1))` for a `k`-edge subgraph,
//! as analysed in Appendix A.

use crate::match_map::SubgraphMatch;
use sp_graph::{DynamicGraph, EdgeData, VertexId};
use sp_query::{QueryEdgeId, QueryGraph, QuerySubgraph};

/// Returns `true` when `data_edge` can be bound to query edge `qe`:
/// edge types are equal and both endpoint vertex types are acceptable.
pub fn edge_compatible(
    graph: &DynamicGraph,
    query: &QueryGraph,
    qe: QueryEdgeId,
    data_edge: &EdgeData,
) -> bool {
    let q = query.edge(qe);
    if q.edge_type != data_edge.edge_type {
        return false;
    }
    let src_ok = match graph.vertex_type(data_edge.src) {
        Some(t) => query.vertex(q.src).vertex_type.accepts(t),
        None => false,
    };
    let dst_ok = match graph.vertex_type(data_edge.dst) {
        Some(t) => query.vertex(q.dst).vertex_type.accepts(t),
        None => false,
    };
    src_ok && dst_ok
}

/// Reusable per-search state, owned by a long-lived pipeline stage (a query
/// engine, the shared-leaf index, the shared-join stage) rather than the
/// call: the steady-state per-edge path runs thousands of anchored searches
/// per second, and allocating a working match and result buffers per search
/// was the dominant allocator traffic of the hot path.
///
/// The `_into` search variants thread a scratch through the whole
/// backtracking extension; the working binding map is extended **in place
/// with undo** (bind → recurse → unbind + time-span restore) instead of
/// cloning the partial match once per candidate. Only completed matches are
/// cloned, into the caller's output buffer — a memcpy for every built-in
/// workload query (inline binding maps).
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    /// The working partial match, mutated in place during extension. Reused
    /// across seeds and searches: spilled binding storage (queries past the
    /// inline cap) keeps its capacity.
    work: SubgraphMatch,
    /// Reusable result buffer for callers that drain search results
    /// immediately instead of keeping them (e.g. the lazy retroactive
    /// probe). The `_into` variants never touch it.
    pub buf: Vec<SubgraphMatch>,
}

impl SearchScratch {
    /// An empty scratch. Capacity grows with use and persists across
    /// searches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all retained capacity, returning the scratch to its freshly
    /// constructed state (the `scratch reuse off` measurement arm).
    pub fn release(&mut self) {
        *self = Self::default();
    }
}

/// Finds every match of `subgraph` (a connected subgraph of `query`) in the
/// data graph that uses `data_edge` for one of its query edges.
///
/// This is the per-edge search performed by the engine: a new streaming edge
/// can only create matches that contain it, so anchoring the search on the
/// new edge is both correct and cheap.
///
/// Convenience wrapper over
/// [`find_matches_containing_edge_into`] that allocates a fresh scratch and
/// result vector; hot-path callers hold a [`SearchScratch`] and call the
/// `_into` variant instead.
pub fn find_matches_containing_edge(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    data_edge: &EdgeData,
) -> Vec<SubgraphMatch> {
    let mut scratch = SearchScratch::new();
    let mut results = Vec::new();
    find_matches_containing_edge_into(
        graph,
        query,
        subgraph,
        data_edge,
        &mut scratch,
        &mut results,
    );
    results
}

/// Allocation-free variant of [`find_matches_containing_edge`]: appends every
/// match to `results`, reusing the scratch's working state. `results` is not
/// cleared — callers own its lifecycle (and its capacity).
pub fn find_matches_containing_edge_into(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    data_edge: &EdgeData,
    scratch: &mut SearchScratch,
    results: &mut Vec<SubgraphMatch>,
) {
    let mut m = std::mem::take(&mut scratch.work);
    for qe in subgraph.edges() {
        if !edge_compatible(graph, query, qe, data_edge) {
            continue;
        }
        let q = query.edge(qe);
        m.clear();
        if !m.bind_vertex(q.src, data_edge.src) {
            continue;
        }
        if !m.bind_vertex(q.dst, data_edge.dst) {
            continue;
        }
        if !m.bind_edge(qe, data_edge.id, data_edge.timestamp) {
            continue;
        }
        extend(graph, query, subgraph, &mut m, results);
    }
    m.clear();
    scratch.work = m;
}

/// Finds every match of `subgraph` in which `data_vertex` is bound to one of
/// the subgraph's query vertices. Used by the Lazy Search retroactive probe:
/// when search for a leaf is first enabled on a vertex, the engine looks for
/// matches of that leaf that *already* exist around the vertex, which makes
/// the algorithm robust to the arrival order of the query's components
/// (Section 4, "Robustness with subgraph arrival order").
pub fn find_matches_around_vertex(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    data_vertex: VertexId,
) -> Vec<SubgraphMatch> {
    let mut scratch = SearchScratch::new();
    let mut results = Vec::new();
    find_matches_around_vertex_into(
        graph,
        query,
        subgraph,
        data_vertex,
        &mut scratch,
        &mut results,
    );
    results
}

/// Allocation-free variant of [`find_matches_around_vertex`]: appends every
/// match to `results`, reusing the scratch's working state. `results` is not
/// cleared — callers own its lifecycle (and its capacity).
pub fn find_matches_around_vertex_into(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    data_vertex: VertexId,
    scratch: &mut SearchScratch,
    results: &mut Vec<SubgraphMatch>,
) {
    let Some(vt) = graph.vertex_type(data_vertex) else {
        return;
    };
    let mut m = std::mem::take(&mut scratch.work);
    for qv in subgraph.vertices() {
        if !query.vertex(qv).vertex_type.accepts(vt) {
            continue;
        }
        m.clear();
        if !m.bind_vertex(qv, data_vertex) {
            continue;
        }
        extend(graph, query, subgraph, &mut m, results);
    }
    m.clear();
    scratch.work = m;
}

/// Backtracking extension: repeatedly picks an unmatched query edge with at
/// least one bound endpoint and enumerates the data edges that can be bound
/// to it from the neighborhood of the bound endpoint.
///
/// The working match is extended speculatively in place: every candidate
/// bind is undone (unbind + time-span restore) after the recursive call, so
/// no partial match is ever cloned — only completed matches are, into
/// `results`.
fn extend(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    m: &mut SubgraphMatch,
    results: &mut Vec<SubgraphMatch>,
) {
    // Complete when every subgraph edge is bound.
    if m.num_edges() == subgraph.num_edges() {
        results.push(m.clone());
        return;
    }

    // Pick the next query edge to bind: prefer one whose endpoints are both
    // bound (cheapest check), then one with a single bound endpoint.
    let mut best: Option<(QueryEdgeId, usize)> = None;
    for qe in subgraph.edges() {
        if m.data_edge(qe).is_some() {
            continue;
        }
        let q = query.edge(qe);
        let bound = usize::from(m.data_vertex(q.src).is_some())
            + usize::from(m.data_vertex(q.dst).is_some());
        match best {
            Some((_, b)) if b >= bound => {}
            _ => best = Some((qe, bound)),
        }
        if bound == 2 {
            break;
        }
    }
    let Some((qe, bound)) = best else {
        return;
    };
    let q = query.edge(qe);

    match bound {
        2 => {
            let src = m.data_vertex(q.src).expect("bound");
            let dst = m.data_vertex(q.dst).expect("bound");
            for e in graph.edges_between(src, dst) {
                if e.edge_type != q.edge_type || m.uses_data_edge(e.id) {
                    continue;
                }
                let span = m.time_span();
                if m.bind_edge(qe, e.id, e.timestamp) {
                    extend(graph, query, subgraph, m, results);
                    m.unbind_edge(qe);
                }
                m.restore_time_span(span);
            }
        }
        1 => {
            // Exactly one endpoint bound: walk that endpoint's incident edges
            // in the matching direction, straight off the adjacency iterator
            // (no candidate buffer — the graph is only ever borrowed
            // immutably here).
            let (bound_qv, free_qv, outgoing) = if m.data_vertex(q.src).is_some() {
                (q.src, q.dst, true)
            } else {
                (q.dst, q.src, false)
            };
            let anchor = m.data_vertex(bound_qv).expect("bound");
            if outgoing {
                for e in graph.out_edges(anchor) {
                    try_one_bound(graph, query, subgraph, m, results, qe, free_qv, e, true);
                }
            } else {
                for e in graph.in_edges(anchor) {
                    try_one_bound(graph, query, subgraph, m, results, qe, free_qv, e, false);
                }
            }
        }
        _ => {
            // No bound endpoint (disconnected subgraph or vertex-seeded search
            // where the seed vertex has no incident subgraph edge left): fall
            // back to scanning all live edges of the right type. Correct but
            // only used off the hot path.
            for e in graph.edges() {
                if e.edge_type != q.edge_type || m.uses_data_edge(e.id) {
                    continue;
                }
                if !edge_compatible(graph, query, qe, e) {
                    continue;
                }
                let span = m.time_span();
                // Both endpoints may name the same query vertex (a self-loop
                // edge): track which binds actually inserted, so the undo
                // removes exactly what this candidate added.
                if let Some(src_new) = m.bind_vertex_tracked(q.src, e.src) {
                    if let Some(dst_new) = m.bind_vertex_tracked(q.dst, e.dst) {
                        if m.bind_edge(qe, e.id, e.timestamp) {
                            extend(graph, query, subgraph, m, results);
                            m.unbind_edge(qe);
                        }
                        if dst_new {
                            m.unbind_vertex(q.dst);
                        }
                    }
                    if src_new {
                        m.unbind_vertex(q.src);
                    }
                }
                m.restore_time_span(span);
            }
        }
    }
}

/// One candidate of the single-bound-endpoint arm of [`extend`]: type- and
/// injectivity-check the edge, bind the free endpoint and the edge, recurse,
/// undo.
#[allow(clippy::too_many_arguments)]
fn try_one_bound(
    graph: &DynamicGraph,
    query: &QueryGraph,
    subgraph: &QuerySubgraph,
    m: &mut SubgraphMatch,
    results: &mut Vec<SubgraphMatch>,
    qe: QueryEdgeId,
    free_qv: sp_query::QueryVertexId,
    e: &EdgeData,
    outgoing: bool,
) {
    let q = query.edge(qe);
    if e.edge_type != q.edge_type || m.uses_data_edge(e.id) {
        return;
    }
    let free_data = if outgoing { e.dst } else { e.src };
    let Some(ft) = graph.vertex_type(free_data) else {
        return;
    };
    if !query.vertex(free_qv).vertex_type.accepts(ft) {
        return;
    }
    let span = m.time_span();
    // `free_qv` is the unbound endpoint of `qe`, so a successful bind always
    // inserts (and is undone unconditionally below).
    if m.bind_vertex(free_qv, free_data) {
        if m.bind_edge(qe, e.id, e.timestamp) {
            extend(graph, query, subgraph, m, results);
            m.unbind_edge(qe);
        }
        m.unbind_vertex(free_qv);
    }
    m.restore_time_span(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{Schema, Timestamp, VertexType};
    use sp_query::{QuerySubgraph, QueryVertexId};

    /// Builds a small data graph:
    ///   a -tcp-> b -udp-> c
    ///   a -tcp-> c
    ///   d -udp-> c
    fn fixture() -> (DynamicGraph, Vec<VertexId>) {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        let c = g.add_vertex(ip);
        let d = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(b, c, udp, Timestamp(2));
        g.add_edge(a, c, tcp, Timestamp(3));
        g.add_edge(d, c, udp, Timestamp(4));
        (g, vec![a, b, c, d])
    }

    fn tcp_udp_path_query(schema: &Schema) -> QueryGraph {
        // u0 -tcp-> u1 -udp-> u2
        let tcp = schema.edge_type("tcp").unwrap();
        let udp = schema.edge_type("udp").unwrap();
        let mut q = QueryGraph::new("tcp-udp");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        let u2 = q.add_any_vertex();
        q.add_edge(u0, u1, tcp);
        q.add_edge(u1, u2, udp);
        q
    }

    #[test]
    fn single_edge_match_containing_edge() {
        let (g, v) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let single = QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]);
        let e = *g.edges_between(v[0], v[1]).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &single, &e);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].data_vertex(QueryVertexId(0)), Some(v[0]));
        assert_eq!(matches[0].data_vertex(QueryVertexId(1)), Some(v[1]));
    }

    #[test]
    fn wrong_edge_type_does_not_match() {
        let (g, v) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let single = QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]); // tcp
        let udp_edge = *g.edges_between(v[1], v[2]).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &single, &udp_edge);
        assert!(matches.is_empty());
    }

    #[test]
    fn two_edge_path_match_containing_edge() {
        let (g, v) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let whole = QuerySubgraph::from_edges(&q, q.edge_ids());
        // Anchoring on a-tcp->b should discover the full a->b->c path.
        let e = *g.edges_between(v[0], v[1]).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &whole, &e);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].data_vertex(QueryVertexId(2)), Some(v[2]));
        assert_eq!(matches[0].num_edges(), 2);
        assert_eq!(matches[0].duration(), 1);
    }

    #[test]
    fn anchoring_on_shared_edge_finds_all_extensions() {
        let (g, v) = fixture();
        // Query: u0 -udp-> u1, i.e. any single udp edge.
        let udp = g.schema().edge_type("udp").unwrap();
        let mut q = QueryGraph::new("udp");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        q.add_edge(u0, u1, udp);
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
        let e = *g.edges_between(v[3], v[2]).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &sub, &e);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn vertex_anchored_search_finds_preexisting_matches() {
        let (g, v) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let whole = QuerySubgraph::from_edges(&q, q.edge_ids());
        // Around vertex b there is exactly one tcp->udp path (a->b->c).
        let matches = find_matches_around_vertex(&g, &q, &whole, v[1]);
        assert_eq!(matches.len(), 1);
        // Around vertex c, vertex c can play u1 (needs outgoing udp: none) or
        // u2 (two incoming udp edges, each with a tcp into their source?):
        //   b has incoming tcp from a -> match a->b->c
        //   d has no incoming tcp -> no match
        let matches_c = find_matches_around_vertex(&g, &q, &whole, v[2]);
        assert_eq!(matches_c.len(), 1);
    }

    #[test]
    fn vertex_type_constraints_are_enforced() {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let person = schema.intern_vertex_type("person");
        let knows = schema.intern_edge_type("knows");
        let mut g = DynamicGraph::new(schema);
        let p1 = g.add_vertex(person);
        let p2 = g.add_vertex(person);
        let host = g.add_vertex(ip);
        g.add_edge(p1, p2, knows, Timestamp(1));
        g.add_edge(p1, host, knows, Timestamp(2));

        // Query requires person -knows-> person.
        let mut q = QueryGraph::new("typed");
        let a = q.add_vertex(person);
        let b = q.add_vertex(person);
        q.add_edge(a, b, knows);
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());

        let e_ok = *g.edges_between(p1, p2).next().unwrap();
        let e_bad = *g.edges_between(p1, host).next().unwrap();
        assert_eq!(find_matches_containing_edge(&g, &q, &sub, &e_ok).len(), 1);
        assert!(find_matches_containing_edge(&g, &q, &sub, &e_bad).is_empty());
    }

    #[test]
    fn injectivity_prevents_vertex_reuse() {
        // Query: u0 -t-> u1 -t-> u2 (distinct vertices); data has a 2-cycle
        // a -t-> b -t-> a. The path a->b->a would need u0 and u2 both bound
        // to a, which isomorphism forbids.
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t = schema.intern_edge_type("t");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        g.add_edge(a, b, t, Timestamp(1));
        g.add_edge(b, a, t, Timestamp(2));

        let mut q = QueryGraph::new("path2");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        let u2 = q.add_any_vertex();
        q.add_edge(u0, u1, t);
        q.add_edge(u1, u2, t);
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());

        let e = *g.edges_between(a, b).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &sub, &e);
        assert!(
            matches.is_empty(),
            "a->b->a must be rejected, got {matches:?}"
        );
    }

    #[test]
    fn multi_edges_produce_distinct_matches() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t = schema.intern_edge_type("t");
        let u = schema.intern_edge_type("u");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let c = g.add_vertex(vt);
        g.add_edge(a, b, t, Timestamp(1));
        g.add_edge(b, c, u, Timestamp(2));
        g.add_edge(b, c, u, Timestamp(3)); // parallel edge

        let mut q = QueryGraph::new("t-u");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        let u2 = q.add_any_vertex();
        q.add_edge(u0, u1, t);
        q.add_edge(u1, u2, u);
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());

        let e = *g.edges_between(a, b).next().unwrap();
        let matches = find_matches_containing_edge(&g, &q, &sub, &e);
        assert_eq!(matches.len(), 2, "each parallel edge yields its own match");
    }

    #[test]
    fn self_anchor_on_missing_vertex_returns_nothing() {
        let (g, _) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let whole = QuerySubgraph::from_edges(&q, q.edge_ids());
        let matches = find_matches_around_vertex(&g, &q, &whole, VertexId(999));
        assert!(matches.is_empty());
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_searches() {
        // One scratch threaded through every search of the fixture must
        // yield exactly what per-call fresh scratches yield — no state may
        // leak between seeds or searches.
        let (g, v) = fixture();
        let q = tcp_udp_path_query(g.schema());
        let whole = QuerySubgraph::from_edges(&q, q.edge_ids());
        let single = QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]);

        let mut scratch = SearchScratch::new();
        let mut reused: Vec<SubgraphMatch> = Vec::new();
        let mut fresh: Vec<SubgraphMatch> = Vec::new();
        for e in g.edges() {
            find_matches_containing_edge_into(&g, &q, &whole, e, &mut scratch, &mut reused);
            find_matches_containing_edge_into(&g, &q, &single, e, &mut scratch, &mut reused);
            fresh.extend(find_matches_containing_edge(&g, &q, &whole, e));
            fresh.extend(find_matches_containing_edge(&g, &q, &single, e));
        }
        for &vx in &v {
            find_matches_around_vertex_into(&g, &q, &whole, vx, &mut scratch, &mut reused);
            fresh.extend(find_matches_around_vertex(&g, &q, &whole, vx));
        }
        assert!(!fresh.is_empty());
        assert_eq!(reused, fresh);
        // Releasing the scratch drops capacity but not correctness.
        scratch.release();
        let mut after_release = Vec::new();
        let e = *g.edges_between(v[0], v[1]).next().unwrap();
        find_matches_containing_edge_into(&g, &q, &whole, &e, &mut scratch, &mut after_release);
        assert_eq!(
            after_release,
            find_matches_containing_edge(&g, &q, &whole, &e)
        );
    }

    #[test]
    fn wildcard_vertex_type_in_query_accepts_any_data_type() {
        let (g, v) = fixture();
        let tcp = g.schema().edge_type("tcp").unwrap();
        let mut q = QueryGraph::new("wild");
        let a = q.add_vertex(VertexType::ANY);
        let b = q.add_vertex(VertexType::ANY);
        q.add_edge(a, b, tcp);
        let sub = QuerySubgraph::from_edges(&q, q.edge_ids());
        let e = *g.edges_between(v[0], v[2]).next().unwrap();
        assert_eq!(find_matches_containing_edge(&g, &q, &sub, &e).len(), 1);
    }
}
