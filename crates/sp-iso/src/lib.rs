//! # sp-iso — subgraph isomorphism for streaming pattern detection
//!
//! Three matching capabilities, mirroring the paper's use of subgraph
//! isomorphism:
//!
//! * [`SubgraphMatch`] — the representation of a (partial) match: a set of
//!   (query edge → data edge) pairs plus the induced (query vertex → data
//!   vertex) binding and the time interval spanned by the matched edges
//!   (Definition 3.1.2). Matches can be **joined** (Definition 3.1.3) and
//!   **projected** onto cut vertices to produce hash-join keys.
//! * [`anchored`] — local search: find every match of a small connected query
//!   subgraph that *contains a given data edge* or *touches a given data
//!   vertex*. This is the `SUBGRAPH-ISO(Gd, gqsub, es)` routine invoked for
//!   every incoming edge in Algorithms 1 and 3.
//! * [`vf2`] — full-graph enumeration used by the non-incremental baseline
//!   ("perform subgraph isomorphism for the query graph using VF2 on every
//!   new edge", Section 6).
//!
//! All matchers enforce *isomorphism* semantics: the vertex binding is
//! injective and no data edge is used twice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchored;
mod match_map;
pub mod vf2;

pub use anchored::{
    find_matches_around_vertex, find_matches_around_vertex_into, find_matches_containing_edge,
    find_matches_containing_edge_into, SearchScratch,
};
pub use match_map::{JoinKey, SubgraphMatch, JOIN_KEY_INLINE, MATCH_INLINE_BINDINGS};
pub use vf2::Vf2Matcher;
