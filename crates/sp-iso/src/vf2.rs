//! Full-graph subgraph isomorphism — the non-incremental baseline.
//!
//! The paper compares its incremental strategies against "a non-incremental
//! approach that performs subgraph isomorphism for the query graph (using
//! VF2) on every new edge in the dynamic graph" (Section 6). [`Vf2Matcher`]
//! plays that role: it enumerates every embedding of the query graph in the
//! current data graph, optionally restricted to embeddings that use a given
//! data edge (so that the per-edge baseline reports only the *new* matches,
//! like the incremental engine does).
//!
//! The implementation follows the VF2 recipe of candidate-pair expansion with
//! connectivity-driven candidate generation; it is deliberately selectivity
//! *agnostic* — the query edges are explored in their textual order, which is
//! exactly the behaviour the paper's baseline exhibits.

use crate::anchored::find_matches_containing_edge;
use crate::match_map::SubgraphMatch;
use sp_graph::{DynamicGraph, EdgeData};
use sp_query::{QueryGraph, QuerySubgraph};

/// Enumerates embeddings of a full query graph in the data graph.
#[derive(Debug, Clone)]
pub struct Vf2Matcher {
    query: QueryGraph,
    whole: QuerySubgraph,
}

impl Vf2Matcher {
    /// Creates a matcher for the given query graph.
    ///
    /// # Panics
    /// Panics if the query graph is empty or disconnected: the baseline (like
    /// the SJ-Tree engine) only supports connected queries.
    pub fn new(query: QueryGraph) -> Self {
        assert!(query.num_edges() > 0, "query graph must have edges");
        assert!(query.is_connected(), "query graph must be connected");
        let whole = QuerySubgraph::from_edges(&query, query.edge_ids());
        Self { query, whole }
    }

    /// The query graph this matcher searches for.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Enumerates every embedding of the query in the current data graph.
    ///
    /// Each embedding is reported exactly once: the first query edge is
    /// anchored on every compatible data edge in turn, and an embedding binds
    /// the first query edge to exactly one data edge.
    pub fn find_all(&self, graph: &DynamicGraph) -> Vec<SubgraphMatch> {
        let first = self.query.edge_ids().next().expect("non-empty query graph");
        let first_type = self.query.edge(first).edge_type;
        let mut out = Vec::new();
        // Snapshot candidate anchor edges to avoid holding the iterator while
        // the anchored search walks the graph.
        let anchors: Vec<EdgeData> = graph
            .edges()
            .filter(|e| e.edge_type == first_type)
            .copied()
            .collect();
        for anchor in anchors {
            for m in find_matches_containing_edge(graph, &self.query, &self.whole, &anchor) {
                // Keep only embeddings where the anchor serves the *first*
                // query edge; other bindings of the anchor are discovered
                // when their own first-edge anchor is processed.
                if m.data_edge(first) == Some(anchor.id) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Enumerates the embeddings that use `new_edge` — the per-edge work item
    /// of the non-incremental baseline. The cost is the same whole-graph
    /// exploration around the new edge that VF2 performs, but the result set
    /// is limited to genuinely new matches so that output volume matches the
    /// incremental strategies.
    pub fn find_containing_edge(
        &self,
        graph: &DynamicGraph,
        new_edge: &EdgeData,
    ) -> Vec<SubgraphMatch> {
        find_matches_containing_edge(graph, &self.query, &self.whole, new_edge)
    }

    /// Counts all embeddings without materializing them (used in tests and
    /// sanity checks).
    pub fn count_all(&self, graph: &DynamicGraph) -> usize {
        self.find_all(graph).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{Schema, Timestamp};
    use sp_query::QueryVertexId;

    /// Star: hub sends tcp to k leaves; query is a 2-edge out-out wedge.
    #[test]
    fn counts_wedges_in_a_star() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let mut g = DynamicGraph::new(schema);
        let hub = g.add_vertex(vt);
        for i in 0..4 {
            let leaf = g.add_vertex(vt);
            g.add_edge(hub, leaf, tcp, Timestamp(i));
        }
        let mut q = QueryGraph::new("wedge");
        let c = q.add_any_vertex();
        let l1 = q.add_any_vertex();
        let l2 = q.add_any_vertex();
        q.add_edge(c, l1, tcp);
        q.add_edge(c, l2, tcp);
        let m = Vf2Matcher::new(q);
        // Ordered pairs of distinct leaves: 4 * 3 = 12 embeddings.
        assert_eq!(m.count_all(&g), 12);
    }

    #[test]
    fn directed_path_is_found_in_one_direction_only() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let a_t = schema.intern_edge_type("a");
        let b_t = schema.intern_edge_type("b");
        let mut g = DynamicGraph::new(schema);
        let x = g.add_vertex(vt);
        let y = g.add_vertex(vt);
        let z = g.add_vertex(vt);
        g.add_edge(x, y, a_t, Timestamp(1));
        g.add_edge(y, z, b_t, Timestamp(2));
        g.add_edge(z, y, a_t, Timestamp(3)); // wrong direction for the path

        let mut q = QueryGraph::new("a-then-b");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        let u2 = q.add_any_vertex();
        q.add_edge(u0, u1, a_t);
        q.add_edge(u1, u2, b_t);
        let m = Vf2Matcher::new(q);
        let all = m.find_all(&g);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].data_vertex(QueryVertexId(0)), Some(x));
        assert_eq!(all[0].data_vertex(QueryVertexId(2)), Some(z));
    }

    #[test]
    fn find_containing_edge_only_reports_matches_with_that_edge() {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t = schema.intern_edge_type("t");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let c = g.add_vertex(vt);
        let d = g.add_vertex(vt);
        g.add_edge(a, b, t, Timestamp(1));
        let e_cd = g.add_edge(c, d, t, Timestamp(2));

        let mut q = QueryGraph::new("one-edge");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        q.add_edge(u0, u1, t);
        let m = Vf2Matcher::new(q);
        assert_eq!(m.count_all(&g), 2);
        let edge = *g.edge(e_cd).unwrap();
        let around = m.find_containing_edge(&g, &edge);
        assert_eq!(around.len(), 1);
        assert_eq!(around[0].data_vertex(QueryVertexId(0)), Some(c));
    }

    #[test]
    fn triangle_query_on_triangle_data() {
        // Cyclic query: the DAG-decomposition approaches of related work
        // cannot express this; our matcher must (Section 2.2 discussion).
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t = schema.intern_edge_type("t");
        let mut g = DynamicGraph::new(schema);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let c = g.add_vertex(vt);
        g.add_edge(a, b, t, Timestamp(1));
        g.add_edge(b, c, t, Timestamp(2));
        g.add_edge(c, a, t, Timestamp(3));

        let mut q = QueryGraph::new("triangle");
        let u0 = q.add_any_vertex();
        let u1 = q.add_any_vertex();
        let u2 = q.add_any_vertex();
        q.add_edge(u0, u1, t);
        q.add_edge(u1, u2, t);
        q.add_edge(u2, u0, t);
        let m = Vf2Matcher::new(q);
        // The directed 3-cycle has 3 rotational embeddings.
        assert_eq!(m.count_all(&g), 3);
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn disconnected_query_is_rejected() {
        let mut q = QueryGraph::new("bad");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let d = q.add_any_vertex();
        q.add_edge(a, b, sp_graph::EdgeType(0));
        q.add_edge(c, d, sp_graph::EdgeType(0));
        let _ = Vf2Matcher::new(q);
    }

    #[test]
    #[should_panic(expected = "must have edges")]
    fn empty_query_is_rejected() {
        let q = QueryGraph::new("empty");
        let _ = Vf2Matcher::new(q);
    }
}
