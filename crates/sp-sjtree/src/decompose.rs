//! Greedy selectivity-driven query decomposition — Algorithm 4,
//! `BUILD-SJ-TREE`.
//!
//! Given the query graph and the distributional statistics of the stream, the
//! decomposition repeatedly peels off the most selective (least frequent)
//! primitive that touches the current frontier, producing the ordered leaf
//! list of a left-deep SJ-Tree:
//!
//! * with [`PrimitivePolicy::SingleEdge`] the primitives are single query
//!   edges — the "Single" decomposition of Section 6.4;
//! * with [`PrimitivePolicy::TwoEdgePath`] the primitives are 2-edge paths
//!   (wedges), falling back to single edges when the remaining query edges
//!   cannot form a wedge on the frontier — the "Path" decomposition. As in
//!   the paper's query-sweep methodology, wedges whose signature was never
//!   observed in the sampled stream are not used (they would make the query
//!   "artificially discriminative"); the decomposition falls back to single
//!   edges instead.

use crate::tree::SjTree;
use serde::{Deserialize, Serialize};
use sp_query::{Primitive, QueryEdgeId, QueryGraph, QuerySubgraph, QueryVertexId};
use sp_selectivity::SelectivityEstimator;
use std::collections::BTreeSet;
use std::fmt;

/// Which primitive family the decomposition may use for its leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimitivePolicy {
    /// Only single-edge leaves ("Single" / "SingleLazy" strategies).
    SingleEdge,
    /// Prefer 2-edge path leaves, fall back to single edges
    /// ("Path" / "PathLazy" strategies).
    TwoEdgePath,
}

impl fmt::Display for PrimitivePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimitivePolicy::SingleEdge => write!(f, "single-edge"),
            PrimitivePolicy::TwoEdgePath => write!(f, "2-edge-path"),
        }
    }
}

/// Errors from [`decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompositionError {
    /// The query graph has no edges.
    EmptyQuery,
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::EmptyQuery => write!(f, "query graph has no edges"),
        }
    }
}

impl std::error::Error for DecompositionError {}

/// One candidate leaf considered by the greedy loop.
struct Candidate {
    edges: Vec<QueryEdgeId>,
    frequency: u64,
}

/// Decomposes `query` into an SJ-Tree using the greedy algorithm of the
/// paper: the most selective primitive is chosen first, and every subsequent
/// primitive must touch the frontier (the vertices of previously chosen
/// primitives), so that the join order follows the query's connectivity.
pub fn decompose(
    query: &QueryGraph,
    policy: PrimitivePolicy,
    estimator: &SelectivityEstimator,
) -> Result<SjTree, DecompositionError> {
    if query.num_edges() == 0 {
        return Err(DecompositionError::EmptyQuery);
    }
    let mut remaining: BTreeSet<QueryEdgeId> = query.edge_ids().collect();
    let mut frontier: BTreeSet<QueryVertexId> = BTreeSet::new();
    let mut leaves: Vec<QuerySubgraph> = Vec::new();

    while !remaining.is_empty() {
        let candidate = select_candidate(query, policy, estimator, &remaining, &frontier)
            .expect("a non-empty remaining set always yields at least one single-edge candidate");
        let subgraph = QuerySubgraph::from_edges(query, candidate.edges.iter().copied());
        for v in subgraph.vertices() {
            frontier.insert(v);
        }
        for e in subgraph.edges() {
            remaining.remove(&e);
        }
        leaves.push(subgraph);
    }

    Ok(SjTree::from_leaves(query.clone(), leaves))
}

/// Enumerates the candidate primitives over the remaining edges and returns
/// the least frequent one. Frontier handling follows Algorithm 4: once the
/// frontier is non-empty, candidates must include a frontier vertex; if no
/// remaining edge touches the frontier (disconnected query), the constraint
/// is relaxed so that decomposition still terminates.
fn select_candidate(
    query: &QueryGraph,
    policy: PrimitivePolicy,
    estimator: &SelectivityEstimator,
    remaining: &BTreeSet<QueryEdgeId>,
    frontier: &BTreeSet<QueryVertexId>,
) -> Option<Candidate> {
    let touches_frontier = |edges: &[QueryEdgeId]| -> bool {
        frontier.is_empty()
            || edges.iter().any(|&e| {
                let q = query.edge(e);
                frontier.contains(&q.src) || frontier.contains(&q.dst)
            })
    };

    fn consider(best: &mut Option<Candidate>, cand: Candidate) {
        let better = match best {
            None => true,
            Some(b) => (cand.frequency, &cand.edges) < (b.frequency, &b.edges),
        };
        if better {
            *best = Some(cand);
        }
    }

    let mut best: Option<Candidate> = None;

    // Wedge candidates (2-edge paths) when the policy allows them.
    if policy == PrimitivePolicy::TwoEdgePath {
        let edges: Vec<QueryEdgeId> = remaining.iter().copied().collect();
        for (i, &a) in edges.iter().enumerate() {
            for &b in &edges[i + 1..] {
                let Some(primitive) = query.wedge_primitive(a, b) else {
                    continue;
                };
                if !touches_frontier(&[a, b]) {
                    continue;
                }
                // Unseen wedges are skipped: the generator "resorts to a
                // single-edge based decomposition when a query subgraph
                // contains an unseen 2-edge path" (Section 6.4).
                if estimator.is_unseen(&primitive) {
                    continue;
                }
                consider(
                    &mut best,
                    Candidate {
                        edges: vec![a, b],
                        frequency: estimator.frequency(&primitive),
                    },
                );
            }
        }
    }

    // Single-edge candidates: always available for the SingleEdge policy and
    // as a fallback when no wedge candidate was admissible.
    if policy == PrimitivePolicy::SingleEdge || best.is_none() {
        for &e in remaining.iter() {
            if !touches_frontier(&[e]) {
                continue;
            }
            let primitive = query.edge_primitive(e);
            consider(
                &mut best,
                Candidate {
                    edges: vec![e],
                    frequency: estimator.frequency(&primitive),
                },
            );
        }
    }

    // Relax the frontier constraint if nothing touched it (disconnected
    // query): take the rarest remaining single edge.
    if best.is_none() {
        for &e in remaining.iter() {
            let primitive = query.edge_primitive(e);
            consider(
                &mut best,
                Candidate {
                    edges: vec![e],
                    frequency: estimator.frequency(&primitive),
                },
            );
        }
    }

    best
}

/// Expected Selectivity of an existing tree under an estimator — convenience
/// wrapper used when comparing decompositions (Section 5.2, Equation 1) and
/// by the automatic strategy selection.
pub fn expected_selectivity(
    tree: &SjTree,
    estimator: &SelectivityEstimator,
) -> sp_selectivity::DecompositionSelectivity {
    let primitives: Vec<Primitive> = tree
        .leaf_subgraphs()
        .map(|sg| {
            sg.primitive(tree.query())
                .expect("SJ-Tree leaves are always 1- or 2-edge primitives")
        })
        .collect();
    estimator.expected_selectivity(primitives.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{DynamicGraph, EdgeType, Schema, Timestamp};

    /// Stream sample where "tcp" is very common, "esp" is rare, and the
    /// esp→tcp wedge exists but is rare.
    fn sample_estimator() -> (Schema, SelectivityEstimator) {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let udp = schema.intern_edge_type("udp");
        let esp = schema.intern_edge_type("esp");
        let icmp = schema.intern_edge_type("icmp");
        let mut g = DynamicGraph::new(schema.clone());
        let nodes: Vec<_> = (0..40).map(|_| g.add_vertex(vt)).collect();
        let mut ts = 0u64;
        let mut add = |g: &mut DynamicGraph, s: usize, d: usize, t: EdgeType| {
            let ts_now = Timestamp(ts);
            g.add_edge(nodes[s], nodes[d], t, ts_now);
            ts += 1;
        };
        // Long tcp chain (frequent).
        for i in 0..30 {
            add(&mut g, i, i + 1, tcp);
        }
        // Some udp.
        for i in 0..10 {
            add(&mut g, i, i + 2, udp);
        }
        // Rare esp and icmp, forming esp->tcp and icmp->tcp wedges.
        add(&mut g, 35, 0, esp);
        add(&mut g, 36, 1, icmp);
        add(&mut g, 37, 2, icmp);
        (schema, SelectivityEstimator::from_graph(&g))
    }

    /// Path query: esp, tcp, udp, tcp (like Figure 8's ESP-TCP-ICMP-GRE).
    fn path_query(schema: &Schema) -> QueryGraph {
        let mut q = QueryGraph::new("esp-tcp-udp");
        let v: Vec<_> = (0..4).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], schema.edge_type("esp").unwrap());
        q.add_edge(v[1], v[2], schema.edge_type("tcp").unwrap());
        q.add_edge(v[2], v[3], schema.edge_type("udp").unwrap());
        q
    }

    #[test]
    fn single_edge_decomposition_orders_leaves_by_rarity() {
        let (schema, est) = sample_estimator();
        let q = path_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        assert_eq!(tree.num_leaves(), 3);
        // First leaf must be the esp edge (rarest).
        let first = tree.subgraph(tree.leaf(0));
        let prim = first.primitive(tree.query()).unwrap();
        assert_eq!(
            prim,
            Primitive::SingleEdge(schema.edge_type("esp").unwrap())
        );
        // All leaves are single edges.
        for sg in tree.leaf_subgraphs() {
            assert_eq!(sg.num_edges(), 1);
        }
    }

    #[test]
    fn frontier_constraint_keeps_decomposition_connected() {
        let (schema, est) = sample_estimator();
        let q = path_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        // Each successive accumulated join must be connected: the cut of every
        // internal node is non-empty.
        for node in tree.nodes() {
            if !node.is_leaf() {
                assert!(
                    !node.cut_vertices.is_empty(),
                    "internal node {} has an empty cut",
                    node.id
                );
            }
        }
    }

    #[test]
    fn path_decomposition_uses_wedges_and_falls_back_to_single_edges() {
        let (schema, est) = sample_estimator();
        let q = path_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::TwoEdgePath, &est).unwrap();
        // 3 edges: one wedge + one single edge = 2 leaves.
        assert_eq!(tree.num_leaves(), 2);
        let sizes: Vec<usize> = tree.leaf_subgraphs().map(|s| s.num_edges()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        // The whole query is still covered.
        assert!(tree.subgraph(tree.root()).covers(tree.query()));
    }

    #[test]
    fn unseen_wedges_are_skipped() {
        let (schema, est) = sample_estimator();
        // Query with an esp edge followed by another esp edge: the esp-esp
        // wedge never occurs in the sample, so the decomposition must not use
        // it even under the TwoEdgePath policy.
        let esp = schema.edge_type("esp").unwrap();
        let mut q = QueryGraph::new("esp-esp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, esp);
        let tree = decompose(&q, PrimitivePolicy::TwoEdgePath, &est).unwrap();
        assert_eq!(tree.num_leaves(), 2, "must fall back to two single edges");
    }

    #[test]
    fn empty_query_is_an_error() {
        let (_, est) = sample_estimator();
        let q = QueryGraph::new("empty");
        assert!(matches!(
            decompose(&q, PrimitivePolicy::SingleEdge, &est),
            Err(DecompositionError::EmptyQuery)
        ));
    }

    #[test]
    fn expected_selectivity_of_path_tree_is_lower() {
        // A 2-edge decomposition is expected to be more selective (lower
        // Ŝ) than the 1-edge decomposition of the same query, which is what
        // makes Relative Selectivity < 1 (Section 6.5).
        let (schema, est) = sample_estimator();
        let q = path_query(&schema);
        let single = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let path = decompose(&q, PrimitivePolicy::TwoEdgePath, &est).unwrap();
        let s1 = expected_selectivity(&single, &est);
        let sk = expected_selectivity(&path, &est);
        assert!(sk.expected <= s1.expected);
        let xi = sk.relative_to(&s1);
        assert!(xi <= 1.0);
        assert!(xi > 0.0);
    }

    #[test]
    fn decomposition_handles_tree_queries() {
        let (schema, est) = sample_estimator();
        let tcp = schema.edge_type("tcp").unwrap();
        let udp = schema.edge_type("udp").unwrap();
        let icmp = schema.edge_type("icmp").unwrap();
        // Star query: center with 3 outgoing edges of different types.
        let mut q = QueryGraph::new("star3");
        let c = q.add_any_vertex();
        for t in [tcp, udp, icmp] {
            let leaf = q.add_any_vertex();
            q.add_edge(c, leaf, t);
        }
        for policy in [PrimitivePolicy::SingleEdge, PrimitivePolicy::TwoEdgePath] {
            let tree = decompose(&q, policy, &est).unwrap();
            assert!(tree.subgraph(tree.root()).covers(tree.query()));
            let total_edges: usize = tree.leaf_subgraphs().map(|s| s.num_edges()).sum();
            assert_eq!(total_edges, 3);
        }
    }

    #[test]
    fn disconnected_query_still_decomposes() {
        let (schema, est) = sample_estimator();
        let tcp = schema.edge_type("tcp").unwrap();
        let mut q = QueryGraph::new("two-islands");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        let d = q.add_any_vertex();
        q.add_edge(a, b, tcp);
        q.add_edge(c, d, tcp);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        assert_eq!(tree.num_leaves(), 2);
        // The cut between the islands is empty — allowed, just a cross join.
        assert!(tree.node(tree.root()).cut_vertices.is_empty());
    }
}
