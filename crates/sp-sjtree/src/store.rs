//! Partial-match storage and the recursive hash-join update
//! (`UPDATE-SJ-TREE`, Algorithm 2).
//!
//! Every SJ-Tree node owns a hash table of the matches of its query subgraph
//! (Property 3). The hash key of a match stored at node `n` is the projection
//! of the match onto the *cut vertices* of `n`'s parent (Property 4), so that
//! probing the sibling's table with the same key yields exactly the partial
//! matches that agree on the shared vertices — a hash join.
//!
//! When a new match is inserted at a node, it is joined with every compatible
//! match of the sibling; each successful join is recursively inserted one
//! level up. A join that reaches the root is a complete match of the query
//! and is returned to the caller instead of being stored.
//!
//! # Two storage backings
//!
//! A store runs in one of two representations:
//!
//! * **Materialized** — buckets hold [`SubgraphMatch`] values directly. For
//!   queries whose matches fit the inline binding maps this is already
//!   allocation-free, and it is the representation callers observe at the
//!   emit boundary.
//! * **Interned** — every stored match is a fixed-width row of `u64` slots
//!   in a store-owned [`RowArena`]: one slot per query edge (slot index =
//!   `QueryEdgeId.0`), one per query vertex (`ew + QueryVertexId.0`), plus
//!   two timestamp words. Buckets hold copyable `u32` row ids; joins read
//!   and write slots at fixed offsets; matches are materialized back into
//!   [`SubgraphMatch`] form only when a join reaches the root
//!   (*copy-on-emit*). Matches that spill the inline binding maps (> 8
//!   bindings) heap-allocate on every clone in the materialized backing —
//!   the interned backing stores them with **zero** steady-state
//!   allocations, because expired rows recycle through the arena free list.
//!
//! Both backings run the identical Algorithm-2 flow (same keys, same
//! per-bucket sort order, same window filter), which the multiset
//! equivalence suites pin down.

use crate::node::NodeId;
use crate::tree::SjTree;
use sp_graph::{DynamicGraph, EdgeId, Timestamp, VertexId};
use sp_iso::{JoinKey, SubgraphMatch, JOIN_KEY_INLINE};
use sp_query::QueryVertexId;
use std::collections::HashMap;

/// Hash table of materialized matches for one SJ-Tree node, keyed by the
/// projection of each match onto the parent's cut vertices. Keys are
/// interned [`JoinKey`]s — cut sets of up to three vertices (every tree the
/// built-in decompositions produce) are stored inline, so computing the key
/// per insert does not heap-allocate. Every bucket is kept **sorted** (by
/// `SubgraphMatch`'s derived ordering) so duplicate detection on insert is a
/// binary search instead of a linear scan — on a high-fan-in cut vertex a
/// single bucket can hold thousands of partial matches, and the old
/// `bucket.contains(&m)` scan made every insert `O(n)`.
type MatTable = HashMap<JoinKey, Vec<SubgraphMatch>>;

/// Hash table of interned matches for one node: buckets hold arena row ids,
/// sorted by the rows' full-slot lexicographic order (which coincides with
/// the materialized ordering inside a bucket — see [`RowArena::cmp_rows`]).
type RowTable = HashMap<JoinKey, Vec<u32>>;

/// Upper bound on recycled bucket vectors kept in a store's free list. A
/// purge can empty thousands of buckets at once; retaining a bounded pool
/// keeps steady-state inserts allocation-free without pinning a whole
/// window's worth of peak memory forever.
const SPARE_BUCKETS_CAP: usize = 1024;

/// Slot value marking an unbound query edge/vertex in an interned row. Data
/// ids are dense indices assigned by the graph, so `u64::MAX` can never be a
/// real binding (debug-asserted on encode).
const UNBOUND: u64 = u64::MAX;

/// Moves an emptied bucket into the free list, dropping it instead when the
/// pool is full or the bucket never grew.
fn recycle<T>(spare: &mut Vec<Vec<T>>, mut bucket: Vec<T>) {
    if spare.len() < SPARE_BUCKETS_CAP && bucket.capacity() > 0 {
        bucket.clear();
        spare.push(bucket);
    }
}

/// The slab behind an interned [`MatchStore`]: every stored match is one
/// fixed-width row of `stride` consecutive `u64` words in `data`.
///
/// Row layout (slot schema), derived from the query's canonical numbering:
///
/// ```text
/// [ edge slots 0..ew ][ vertex slots ew..ew+vw ][ earliest ][ latest ]
///   slot i = QueryEdgeId(i)   slot ew+j = QueryVertexId(j)
/// ```
///
/// Unbound slots hold [`UNBOUND`]. Rows freed by window expiry, duplicate
/// rejection or emit go on `free` and are reused by the next alloc, so a
/// warm arena grows only while live state grows.
#[derive(Debug, Clone)]
struct RowArena {
    /// Edge-slot count = the query's edge count.
    ew: usize,
    /// Vertex-slot count = the query's vertex count.
    vw: usize,
    /// Words per row: `ew + vw + 2` timestamp words.
    stride: usize,
    data: Vec<u64>,
    /// Recycled row ids.
    free: Vec<u32>,
}

impl RowArena {
    fn new(ew: usize, vw: usize) -> Self {
        Self {
            ew,
            vw,
            stride: ew + vw + 2,
            data: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Claims a row (recycled when possible) with every binding slot reset
    /// to [`UNBOUND`]. Callers overwrite the timestamp words.
    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(r) => {
                let b = r as usize * self.stride;
                self.data[b..b + self.stride].fill(UNBOUND);
                r
            }
            None => {
                let r = (self.data.len() / self.stride) as u32;
                self.data.resize(self.data.len() + self.stride, UNBOUND);
                r
            }
        }
    }

    /// Returns a row to the free list.
    fn release(&mut self, row: u32) {
        self.free.push(row);
    }

    fn base(&self, row: u32) -> usize {
        row as usize * self.stride
    }

    /// Encodes a materialized match into a fresh row.
    fn encode(&mut self, m: &SubgraphMatch) -> u32 {
        let row = self.alloc();
        let b = self.base(row);
        for (qe, de) in m.edge_pairs() {
            debug_assert!(qe.0 < self.ew && de.0 != UNBOUND);
            self.data[b + qe.0] = de.0;
        }
        for (qv, dv) in m.vertex_pairs() {
            debug_assert!(qv.0 < self.vw && dv.0 != UNBOUND);
            self.data[b + self.ew + qv.0] = dv.0;
        }
        let (earliest, latest) = m.time_span();
        self.data[b + self.ew + self.vw] = earliest.0;
        self.data[b + self.ew + self.vw + 1] = latest.0;
        row
    }

    /// Materializes a row back into caller-visible [`SubgraphMatch`] form —
    /// the copy-on-emit boundary. Slots are scanned in ascending index (=
    /// ascending query-id) order, so the binding maps are built by plain
    /// appends.
    fn decode(&self, row: u32) -> SubgraphMatch {
        let b = self.base(row);
        SubgraphMatch::from_sorted_bindings(
            (0..self.ew).filter_map(|i| {
                let v = self.data[b + i];
                (v != UNBOUND).then_some((sp_query::QueryEdgeId(i), EdgeId(v)))
            }),
            (0..self.vw).filter_map(|i| {
                let v = self.data[b + self.ew + i];
                (v != UNBOUND).then_some((QueryVertexId(i), VertexId(v)))
            }),
            Timestamp(self.data[b + self.ew + self.vw]),
            Timestamp(self.data[b + self.ew + self.vw + 1]),
        )
    }

    /// The bound data vertices of a row in ascending query-vertex order —
    /// what the Lazy Search trace records per newly stored match.
    fn row_vertices(&self, row: u32) -> impl Iterator<Item = VertexId> + '_ {
        let b = self.base(row);
        (0..self.vw).filter_map(move |i| {
            let v = self.data[b + self.ew + i];
            (v != UNBOUND).then_some(VertexId(v))
        })
    }

    /// Projects a row onto the parent's cut vertices as an interned
    /// [`JoinKey`], reading each cut vertex from its fixed slot offset.
    /// Returns `None` when any cut vertex is unbound (mirrors
    /// [`SubgraphMatch::project_key`]).
    fn project_key(&self, row: u32, cut: &[QueryVertexId]) -> Option<JoinKey> {
        let b = self.base(row) + self.ew;
        if cut.len() <= JOIN_KEY_INLINE {
            let mut ids = [VertexId(0); JOIN_KEY_INLINE];
            for (slot, &q) in ids.iter_mut().zip(cut) {
                let v = self.data[b + q.0];
                if v == UNBOUND {
                    return None;
                }
                *slot = VertexId(v);
            }
            Some(JoinKey::Inline(cut.len() as u8, ids))
        } else {
            let mut ids = Vec::with_capacity(cut.len());
            for &q in cut {
                let v = self.data[b + q.0];
                if v == UNBOUND {
                    return None;
                }
                ids.push(VertexId(v));
            }
            Some(JoinKey::Spilled(ids))
        }
    }

    /// Full-row lexicographic comparison. Inside one bucket every row binds
    /// exactly the same slot set (all matches at node `n` are matches of
    /// `subgraph(n)`), so unbound slots compare equal and the order reduces
    /// to data bindings in ascending query-id order followed by the time
    /// span — exactly `SubgraphMatch`'s derived ordering restricted to a
    /// bucket. Dedup and sorted-insert therefore behave identically in both
    /// backings.
    fn cmp_rows(&self, a: u32, b: u32) -> std::cmp::Ordering {
        let (ab, bb) = (self.base(a), self.base(b));
        self.data[ab..ab + self.stride].cmp(&self.data[bb..bb + self.stride])
    }

    /// Joins two rows if they are compatible, writing the union into a fresh
    /// row — the interned mirror of [`SubgraphMatch::compatible_with`] +
    /// [`SubgraphMatch::join`], plus the window filter (applied *before*
    /// allocating, so rejected joins cost no row traffic):
    ///
    /// * vertex slots bound by both rows must agree;
    /// * the union binding must stay injective (no data vertex at two
    ///   distinct vertex slots);
    /// * no edge slot may be bound by both rows (the decomposition
    ///   partitions query edges) and no data edge may be reused;
    /// * `earliest`/`latest` are the union interval, and with a window `tw`
    ///   the joined span must stay `< tw`.
    fn join_rows(&mut self, a: u32, b: u32, window: Option<u64>) -> Option<u32> {
        let (ew, vw) = (self.ew, self.vw);
        let (ab, bb) = (self.base(a), self.base(b));
        for i in 0..vw {
            let (av, bv) = (self.data[ab + ew + i], self.data[bb + ew + i]);
            if av != UNBOUND && bv != UNBOUND && av != bv {
                return None;
            }
            let ui = if av != UNBOUND { av } else { bv };
            if ui == UNBOUND {
                continue;
            }
            for j in 0..i {
                let (aj, bj) = (self.data[ab + ew + j], self.data[bb + ew + j]);
                let uj = if aj != UNBOUND { aj } else { bj };
                if uj == ui {
                    return None;
                }
            }
        }
        for i in 0..ew {
            let ae = self.data[ab + i];
            if ae == UNBOUND {
                continue;
            }
            if self.data[bb + i] != UNBOUND {
                return None;
            }
            for j in 0..ew {
                if self.data[bb + j] == ae {
                    return None;
                }
            }
        }
        let earliest = self.data[ab + ew + vw].min(self.data[bb + ew + vw]);
        let latest = self.data[ab + ew + vw + 1].max(self.data[bb + ew + vw + 1]);
        if let Some(tw) = window {
            if latest.saturating_sub(earliest) >= tw {
                return None;
            }
        }
        let out = self.alloc();
        // `alloc` may grow `data`; the row *offsets* stay valid, so re-index
        // rather than holding slices across it.
        let (ab, bb, ob) = (self.base(a), self.base(b), self.base(out));
        for i in 0..ew + vw {
            let av = self.data[ab + i];
            self.data[ob + i] = if av != UNBOUND { av } else { self.data[bb + i] };
        }
        self.data[ob + ew + vw] = earliest;
        self.data[ob + ew + vw + 1] = latest;
        Some(out)
    }

    /// `earliest` of a row slice (for the purge paths, which walk raw rows).
    fn slice_earliest(row: &[u64], ew: usize, vw: usize) -> u64 {
        row[ew + vw]
    }
}

/// The storage backing of a [`MatchStore`]; see the module docs for the
/// trade-off. Both variants share the `inserted` lifetime counters on the
/// store itself, so conversion preserves every externally visible counter.
#[derive(Debug, Clone)]
enum Backing {
    Materialized {
        tables: Vec<MatTable>,
        /// Free list of emptied bucket vectors (capacity preserved),
        /// refilled by the purge/clear paths and drained by inserts at
        /// previously unseen join keys.
        spare: Vec<Vec<SubgraphMatch>>,
    },
    Interned {
        arena: RowArena,
        tables: Vec<RowTable>,
        spare: Vec<Vec<u32>>,
    },
}

/// The flat, allocation-free record of one recursive insert: which nodes
/// stored a new match, and each new match's bound data vertices in ascending
/// query-vertex order. The Lazy Search engine consumes exactly this (the
/// vertices seed `ENABLE-SEARCH-SIBLING`, Algorithm 3); recording full
/// `SubgraphMatch` clones — as the trace used to — put one allocation per
/// traced insert back on the hot path for spilled (>8-binding) matches.
#[derive(Debug, Clone, Default)]
pub struct InsertTrace {
    /// `(node, start, end)`: one entry per newly stored match, with
    /// `vertices[start..end]` its bound data vertices.
    items: Vec<(NodeId, u32, u32)>,
    vertices: Vec<VertexId>,
}

impl InsertTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the trace, keeping both buffers' capacity.
    pub fn clear(&mut self) {
        self.items.clear();
        self.vertices.clear();
    }

    /// Number of newly stored matches recorded.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The node the `i`-th recorded match was stored at.
    pub fn node(&self, i: usize) -> NodeId {
        self.items[i].0
    }

    /// The `i`-th recorded match's bound data vertices, in ascending
    /// query-vertex order.
    pub fn vertices(&self, i: usize) -> &[VertexId] {
        let (_, start, end) = self.items[i];
        &self.vertices[start as usize..end as usize]
    }

    fn record(&mut self, node: NodeId, vs: impl Iterator<Item = VertexId>) {
        let start = self.vertices.len() as u32;
        self.vertices.extend(vs);
        self.items.push((node, start, self.vertices.len() as u32));
    }
}

/// Aggregate statistics of a [`MatchStore`], used by the memory/space
/// experiments and by the engine's profiling counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of partial matches currently stored per node (indexed by
    /// [`NodeId`]).
    pub live_matches_per_node: Vec<usize>,
    /// Total number of partial matches currently stored.
    pub total_live_matches: usize,
    /// Total number of matches ever inserted per node (including evicted).
    pub total_inserted_per_node: Vec<u64>,
}

/// Runtime partial-match storage for one SJ-Tree.
///
/// Bucket memory is arena-style in both backings: materialized matches small
/// enough for the inline representation live directly in the bucket vector —
/// dropping a match is a plain `Vec` truncation — while the interned backing
/// stores *every* match (spilled or not) as a fixed-width arena row
/// addressed by a copyable id. Bucket vectors emptied by window expiry are
/// recycled through a bounded free list (`spare`) instead of being freed, so
/// the next insert at a fresh join key reuses their capacity.
#[derive(Debug, Clone)]
pub struct MatchStore {
    backing: Backing,
    inserted: Vec<u64>,
}

impl MatchStore {
    /// Creates an empty **materialized** store shaped for the given tree.
    pub fn new(tree: &SjTree) -> Self {
        Self {
            backing: Backing::Materialized {
                tables: vec![MatTable::new(); tree.num_nodes()],
                spare: Vec::new(),
            },
            inserted: vec![0; tree.num_nodes()],
        }
    }

    /// Creates an empty **interned** store shaped for the given tree: the
    /// row schema is one slot per query edge and vertex of `tree.query()`.
    pub fn new_interned(tree: &SjTree) -> Self {
        let q = tree.query();
        Self {
            backing: Backing::Interned {
                arena: RowArena::new(q.num_edges(), q.num_vertices()),
                tables: vec![RowTable::new(); tree.num_nodes()],
                spare: Vec::new(),
            },
            inserted: vec![0; tree.num_nodes()],
        }
    }

    /// `true` when matches are stored as interned arena rows.
    pub fn is_interned(&self) -> bool {
        matches!(self.backing, Backing::Interned { .. })
    }

    /// Converts the store between backings **in place**, preserving every
    /// stored match, every join key and the per-bucket order (row order and
    /// match order coincide inside a bucket — `RowArena::cmp_rows`), so a
    /// live engine can switch representations mid-stream without replay.
    /// The lifetime-inserted counters are untouched. A no-op when the store
    /// is already in the requested backing.
    pub fn set_interning(&mut self, tree: &SjTree, enabled: bool) {
        if enabled == self.is_interned() {
            return;
        }
        if enabled {
            let Backing::Materialized { tables, .. } = &mut self.backing else {
                unreachable!("checked above");
            };
            let q = tree.query();
            let mut arena = RowArena::new(q.num_edges(), q.num_vertices());
            let new_tables: Vec<RowTable> = tables
                .iter_mut()
                .map(|t| {
                    t.drain()
                        .map(|(k, bucket)| (k, bucket.iter().map(|m| arena.encode(m)).collect()))
                        .collect()
                })
                .collect();
            self.backing = Backing::Interned {
                arena,
                tables: new_tables,
                spare: Vec::new(),
            };
        } else {
            let Backing::Interned { arena, tables, .. } = &mut self.backing else {
                unreachable!("checked above");
            };
            let new_tables: Vec<MatTable> = tables
                .iter_mut()
                .map(|t| {
                    t.drain()
                        .map(|(k, bucket)| (k, bucket.iter().map(|&r| arena.decode(r)).collect()))
                        .collect()
                })
                .collect();
            self.backing = Backing::Materialized {
                tables: new_tables,
                spare: Vec::new(),
            };
        }
    }

    /// Number of recycled bucket vectors currently in the free list.
    pub fn spare_buckets(&self) -> usize {
        match &self.backing {
            Backing::Materialized { spare, .. } => spare.len(),
            Backing::Interned { spare, .. } => spare.len(),
        }
    }

    /// Drops the recycled-bucket free list (the `scratch reuse off`
    /// measurement arm; steady-state operation never calls this). In the
    /// interned backing the arena's row free list is dropped too.
    pub fn release_spare(&mut self) {
        match &mut self.backing {
            Backing::Materialized { spare, .. } => *spare = Vec::new(),
            Backing::Interned { spare, arena, .. } => {
                *spare = Vec::new();
                arena.free = Vec::new();
            }
        }
    }

    /// Inserts a match of `node`'s subgraph, performing the recursive hash
    /// join of Algorithm 2. Complete matches (joins that reach the root) are
    /// appended to `complete`.
    ///
    /// `window`: when `Some(tw)`, joined matches whose edge timestamps span
    /// an interval ≥ `tw` are discarded (the problem statement requires
    /// τ(g) < tW for reported matches).
    ///
    /// Duplicate inserts (the same match already present at the node) are
    /// ignored; the lazy strategy's retroactive searches can legitimately
    /// rediscover a match that the per-edge search already found.
    pub fn insert(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
    ) {
        self.insert_inner(tree, node, m, window, complete, None);
    }

    /// Like [`MatchStore::insert`], but additionally records every newly
    /// stored match (node + bound data vertices) in `trace` — the inserted
    /// leaf match and every intermediate join. The Lazy Search engine uses
    /// the trace to decide which vertices to enable the next leaf's search
    /// on (`ENABLE-SEARCH-SIBLING`, Algorithm 3). The trace is **appended
    /// to**, not cleared.
    pub fn insert_traced(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
        trace: &mut InsertTrace,
    ) {
        self.insert_inner(tree, node, m, window, complete, Some(trace));
    }

    /// The entry point behind both insert flavours: handles the single-node
    /// (root) case, then dispatches to the backing-specific recursion. In
    /// the interned backing the match is encoded into the arena exactly
    /// once, here; every recursive step above works on row ids.
    fn insert_inner(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
        trace: Option<&mut InsertTrace>,
    ) {
        // A single-node tree: the leaf *is* the query. The window constraint
        // still applies (τ(g) < tW).
        if node == tree.root() {
            if window.is_none_or(|tw| m.within_window(tw)) {
                complete.push(m);
            }
            return;
        }
        match &mut self.backing {
            Backing::Materialized { tables, spare } => insert_mat(
                tables,
                spare,
                &mut self.inserted,
                tree,
                node,
                m,
                window,
                complete,
                trace,
            ),
            Backing::Interned {
                arena,
                tables,
                spare,
            } => {
                let row = arena.encode(&m);
                insert_rows(
                    arena,
                    tables,
                    spare,
                    &mut self.inserted,
                    tree,
                    node,
                    row,
                    window,
                    complete,
                    trace,
                );
            }
        }
    }

    /// Number of partial matches currently stored at a node.
    pub fn live_matches(&self, node: NodeId) -> usize {
        match &self.backing {
            Backing::Materialized { tables, .. } => tables[node.0].values().map(Vec::len).sum(),
            Backing::Interned { tables, .. } => tables[node.0].values().map(Vec::len).sum(),
        }
    }

    /// Total matches ever inserted at a node.
    pub fn total_inserted(&self, node: NodeId) -> u64 {
        self.inserted[node.0]
    }

    /// Total matches ever inserted across all nodes (the per-edge delta of
    /// this is what the shared join stage reports as deduplicated insert
    /// work, and the denominator of the soak's `alloc.allocs_per_match`).
    pub fn lifetime_inserted(&self) -> u64 {
        self.inserted.iter().sum()
    }

    /// Iterates over the matches stored at a node.
    ///
    /// Only available on the materialized backing (the interned rows have no
    /// `SubgraphMatch` to borrow); use
    /// [`MatchStore::collect_matches_at`] for a backing-agnostic snapshot.
    ///
    /// # Panics
    /// Panics when the store is interned.
    pub fn matches_at(&self, node: NodeId) -> impl Iterator<Item = &SubgraphMatch> + '_ {
        let Backing::Materialized { tables, .. } = &self.backing else {
            panic!("matches_at requires the materialized backing");
        };
        tables[node.0].values().flat_map(|v| v.iter())
    }

    /// Decoded copies of the matches stored at a node, in bucket-iteration
    /// order. Works for both backings (test/diagnostic helper — it
    /// materializes every match).
    pub fn collect_matches_at(&self, node: NodeId) -> Vec<SubgraphMatch> {
        match &self.backing {
            Backing::Materialized { tables, .. } => {
                tables[node.0].values().flatten().cloned().collect()
            }
            Backing::Interned { arena, tables, .. } => tables[node.0]
                .values()
                .flatten()
                .map(|&r| arena.decode(r))
                .collect(),
        }
    }

    /// Single-pass maintenance: removes every stored partial match that is
    /// dead (references an edge expired out of the data graph) **or**, when
    /// `window` is `Some(tw)`, expired (its earliest edge is older than
    /// `latest - tw`, so any future join already spans the window). Walks
    /// every bucket exactly once — the engine's periodic purge used to call
    /// [`MatchStore::purge_dead`] and [`MatchStore::purge_expired`] back to
    /// back, touching every bucket twice. Returns the number removed.
    pub fn purge(&mut self, graph: &DynamicGraph, latest: Timestamp, window: Option<u64>) -> usize {
        let cutoff = window.map(|tw| latest.0.saturating_sub(tw));
        // The expiry check runs first — it is a field read, while liveness
        // probes the graph per matched edge.
        self.retain_matches(
            |m| cutoff.is_none_or(|c| m.earliest().0 >= c) && m.is_live(graph),
            |row, ew, vw| {
                cutoff.is_none_or(|c| RowArena::slice_earliest(row, ew, vw) >= c)
                    && row[..ew]
                        .iter()
                        .all(|&e| e == UNBOUND || graph.contains_edge(EdgeId(e)))
            },
        )
    }

    /// Removes every stored partial match that can no longer participate in a
    /// windowed complete match: a partial match whose earliest edge is older
    /// than `latest - window` already spans at least the window by the time
    /// any future edge (with timestamp ≥ `latest`) could join it.
    /// Returns the number of matches removed.
    pub fn purge_expired(&mut self, latest: Timestamp, window: u64) -> usize {
        let cutoff = latest.0.saturating_sub(window);
        self.retain_matches(
            |m| m.earliest().0 >= cutoff,
            |row, ew, vw| RowArena::slice_earliest(row, ew, vw) >= cutoff,
        )
    }

    /// Removes every stored partial match that references an edge that has
    /// been expired out of the data graph. Returns the number removed.
    pub fn purge_dead(&mut self, graph: &DynamicGraph) -> usize {
        self.retain_matches(
            |m| m.is_live(graph),
            |row, ew, _vw| {
                row[..ew]
                    .iter()
                    .all(|&e| e == UNBOUND || graph.contains_edge(EdgeId(e)))
            },
        )
    }

    /// One walk over every bucket keeping only matches that satisfy the
    /// backing-appropriate predicate (`keep_m` sees a materialized match,
    /// `keep_row` a raw row slice plus the edge/vertex widths); the single
    /// implementation behind every purge flavour. `retain` preserves
    /// relative order, so the sorted-bucket invariant survives. Removed
    /// interned rows go back to the arena free list. Returns the number of
    /// matches removed.
    fn retain_matches(
        &mut self,
        keep_m: impl Fn(&SubgraphMatch) -> bool,
        keep_row: impl Fn(&[u64], usize, usize) -> bool,
    ) -> usize {
        let mut removed = 0;
        match &mut self.backing {
            Backing::Materialized { tables, spare } => {
                for table in tables {
                    for bucket in table.values_mut() {
                        let before = bucket.len();
                        bucket.retain(&keep_m);
                        removed += before - bucket.len();
                    }
                    // Emptied buckets leave the table but their capacity
                    // goes to the free list — window expiry returns memory
                    // to the store, not the allocator.
                    table.retain(|_, bucket| {
                        if bucket.is_empty() {
                            recycle(spare, std::mem::take(bucket));
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            Backing::Interned {
                arena,
                tables,
                spare,
            } => {
                // Split the arena so the predicate can read `data` while
                // removed rows push onto `free`.
                let RowArena {
                    ew,
                    vw,
                    stride,
                    data,
                    free,
                } = arena;
                let (ew, vw, stride) = (*ew, *vw, *stride);
                for table in tables {
                    for bucket in table.values_mut() {
                        let before = bucket.len();
                        bucket.retain(|&r| {
                            let b = r as usize * stride;
                            if keep_row(&data[b..b + stride], ew, vw) {
                                true
                            } else {
                                free.push(r);
                                false
                            }
                        });
                        removed += before - bucket.len();
                    }
                    table.retain(|_, bucket| {
                        if bucket.is_empty() {
                            recycle(spare, std::mem::take(bucket));
                            false
                        } else {
                            true
                        }
                    });
                }
            }
        }
        removed
    }

    /// Clears every table, recycling every bucket vector (and, interned,
    /// resetting the whole arena — no live rows remain, so the slab restarts
    /// empty with its capacity preserved).
    pub fn clear(&mut self) {
        match &mut self.backing {
            Backing::Materialized { tables, spare } => {
                for table in tables {
                    for (_, bucket) in table.drain() {
                        recycle(spare, bucket);
                    }
                }
            }
            Backing::Interned {
                arena,
                tables,
                spare,
            } => {
                for table in tables {
                    for (_, bucket) in table.drain() {
                        recycle(spare, bucket);
                    }
                }
                arena.data.clear();
                arena.free.clear();
            }
        }
    }

    /// Clears the table of one node, leaving its lifetime-inserted counter
    /// intact. The shared join stage uses this when a query's prefix state
    /// migrates into a registry-owned canonical table: the engine's own
    /// tables for the prefix-covered nodes become redundant (the canonical
    /// table is repopulated by replaying the retained graph) and would
    /// otherwise linger until window expiry.
    pub fn clear_node(&mut self, node: NodeId) {
        match &mut self.backing {
            Backing::Materialized { tables, spare } => {
                for (_, bucket) in tables[node.0].drain() {
                    recycle(spare, bucket);
                }
            }
            Backing::Interned {
                arena,
                tables,
                spare,
            } => {
                for (_, bucket) in tables[node.0].drain() {
                    for &r in &bucket {
                        arena.release(r);
                    }
                    recycle(spare, bucket);
                }
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let live_matches_per_node: Vec<usize> = (0..self.inserted.len())
            .map(|n| self.live_matches(NodeId(n)))
            .collect();
        StoreStats {
            total_live_matches: live_matches_per_node.iter().sum(),
            live_matches_per_node,
            total_inserted_per_node: self.inserted.clone(),
        }
    }
}

/// The recursive update over the materialized backing. The trace is
/// optional so the untraced path (single-edge strategies and the shared
/// join stage's per-edge feed, i.e. the steady-state hot path) never
/// materialises a trace. Join results are accumulated into a vector drawn
/// from the bucket free list and recycled afterwards, so a warm store
/// performs the whole recursive update without touching the allocator (for
/// inline-width matches).
#[allow(clippy::too_many_arguments)]
fn insert_mat(
    tables: &mut [MatTable],
    spare: &mut Vec<Vec<SubgraphMatch>>,
    inserted: &mut [u64],
    tree: &SjTree,
    node: NodeId,
    m: SubgraphMatch,
    window: Option<u64>,
    complete: &mut Vec<SubgraphMatch>,
    mut trace: Option<&mut InsertTrace>,
) {
    let parent = tree.parent(node).expect("non-root node has a parent");
    let sibling = tree.sibling(node).expect("non-root node has a sibling");
    let cut = &tree.node(parent).cut_vertices;
    let Some(key) = m.project_key(cut) else {
        // The match does not bind all cut vertices; this cannot happen
        // for leaf matches produced by the anchored matcher (leaves bind
        // every vertex of their subgraph), so treat it as a no-op.
        return;
    };

    // Deduplicate: buckets are sorted, so membership is O(log n). The
    // failed search also yields the position that keeps the bucket
    // sorted when the match is stored below. A miss on the key itself
    // claims a recycled bucket vector from the free list up front.
    let (insert_at, recycled) = match tables[node.0].get(&key) {
        Some(bucket) => match bucket.binary_search(&m) {
            Ok(_) => return,
            Err(pos) => (pos, None),
        },
        None => (0, Some(spare.pop().unwrap_or_default())),
    };

    // Probe the sibling's table with the same key and join (lines 4-7 of
    // Algorithm 2). The accumulator comes from the recycled-bucket free
    // list: a freshly collected vector here would put one heap
    // allocation on every joining insert.
    let mut joined = spare.pop().unwrap_or_default();
    if let Some(bucket) = tables[sibling.0].get(&key) {
        joined.extend(
            bucket
                .iter()
                .filter_map(|ms| m.join(ms))
                .filter(|j| window.is_none_or(|tw| j.within_window(tw))),
        );
    }

    // Store the new match at this node (line 12), preserving the sorted
    // bucket invariant.
    let bucket = match recycled {
        Some(fresh) => tables[node.0].entry(key).or_insert(fresh),
        None => tables[node.0]
            .get_mut(&key)
            .expect("bucket existed at the dedup probe above"),
    };
    inserted[node.0] += 1;
    if let Some(t) = trace.as_deref_mut() {
        t.record(node, m.vertex_pairs().map(|(_, dv)| dv));
    }
    bucket.insert(insert_at, m);

    // Push successful joins up the tree (lines 8-11).
    for msup in joined.drain(..) {
        if parent == tree.root() {
            complete.push(msup);
        } else {
            insert_mat(
                tables,
                spare,
                inserted,
                tree,
                parent,
                msup,
                window,
                complete,
                trace.as_deref_mut(),
            );
        }
    }
    recycle(spare, joined);
}

/// The recursive update over the interned backing: identical control flow
/// to [`insert_mat`], but every probe, key projection, dedup comparison and
/// join works on fixed-width arena rows addressed by copyable ids. A joined
/// row that reaches the root is decoded into `complete` and its row freed —
/// the copy-on-emit boundary; everything below the root moves **zero**
/// match bytes through the allocator, spilled or not.
#[allow(clippy::too_many_arguments)]
fn insert_rows(
    arena: &mut RowArena,
    tables: &mut [RowTable],
    spare: &mut Vec<Vec<u32>>,
    inserted: &mut [u64],
    tree: &SjTree,
    node: NodeId,
    row: u32,
    window: Option<u64>,
    complete: &mut Vec<SubgraphMatch>,
    mut trace: Option<&mut InsertTrace>,
) {
    let parent = tree.parent(node).expect("non-root node has a parent");
    let sibling = tree.sibling(node).expect("non-root node has a sibling");
    let cut = &tree.node(parent).cut_vertices;
    let Some(key) = arena.project_key(row, cut) else {
        arena.release(row);
        return;
    };

    let (insert_at, recycled) = match tables[node.0].get(&key) {
        Some(bucket) => match bucket.binary_search_by(|&r| arena.cmp_rows(r, row)) {
            Ok(_) => {
                // Duplicate: the row never entered a table, recycle it.
                arena.release(row);
                return;
            }
            Err(pos) => (pos, None),
        },
        None => (0, Some(spare.pop().unwrap_or_default())),
    };

    // Sibling probe: failed joins (incompatible or out-of-window) are
    // rejected before any row is allocated, so only *stored or emitted*
    // joins ever touch the arena.
    let mut joined = spare.pop().unwrap_or_default();
    if let Some(bucket) = tables[sibling.0].get(&key) {
        for &other in bucket {
            if let Some(j) = arena.join_rows(row, other, window) {
                joined.push(j);
            }
        }
    }

    let bucket = match recycled {
        Some(fresh) => tables[node.0].entry(key).or_insert(fresh),
        None => tables[node.0]
            .get_mut(&key)
            .expect("bucket existed at the dedup probe above"),
    };
    inserted[node.0] += 1;
    if let Some(t) = trace.as_deref_mut() {
        t.record(node, arena.row_vertices(row));
    }
    bucket.insert(insert_at, row);

    for j in joined.drain(..) {
        if parent == tree.root() {
            complete.push(arena.decode(j));
            arena.release(j);
        } else {
            insert_rows(
                arena,
                tables,
                spare,
                inserted,
                tree,
                parent,
                j,
                window,
                complete,
                trace.as_deref_mut(),
            );
        }
    }
    recycle(spare, joined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{EdgeId, EdgeType, VertexId};
    use sp_query::{QueryEdgeId, QueryGraph, QuerySubgraph, QueryVertexId};

    /// Query: v0 -t0-> v1 -t1-> v2, decomposed into two single-edge leaves
    /// (leaf 0 = edge 0, leaf 1 = edge 1).
    fn two_leaf_tree() -> SjTree {
        let mut q = QueryGraph::new("p2");
        let v: Vec<_> = (0..3).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], EdgeType(0));
        q.add_edge(v[1], v[2], EdgeType(1));
        let leaves = vec![
            QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]),
            QuerySubgraph::from_edges(&q, [QueryEdgeId(1)]),
        ];
        SjTree::from_leaves(q, leaves)
    }

    /// A leaf-0 match binding v0->a, v1->b via data edge e.
    fn leaf0_match(a: u64, b: u64, e: u64, ts: u64) -> SubgraphMatch {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(QueryVertexId(0), VertexId(a)));
        assert!(m.bind_vertex(QueryVertexId(1), VertexId(b)));
        assert!(m.bind_edge(QueryEdgeId(0), EdgeId(e), Timestamp(ts)));
        m
    }

    /// A leaf-1 match binding v1->b, v2->c via data edge e.
    fn leaf1_match(b: u64, c: u64, e: u64, ts: u64) -> SubgraphMatch {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(QueryVertexId(1), VertexId(b)));
        assert!(m.bind_vertex(QueryVertexId(2), VertexId(c)));
        assert!(m.bind_edge(QueryEdgeId(1), EdgeId(e), Timestamp(ts)));
        m
    }

    #[test]
    fn join_through_root_emits_complete_match() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].num_edges(), 2);
        assert_eq!(
            complete[0].data_vertex(QueryVertexId(2)),
            Some(VertexId(12))
        );
    }

    #[test]
    fn join_requires_matching_cut_vertex() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        // leaf-1 match whose v1 binding (20) differs from the stored 11.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(20, 21, 101, 2),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        assert_eq!(store.live_matches(tree.leaf(0)), 1);
        assert_eq!(store.live_matches(tree.leaf(1)), 1);
    }

    #[test]
    fn arrival_order_does_not_matter_for_the_join() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
    }

    #[test]
    fn window_filters_slow_matches() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 0),
            Some(50),
            &mut complete,
        );
        // Second edge arrives 100 ticks later: τ = 100 ≥ 50, rejected.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 100),
            Some(50),
            &mut complete,
        );
        assert!(complete.is_empty());
        // Within the window it is accepted.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 102, 30),
            Some(50),
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(store.live_matches(tree.leaf(0)), 1);
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert_eq!(
            complete.len(),
            1,
            "duplicate leaf matches must not double-report"
        );
    }

    #[test]
    fn one_to_many_joins_produce_all_combinations() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        // Three leaf-1 matches sharing the cut vertex 11.
        for (i, c) in [(0u64, 12u64), (1, 13), (2, 14)] {
            store.insert(
                &tree,
                tree.leaf(1),
                leaf1_match(11, c, 200 + i, 2),
                None,
                &mut complete,
            );
        }
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 3);
    }

    #[test]
    fn single_node_tree_reports_immediately() {
        let mut q = QueryGraph::new("one");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        let tree =
            SjTree::from_leaves(q.clone(), vec![QuerySubgraph::from_edges(&q, q.edge_ids())]);
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.root(),
            leaf0_match(1, 2, 3, 0),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn three_leaf_tree_joins_recursively() {
        // Query: v0 -t0-> v1 -t1-> v2 -t2-> v3, three single-edge leaves.
        let mut q = QueryGraph::new("p3");
        let v: Vec<_> = (0..4).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], EdgeType(0));
        q.add_edge(v[1], v[2], EdgeType(1));
        q.add_edge(v[2], v[3], EdgeType(2));
        let leaves = (0..3)
            .map(|i| QuerySubgraph::from_edges(&q, [QueryEdgeId(i)]))
            .collect();
        let tree = SjTree::from_leaves(q, leaves);
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();

        let m0 = leaf0_match(10, 11, 100, 1);
        let m1 = leaf1_match(11, 12, 101, 2);
        let mut m2 = SubgraphMatch::new();
        m2.bind_vertex(QueryVertexId(2), VertexId(12));
        m2.bind_vertex(QueryVertexId(3), VertexId(13));
        m2.bind_edge(QueryEdgeId(2), EdgeId(102), Timestamp(3));

        store.insert(&tree, tree.leaf(0), m0, None, &mut complete);
        store.insert(&tree, tree.leaf(1), m1, None, &mut complete);
        assert!(complete.is_empty());
        // The intermediate join (leaves 0+1) is stored at the internal node.
        let internal = tree.parent(tree.leaf(0)).unwrap();
        assert_eq!(store.live_matches(internal), 1);
        store.insert(&tree, tree.leaf(2), m2, None, &mut complete);
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].num_edges(), 3);
    }

    #[test]
    fn purge_expired_drops_old_partials() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 5),
            None,
            &mut complete,
        );
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(20, 21, 101, 90),
            None,
            &mut complete,
        );
        assert_eq!(store.stats().total_live_matches, 2);
        let removed = store.purge_expired(Timestamp(100), 50);
        assert_eq!(removed, 1);
        assert_eq!(store.stats().total_live_matches, 1);
    }

    #[test]
    fn purge_dead_drops_matches_with_expired_edges() {
        use sp_graph::Schema;
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let mut g = DynamicGraph::with_window(schema, 10);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let e_old = g.add_edge(a, b, t0, Timestamp(1));
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        let mut m = SubgraphMatch::new();
        m.bind_vertex(QueryVertexId(0), a);
        m.bind_vertex(QueryVertexId(1), b);
        m.bind_edge(QueryEdgeId(0), e_old, Timestamp(1));
        store.insert(&tree, tree.leaf(0), m, None, &mut complete);
        assert_eq!(store.purge_dead(&g), 0);
        // Slide the window far forward; the old edge disappears.
        g.add_edge(a, b, t0, Timestamp(1000));
        g.expire();
        assert_eq!(store.purge_dead(&g), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn single_pass_purge_matches_the_two_pass_result() {
        use sp_graph::Schema;
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let mut g = DynamicGraph::with_window(schema, 50);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let e_dead = g.add_edge(a, b, t0, Timestamp(1));
        let e_live = g.add_edge(a, b, t0, Timestamp(90));
        g.add_edge(a, b, t0, Timestamp(100));
        g.expire(); // t=1 is outside the 50-tick graph window

        let tree = two_leaf_tree();
        let build = |edges: &[(u64, u64)]| {
            let mut store = MatchStore::new(&tree);
            let mut complete = Vec::new();
            for &(e, ts) in edges {
                let mut m = SubgraphMatch::new();
                m.bind_vertex(QueryVertexId(0), a);
                m.bind_vertex(QueryVertexId(1), b);
                m.bind_edge(QueryEdgeId(0), EdgeId(e), Timestamp(ts));
                store.insert(&tree, tree.leaf(0), m, None, &mut complete);
            }
            store
        };
        // One dead match, one expired match (earliest 10 < 100-60), one live.
        let edges = [(e_dead.0, 1u64), (777, 10), (e_live.0, 90)];
        let mut single = build(&edges);
        let mut double = build(&edges);
        let removed_single = single.purge(&g, Timestamp(100), Some(60));
        let removed_double = double.purge_dead(&g) + double.purge_expired(Timestamp(100), 60);
        assert_eq!(removed_single, removed_double);
        assert_eq!(removed_single, 2);
        assert_eq!(single.stats().total_live_matches, 1);
        assert_eq!(
            single.stats().total_live_matches,
            double.stats().total_live_matches
        );
        // Without a window only the two dead matches go (edge 777 never
        // existed in the graph, so it is dead as well as expired).
        let mut unwindowed = build(&edges);
        assert_eq!(unwindowed.purge(&g, Timestamp(100), None), 2);
    }

    #[test]
    fn high_fan_in_bucket_dedup_is_exact() {
        // Thousands of leaf-1 matches share the single cut vertex 11, so they
        // all land in ONE bucket. Every insert is repeated; the sorted-bucket
        // dedup must drop each duplicate while keeping every distinct match.
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        const FAN: u64 = 2_000;
        for round in 0..2 {
            for i in 0..FAN {
                store.insert(
                    &tree,
                    tree.leaf(1),
                    leaf1_match(11, 100 + i, 1_000 + i, 2),
                    None,
                    &mut complete,
                );
            }
            // Interleave out-of-order re-inserts to exercise mid-bucket
            // insertion positions.
            for i in (0..FAN).rev().step_by(7) {
                store.insert(
                    &tree,
                    tree.leaf(1),
                    leaf1_match(11, 100 + i, 1_000 + i, 2),
                    None,
                    &mut complete,
                );
            }
            let _ = round;
        }
        assert_eq!(store.live_matches(tree.leaf(1)), FAN as usize);
        assert_eq!(store.total_inserted(tree.leaf(1)), FAN);
        // Micro-assert for the join-stage allocation satellite: every stored
        // partial match of this workload-sized query fits the inline binding
        // maps, so the per-insert move above never heap-allocated.
        assert!(store.matches_at(tree.leaf(1)).all(|m| m.bindings_inline()));
        // Joining against the fan still produces every combination once.
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 5, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), FAN as usize);
        assert!(complete.iter().all(|m| m.bindings_inline()));
    }

    #[test]
    fn purge_recycles_bucket_capacity_into_the_free_list() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        // Distinct cut-vertex bindings → distinct buckets at leaf 0.
        for i in 0..8u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(10 + i, 50 + i, 100 + i, i),
                None,
                &mut complete,
            );
        }
        assert_eq!(store.spare_buckets(), 0);
        // Expire everything: all eight buckets empty out and are recycled.
        let removed = store.purge_expired(Timestamp(1_000), 10);
        assert_eq!(removed, 8);
        assert_eq!(store.spare_buckets(), 8);
        // New inserts at fresh keys draw from the free list instead of the
        // allocator.
        for i in 0..3u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(200 + i, 300 + i, 400 + i, 2_000),
                None,
                &mut complete,
            );
        }
        assert_eq!(store.spare_buckets(), 5);
        assert_eq!(store.stats().total_live_matches, 3);
        // `clear` recycles too; `release_spare` drops the pool.
        store.clear();
        assert_eq!(store.spare_buckets(), 8);
        store.release_spare();
        assert_eq!(store.spare_buckets(), 0);
    }

    #[test]
    fn stats_and_clear() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        let stats = store.stats();
        assert_eq!(stats.total_live_matches, 1);
        assert_eq!(stats.live_matches_per_node[tree.leaf(0).0], 1);
        assert_eq!(stats.total_inserted_per_node[tree.leaf(0).0], 1);
        store.clear();
        assert_eq!(store.stats().total_live_matches, 0);
        // The inserted counters survive a clear (they are lifetime totals).
        assert_eq!(store.total_inserted(tree.leaf(0)), 1);
        assert_eq!(store.matches_at(tree.leaf(0)).count(), 0);
    }

    // ---- interned backing ------------------------------------------------

    /// Sorted multiset view of a match list for order-insensitive equality.
    fn multiset(mut ms: Vec<SubgraphMatch>) -> Vec<SubgraphMatch> {
        ms.sort();
        ms
    }

    /// Drives the same insert sequence through a materialized and an
    /// interned store, asserting identical complete-match multisets, live
    /// counts and inserted counters at every step.
    fn assert_equivalent(tree: &SjTree, window: Option<u64>, inserts: &[(usize, SubgraphMatch)]) {
        let mut mat = MatchStore::new(tree);
        let mut int = MatchStore::new_interned(tree);
        let mut mat_complete = Vec::new();
        let mut int_complete = Vec::new();
        for (rank, m) in inserts {
            let node = tree.leaf(*rank);
            mat.insert(tree, node, m.clone(), window, &mut mat_complete);
            int.insert(tree, node, m.clone(), window, &mut int_complete);
        }
        assert_eq!(
            multiset(mat_complete),
            multiset(int_complete),
            "complete-match multisets diverged"
        );
        for n in 0..tree.num_nodes() {
            let node = NodeId(n);
            assert_eq!(mat.live_matches(node), int.live_matches(node));
            assert_eq!(mat.total_inserted(node), int.total_inserted(node));
            assert_eq!(
                multiset(mat.collect_matches_at(node)),
                multiset(int.collect_matches_at(node)),
                "stored matches diverged at node {n}"
            );
        }
    }

    #[test]
    fn interned_store_matches_materialized_on_joins_and_duplicates() {
        let tree = two_leaf_tree();
        let mut inserts = Vec::new();
        // Fan-in, duplicates, a non-joining key and both arrival orders.
        for i in 0..20u64 {
            inserts.push((1usize, leaf1_match(11, 100 + i, 1_000 + i, 2 + i)));
        }
        inserts.push((1, leaf1_match(11, 100, 1_000, 2))); // duplicate
        inserts.push((0, leaf0_match(10, 11, 5, 1)));
        inserts.push((0, leaf0_match(10, 11, 5, 1))); // duplicate
        inserts.push((0, leaf0_match(40, 41, 6, 1))); // never joins
        inserts.push((1, leaf1_match(11, 200, 2_000, 3))); // late sibling
        assert_equivalent(&tree, None, &inserts);
        assert_equivalent(&tree, Some(10), &inserts);
    }

    #[test]
    fn interned_store_handles_single_node_trees() {
        let mut q = QueryGraph::new("one");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        let tree =
            SjTree::from_leaves(q.clone(), vec![QuerySubgraph::from_edges(&q, q.edge_ids())]);
        let mut store = MatchStore::new_interned(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.root(),
            leaf0_match(1, 2, 3, 0),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn interned_purge_recycles_rows_and_buckets() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new_interned(&tree);
        let mut complete = Vec::new();
        for i in 0..8u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(10 + i, 50 + i, 100 + i, i),
                None,
                &mut complete,
            );
        }
        assert_eq!(store.spare_buckets(), 0);
        let removed = store.purge_expired(Timestamp(1_000), 10);
        assert_eq!(removed, 8);
        assert_eq!(store.spare_buckets(), 8);
        // Freed rows are reused: eight more inserts and the arena has not
        // grown past its 8-row high-water mark.
        let Backing::Interned { arena, .. } = &store.backing else {
            panic!("interned store");
        };
        let words_before = arena.data.len();
        for i in 0..8u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(200 + i, 300 + i, 400 + i, 2_000),
                None,
                &mut complete,
            );
        }
        let Backing::Interned { arena, .. } = &store.backing else {
            panic!("interned store");
        };
        assert_eq!(arena.data.len(), words_before);
        assert_eq!(store.stats().total_live_matches, 8);
    }

    #[test]
    fn interned_purge_dead_probes_the_graph() {
        use sp_graph::Schema;
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let mut g = DynamicGraph::with_window(schema, 10);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let e_old = g.add_edge(a, b, t0, Timestamp(1));
        let tree = two_leaf_tree();
        let mut store = MatchStore::new_interned(&tree);
        let mut complete = Vec::new();
        let mut m = SubgraphMatch::new();
        m.bind_vertex(QueryVertexId(0), a);
        m.bind_vertex(QueryVertexId(1), b);
        m.bind_edge(QueryEdgeId(0), e_old, Timestamp(1));
        store.insert(&tree, tree.leaf(0), m, None, &mut complete);
        assert_eq!(store.purge_dead(&g), 0);
        g.add_edge(a, b, t0, Timestamp(1000));
        g.expire();
        assert_eq!(store.purge_dead(&g), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn set_interning_round_trips_live_state() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        for i in 0..6u64 {
            store.insert(
                &tree,
                tree.leaf(1),
                leaf1_match(11, 100 + i, 1_000 + i, 2),
                None,
                &mut complete,
            );
        }
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 5, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 6);
        let before: Vec<Vec<SubgraphMatch>> = (0..tree.num_nodes())
            .map(|n| multiset(store.collect_matches_at(NodeId(n))))
            .collect();
        let inserted_before = store.lifetime_inserted();

        // Materialized -> interned: state survives and joining continues.
        store.set_interning(&tree, true);
        assert!(store.is_interned());
        assert_eq!(store.lifetime_inserted(), inserted_before);
        for (n, expected) in before.iter().enumerate() {
            assert_eq!(&multiset(store.collect_matches_at(NodeId(n))), expected);
        }
        let mut complete2 = Vec::new();
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 200, 9_000, 2),
            None,
            &mut complete2,
        );
        assert_eq!(complete2.len(), 1, "joins keep working after conversion");
        // Duplicates are still rejected against the converted buckets.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 200, 9_000, 2),
            None,
            &mut complete2,
        );
        assert_eq!(complete2.len(), 1);

        // Interned -> materialized: round-trip restores everything.
        store.set_interning(&tree, false);
        assert!(!store.is_interned());
        assert_eq!(
            store.live_matches(tree.leaf(1)),
            7,
            "6 originals + 1 post-conversion insert"
        );
        assert!(store.matches_at(tree.leaf(1)).all(|m| m.bindings_inline()));
    }

    #[test]
    fn interned_rows_handle_spilled_width_queries() {
        // A 9-edge path: 10 vertex bindings — past MATCH_INLINE_BINDINGS, so
        // the materialized representation heap-allocates per clone while the
        // interned rows stay fixed-width. Semantics must be identical.
        const LEN: usize = 9;
        let mut q = QueryGraph::new("wide");
        let v: Vec<_> = (0..=LEN).map(|_| q.add_any_vertex()).collect();
        for i in 0..LEN {
            q.add_edge(v[i], v[i + 1], EdgeType(i as u32));
        }
        let leaves = (0..LEN)
            .map(|i| QuerySubgraph::from_edges(&q, [QueryEdgeId(i)]))
            .collect();
        let tree = SjTree::from_leaves(q, leaves);

        let edge_match = |i: usize, base: u64| {
            let mut m = SubgraphMatch::new();
            m.bind_vertex(QueryVertexId(i), VertexId(base + i as u64));
            m.bind_vertex(QueryVertexId(i + 1), VertexId(base + i as u64 + 1));
            m.bind_edge(
                QueryEdgeId(i),
                EdgeId(1_000 + i as u64),
                Timestamp(i as u64),
            );
            m
        };
        let inserts: Vec<(usize, SubgraphMatch)> =
            (0..LEN).map(|i| (i, edge_match(i, 500))).collect();
        assert_equivalent(&tree, None, &inserts);

        // And explicitly: the interned store emits the full 10-vertex match.
        let mut store = MatchStore::new_interned(&tree);
        let mut complete = Vec::new();
        for (rank, m) in &inserts {
            store.insert(&tree, tree.leaf(*rank), m.clone(), None, &mut complete);
        }
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].num_vertices(), LEN + 1);
        assert_eq!(complete[0].num_edges(), LEN);
        assert!(!complete[0].bindings_inline(), "this width must spill");
    }

    #[test]
    fn insert_trace_records_nodes_and_vertices() {
        let tree = two_leaf_tree();
        for interned in [false, true] {
            let mut store = if interned {
                MatchStore::new_interned(&tree)
            } else {
                MatchStore::new(&tree)
            };
            let mut complete = Vec::new();
            let mut trace = InsertTrace::new();
            store.insert_traced(
                &tree,
                tree.leaf(0),
                leaf0_match(10, 11, 100, 1),
                None,
                &mut complete,
                &mut trace,
            );
            assert_eq!(trace.len(), 1);
            assert_eq!(trace.node(0), tree.leaf(0));
            assert_eq!(trace.vertices(0), &[VertexId(10), VertexId(11)]);
            trace.clear();
            assert!(trace.is_empty());
            // The joining insert stores at the leaf; the root join is
            // emitted, not stored, so it is not traced.
            store.insert_traced(
                &tree,
                tree.leaf(1),
                leaf1_match(11, 12, 101, 2),
                None,
                &mut complete,
                &mut trace,
            );
            assert_eq!(trace.len(), 1);
            assert_eq!(trace.node(0), tree.leaf(1));
            assert_eq!(trace.vertices(0), &[VertexId(11), VertexId(12)]);
            assert_eq!(complete.len(), 1);
        }
    }
}
