//! Partial-match storage and the recursive hash-join update
//! (`UPDATE-SJ-TREE`, Algorithm 2).
//!
//! Every SJ-Tree node owns a hash table of the matches of its query subgraph
//! (Property 3). The hash key of a match stored at node `n` is the projection
//! of the match onto the *cut vertices* of `n`'s parent (Property 4), so that
//! probing the sibling's table with the same key yields exactly the partial
//! matches that agree on the shared vertices — a hash join.
//!
//! When a new match is inserted at a node, it is joined with every compatible
//! match of the sibling; each successful join is recursively inserted one
//! level up. A join that reaches the root is a complete match of the query
//! and is returned to the caller instead of being stored.

use crate::node::NodeId;
use crate::tree::SjTree;
use sp_graph::{DynamicGraph, Timestamp};
use sp_iso::{JoinKey, SubgraphMatch};
use std::collections::HashMap;

/// Hash table of matches for one SJ-Tree node, keyed by the projection of
/// each match onto the parent's cut vertices. Keys are interned
/// [`JoinKey`]s — cut sets of up to three vertices (every tree the built-in
/// decompositions produce) are stored inline, so computing the key per
/// insert no longer heap-allocates. Every bucket is kept **sorted** (by
/// `SubgraphMatch`'s derived ordering) so duplicate detection on insert is a
/// binary search instead of a linear scan — on a high-fan-in cut vertex a
/// single bucket can hold thousands of partial matches, and the old
/// `bucket.contains(&m)` scan made every insert `O(n)`.
type NodeTable = HashMap<JoinKey, Vec<SubgraphMatch>>;

/// Upper bound on recycled bucket vectors kept in a store's free list. A
/// purge can empty thousands of buckets at once; retaining a bounded pool
/// keeps steady-state inserts allocation-free without pinning a whole
/// window's worth of peak memory forever.
const SPARE_BUCKETS_CAP: usize = 1024;

/// Runtime partial-match storage for one SJ-Tree.
///
/// Bucket memory is arena-style: match bindings small enough for the inline
/// representation (every tree the built-in decompositions produce) live
/// directly in the bucket vector — dropping a match is a plain `Vec`
/// truncation, no per-match heap traffic — and bucket vectors emptied by
/// window expiry are recycled through a bounded free list (`spare`) instead
/// of being freed, so the next insert at a fresh join key reuses their
/// capacity.
#[derive(Debug, Clone)]
pub struct MatchStore {
    tables: Vec<NodeTable>,
    inserted: Vec<u64>,
    /// Free list of emptied bucket vectors (capacity preserved), refilled by
    /// the purge/clear paths and drained by inserts at previously unseen
    /// join keys.
    spare: Vec<Vec<SubgraphMatch>>,
}

/// Moves an emptied bucket into the free list, dropping it instead when the
/// pool is full or the bucket never grew.
fn recycle(spare: &mut Vec<Vec<SubgraphMatch>>, mut bucket: Vec<SubgraphMatch>) {
    if spare.len() < SPARE_BUCKETS_CAP && bucket.capacity() > 0 {
        bucket.clear();
        spare.push(bucket);
    }
}

/// Aggregate statistics of a [`MatchStore`], used by the memory/space
/// experiments and by the engine's profiling counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of partial matches currently stored per node (indexed by
    /// [`NodeId`]).
    pub live_matches_per_node: Vec<usize>,
    /// Total number of partial matches currently stored.
    pub total_live_matches: usize,
    /// Total number of matches ever inserted per node (including evicted).
    pub total_inserted_per_node: Vec<u64>,
}

impl MatchStore {
    /// Creates an empty store shaped for the given tree.
    pub fn new(tree: &SjTree) -> Self {
        Self {
            tables: vec![NodeTable::new(); tree.num_nodes()],
            inserted: vec![0; tree.num_nodes()],
            spare: Vec::new(),
        }
    }

    /// Number of recycled bucket vectors currently in the free list.
    pub fn spare_buckets(&self) -> usize {
        self.spare.len()
    }

    /// Drops the recycled-bucket free list (the `scratch reuse off`
    /// measurement arm; steady-state operation never calls this).
    pub fn release_spare(&mut self) {
        self.spare = Vec::new();
    }

    /// Inserts a match of `node`'s subgraph, performing the recursive hash
    /// join of Algorithm 2. Complete matches (joins that reach the root) are
    /// appended to `complete`.
    ///
    /// `window`: when `Some(tw)`, joined matches whose edge timestamps span
    /// an interval ≥ `tw` are discarded (the problem statement requires
    /// τ(g) < tW for reported matches).
    ///
    /// Duplicate inserts (the same match already present at the node) are
    /// ignored; the lazy strategy's retroactive searches can legitimately
    /// rediscover a match that the per-edge search already found.
    pub fn insert(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
    ) {
        self.insert_inner(tree, node, m, window, complete, None);
    }

    /// Like [`MatchStore::insert`], but additionally records every
    /// `(node, match)` pair that was *newly stored* during the recursive
    /// update (the inserted leaf match and every intermediate join). The Lazy
    /// Search engine uses the trace to decide which vertices to enable the
    /// next leaf's search on (`ENABLE-SEARCH-SIBLING`, Algorithm 3).
    pub fn insert_traced(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
        trace: &mut Vec<(NodeId, SubgraphMatch)>,
    ) {
        self.insert_inner(tree, node, m, window, complete, Some(trace));
    }

    /// The recursive update behind both insert flavours. The trace is
    /// optional so the untraced path (single-edge strategies and the shared
    /// join stage's per-edge feed, i.e. the steady-state hot path) never
    /// materialises a trace vector. Join results are accumulated into a
    /// vector drawn from the bucket free list and recycled afterwards, so a
    /// warm store performs the whole recursive update without touching the
    /// allocator.
    fn insert_inner(
        &mut self,
        tree: &SjTree,
        node: NodeId,
        m: SubgraphMatch,
        window: Option<u64>,
        complete: &mut Vec<SubgraphMatch>,
        mut trace: Option<&mut Vec<(NodeId, SubgraphMatch)>>,
    ) {
        // A single-node tree: the leaf *is* the query. The window constraint
        // still applies (τ(g) < tW).
        if node == tree.root() {
            if window.is_none_or(|tw| m.within_window(tw)) {
                complete.push(m);
            }
            return;
        }
        let parent = tree.parent(node).expect("non-root node has a parent");
        let sibling = tree.sibling(node).expect("non-root node has a sibling");
        let cut = &tree.node(parent).cut_vertices;
        let Some(key) = m.project_key(cut) else {
            // The match does not bind all cut vertices; this cannot happen
            // for leaf matches produced by the anchored matcher (leaves bind
            // every vertex of their subgraph), so treat it as a no-op.
            return;
        };

        // Deduplicate: buckets are sorted, so membership is O(log n). The
        // failed search also yields the position that keeps the bucket
        // sorted when the match is stored below. A miss on the key itself
        // claims a recycled bucket vector from the free list up front.
        let (insert_at, recycled) = match self.tables[node.0].get(&key) {
            Some(bucket) => match bucket.binary_search(&m) {
                Ok(_) => return,
                Err(pos) => (pos, None),
            },
            None => (0, Some(self.spare.pop().unwrap_or_default())),
        };

        // Probe the sibling's table with the same key and join (lines 4-7 of
        // Algorithm 2). The accumulator comes from the recycled-bucket free
        // list: a freshly collected vector here would put one heap
        // allocation on every joining insert.
        let mut joined = self.spare.pop().unwrap_or_default();
        if let Some(bucket) = self.tables[sibling.0].get(&key) {
            joined.extend(
                bucket
                    .iter()
                    .filter_map(|ms| m.join(ms))
                    .filter(|j| window.is_none_or(|tw| j.within_window(tw))),
            );
        }

        // Store the new match at this node (line 12), preserving the sorted
        // bucket invariant.
        let bucket = match recycled {
            Some(fresh) => self.tables[node.0].entry(key).or_insert(fresh),
            None => self.tables[node.0]
                .get_mut(&key)
                .expect("bucket existed at the dedup probe above"),
        };
        self.inserted[node.0] += 1;
        match trace.as_deref_mut() {
            Some(t) => {
                bucket.insert(insert_at, m.clone());
                t.push((node, m));
            }
            None => bucket.insert(insert_at, m),
        }

        // Push successful joins up the tree (lines 8-11).
        for msup in joined.drain(..) {
            if parent == tree.root() {
                complete.push(msup);
            } else {
                self.insert_inner(tree, parent, msup, window, complete, trace.as_deref_mut());
            }
        }
        recycle(&mut self.spare, joined);
    }

    /// Number of partial matches currently stored at a node.
    pub fn live_matches(&self, node: NodeId) -> usize {
        self.tables[node.0].values().map(Vec::len).sum()
    }

    /// Total matches ever inserted at a node.
    pub fn total_inserted(&self, node: NodeId) -> u64 {
        self.inserted[node.0]
    }

    /// Total matches ever inserted across all nodes (the per-edge delta of
    /// this is what the shared join stage reports as deduplicated insert
    /// work).
    pub fn lifetime_inserted(&self) -> u64 {
        self.inserted.iter().sum()
    }

    /// Iterates over the matches stored at a node.
    pub fn matches_at(&self, node: NodeId) -> impl Iterator<Item = &SubgraphMatch> + '_ {
        self.tables[node.0].values().flat_map(|v| v.iter())
    }

    /// Single-pass maintenance: removes every stored partial match that is
    /// dead (references an edge expired out of the data graph) **or**, when
    /// `window` is `Some(tw)`, expired (its earliest edge is older than
    /// `latest - tw`, so any future join already spans the window). Walks
    /// every bucket exactly once — the engine's periodic purge used to call
    /// [`MatchStore::purge_dead`] and [`MatchStore::purge_expired`] back to
    /// back, touching every bucket twice. Returns the number removed.
    pub fn purge(&mut self, graph: &DynamicGraph, latest: Timestamp, window: Option<u64>) -> usize {
        let cutoff = window.map(|tw| latest.0.saturating_sub(tw));
        // The expiry check runs first — it is a field read, while liveness
        // probes the graph per matched edge.
        self.retain_matches(|m| cutoff.is_none_or(|c| m.earliest().0 >= c) && m.is_live(graph))
    }

    /// Removes every stored partial match that can no longer participate in a
    /// windowed complete match: a partial match whose earliest edge is older
    /// than `latest - window` already spans at least the window by the time
    /// any future edge (with timestamp ≥ `latest`) could join it.
    /// Returns the number of matches removed.
    pub fn purge_expired(&mut self, latest: Timestamp, window: u64) -> usize {
        let cutoff = latest.0.saturating_sub(window);
        self.retain_matches(|m| m.earliest().0 >= cutoff)
    }

    /// Removes every stored partial match that references an edge that has
    /// been expired out of the data graph. Returns the number removed.
    pub fn purge_dead(&mut self, graph: &DynamicGraph) -> usize {
        self.retain_matches(|m| m.is_live(graph))
    }

    /// One walk over every bucket keeping only matches that satisfy `keep`;
    /// the single implementation behind every purge flavour. `retain`
    /// preserves relative order, so the sorted-bucket invariant survives.
    /// Returns the number of matches removed.
    fn retain_matches(&mut self, keep: impl Fn(&SubgraphMatch) -> bool) -> usize {
        let Self { tables, spare, .. } = self;
        let mut removed = 0;
        for table in tables {
            for bucket in table.values_mut() {
                let before = bucket.len();
                bucket.retain(&keep);
                removed += before - bucket.len();
            }
            // Emptied buckets leave the table but their capacity goes to the
            // free list — window expiry returns memory to the store, not the
            // allocator.
            table.retain(|_, bucket| {
                if bucket.is_empty() {
                    recycle(spare, std::mem::take(bucket));
                    false
                } else {
                    true
                }
            });
        }
        removed
    }

    /// Clears every table, recycling every bucket vector.
    pub fn clear(&mut self) {
        let Self { tables, spare, .. } = self;
        for table in tables {
            for (_, bucket) in table.drain() {
                recycle(spare, bucket);
            }
        }
    }

    /// Clears the table of one node, leaving its lifetime-inserted counter
    /// intact. The shared join stage uses this when a query's prefix state
    /// migrates into a registry-owned canonical table: the engine's own
    /// tables for the prefix-covered nodes become redundant (the canonical
    /// table is repopulated by replaying the retained graph) and would
    /// otherwise linger until window expiry.
    pub fn clear_node(&mut self, node: NodeId) {
        let Self { tables, spare, .. } = self;
        for (_, bucket) in tables[node.0].drain() {
            recycle(spare, bucket);
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let live_matches_per_node: Vec<usize> = self
            .tables
            .iter()
            .map(|t| t.values().map(Vec::len).sum())
            .collect();
        StoreStats {
            total_live_matches: live_matches_per_node.iter().sum(),
            live_matches_per_node,
            total_inserted_per_node: self.inserted.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{EdgeId, EdgeType, VertexId};
    use sp_query::{QueryEdgeId, QueryGraph, QuerySubgraph, QueryVertexId};

    /// Query: v0 -t0-> v1 -t1-> v2, decomposed into two single-edge leaves
    /// (leaf 0 = edge 0, leaf 1 = edge 1).
    fn two_leaf_tree() -> SjTree {
        let mut q = QueryGraph::new("p2");
        let v: Vec<_> = (0..3).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], EdgeType(0));
        q.add_edge(v[1], v[2], EdgeType(1));
        let leaves = vec![
            QuerySubgraph::from_edges(&q, [QueryEdgeId(0)]),
            QuerySubgraph::from_edges(&q, [QueryEdgeId(1)]),
        ];
        SjTree::from_leaves(q, leaves)
    }

    /// A leaf-0 match binding v0->a, v1->b via data edge e.
    fn leaf0_match(a: u64, b: u64, e: u64, ts: u64) -> SubgraphMatch {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(QueryVertexId(0), VertexId(a)));
        assert!(m.bind_vertex(QueryVertexId(1), VertexId(b)));
        assert!(m.bind_edge(QueryEdgeId(0), EdgeId(e), Timestamp(ts)));
        m
    }

    /// A leaf-1 match binding v1->b, v2->c via data edge e.
    fn leaf1_match(b: u64, c: u64, e: u64, ts: u64) -> SubgraphMatch {
        let mut m = SubgraphMatch::new();
        assert!(m.bind_vertex(QueryVertexId(1), VertexId(b)));
        assert!(m.bind_vertex(QueryVertexId(2), VertexId(c)));
        assert!(m.bind_edge(QueryEdgeId(1), EdgeId(e), Timestamp(ts)));
        m
    }

    #[test]
    fn join_through_root_emits_complete_match() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].num_edges(), 2);
        assert_eq!(
            complete[0].data_vertex(QueryVertexId(2)),
            Some(VertexId(12))
        );
    }

    #[test]
    fn join_requires_matching_cut_vertex() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        // leaf-1 match whose v1 binding (20) differs from the stored 11.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(20, 21, 101, 2),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        assert_eq!(store.live_matches(tree.leaf(0)), 1);
        assert_eq!(store.live_matches(tree.leaf(1)), 1);
    }

    #[test]
    fn arrival_order_does_not_matter_for_the_join() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert!(complete.is_empty());
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
    }

    #[test]
    fn window_filters_slow_matches() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 0),
            Some(50),
            &mut complete,
        );
        // Second edge arrives 100 ticks later: τ = 100 ≥ 50, rejected.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 100),
            Some(50),
            &mut complete,
        );
        assert!(complete.is_empty());
        // Within the window it is accepted.
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 102, 30),
            Some(50),
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(store.live_matches(tree.leaf(0)), 1);
        store.insert(
            &tree,
            tree.leaf(1),
            leaf1_match(11, 12, 101, 2),
            None,
            &mut complete,
        );
        assert_eq!(
            complete.len(),
            1,
            "duplicate leaf matches must not double-report"
        );
    }

    #[test]
    fn one_to_many_joins_produce_all_combinations() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        // Three leaf-1 matches sharing the cut vertex 11.
        for (i, c) in [(0u64, 12u64), (1, 13), (2, 14)] {
            store.insert(
                &tree,
                tree.leaf(1),
                leaf1_match(11, c, 200 + i, 2),
                None,
                &mut complete,
            );
        }
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 3);
    }

    #[test]
    fn single_node_tree_reports_immediately() {
        let mut q = QueryGraph::new("one");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        let tree =
            SjTree::from_leaves(q.clone(), vec![QuerySubgraph::from_edges(&q, q.edge_ids())]);
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.root(),
            leaf0_match(1, 2, 3, 0),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn three_leaf_tree_joins_recursively() {
        // Query: v0 -t0-> v1 -t1-> v2 -t2-> v3, three single-edge leaves.
        let mut q = QueryGraph::new("p3");
        let v: Vec<_> = (0..4).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], EdgeType(0));
        q.add_edge(v[1], v[2], EdgeType(1));
        q.add_edge(v[2], v[3], EdgeType(2));
        let leaves = (0..3)
            .map(|i| QuerySubgraph::from_edges(&q, [QueryEdgeId(i)]))
            .collect();
        let tree = SjTree::from_leaves(q, leaves);
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();

        let m0 = leaf0_match(10, 11, 100, 1);
        let m1 = leaf1_match(11, 12, 101, 2);
        let mut m2 = SubgraphMatch::new();
        m2.bind_vertex(QueryVertexId(2), VertexId(12));
        m2.bind_vertex(QueryVertexId(3), VertexId(13));
        m2.bind_edge(QueryEdgeId(2), EdgeId(102), Timestamp(3));

        store.insert(&tree, tree.leaf(0), m0, None, &mut complete);
        store.insert(&tree, tree.leaf(1), m1, None, &mut complete);
        assert!(complete.is_empty());
        // The intermediate join (leaves 0+1) is stored at the internal node.
        let internal = tree.parent(tree.leaf(0)).unwrap();
        assert_eq!(store.live_matches(internal), 1);
        store.insert(&tree, tree.leaf(2), m2, None, &mut complete);
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].num_edges(), 3);
    }

    #[test]
    fn purge_expired_drops_old_partials() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 5),
            None,
            &mut complete,
        );
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(20, 21, 101, 90),
            None,
            &mut complete,
        );
        assert_eq!(store.stats().total_live_matches, 2);
        let removed = store.purge_expired(Timestamp(100), 50);
        assert_eq!(removed, 1);
        assert_eq!(store.stats().total_live_matches, 1);
    }

    #[test]
    fn purge_dead_drops_matches_with_expired_edges() {
        use sp_graph::Schema;
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let mut g = DynamicGraph::with_window(schema, 10);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let e_old = g.add_edge(a, b, t0, Timestamp(1));
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        let mut m = SubgraphMatch::new();
        m.bind_vertex(QueryVertexId(0), a);
        m.bind_vertex(QueryVertexId(1), b);
        m.bind_edge(QueryEdgeId(0), e_old, Timestamp(1));
        store.insert(&tree, tree.leaf(0), m, None, &mut complete);
        assert_eq!(store.purge_dead(&g), 0);
        // Slide the window far forward; the old edge disappears.
        g.add_edge(a, b, t0, Timestamp(1000));
        g.expire();
        assert_eq!(store.purge_dead(&g), 1);
        assert_eq!(store.stats().total_live_matches, 0);
    }

    #[test]
    fn single_pass_purge_matches_the_two_pass_result() {
        use sp_graph::Schema;
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let mut g = DynamicGraph::with_window(schema, 50);
        let a = g.add_vertex(vt);
        let b = g.add_vertex(vt);
        let e_dead = g.add_edge(a, b, t0, Timestamp(1));
        let e_live = g.add_edge(a, b, t0, Timestamp(90));
        g.add_edge(a, b, t0, Timestamp(100));
        g.expire(); // t=1 is outside the 50-tick graph window

        let tree = two_leaf_tree();
        let build = |edges: &[(u64, u64)]| {
            let mut store = MatchStore::new(&tree);
            let mut complete = Vec::new();
            for &(e, ts) in edges {
                let mut m = SubgraphMatch::new();
                m.bind_vertex(QueryVertexId(0), a);
                m.bind_vertex(QueryVertexId(1), b);
                m.bind_edge(QueryEdgeId(0), EdgeId(e), Timestamp(ts));
                store.insert(&tree, tree.leaf(0), m, None, &mut complete);
            }
            store
        };
        // One dead match, one expired match (earliest 10 < 100-60), one live.
        let edges = [(e_dead.0, 1u64), (777, 10), (e_live.0, 90)];
        let mut single = build(&edges);
        let mut double = build(&edges);
        let removed_single = single.purge(&g, Timestamp(100), Some(60));
        let removed_double = double.purge_dead(&g) + double.purge_expired(Timestamp(100), 60);
        assert_eq!(removed_single, removed_double);
        assert_eq!(removed_single, 2);
        assert_eq!(single.stats().total_live_matches, 1);
        assert_eq!(
            single.stats().total_live_matches,
            double.stats().total_live_matches
        );
        // Without a window only the two dead matches go (edge 777 never
        // existed in the graph, so it is dead as well as expired).
        let mut unwindowed = build(&edges);
        assert_eq!(unwindowed.purge(&g, Timestamp(100), None), 2);
    }

    #[test]
    fn high_fan_in_bucket_dedup_is_exact() {
        // Thousands of leaf-1 matches share the single cut vertex 11, so they
        // all land in ONE bucket. Every insert is repeated; the sorted-bucket
        // dedup must drop each duplicate while keeping every distinct match.
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        const FAN: u64 = 2_000;
        for round in 0..2 {
            for i in 0..FAN {
                store.insert(
                    &tree,
                    tree.leaf(1),
                    leaf1_match(11, 100 + i, 1_000 + i, 2),
                    None,
                    &mut complete,
                );
            }
            // Interleave out-of-order re-inserts to exercise mid-bucket
            // insertion positions.
            for i in (0..FAN).rev().step_by(7) {
                store.insert(
                    &tree,
                    tree.leaf(1),
                    leaf1_match(11, 100 + i, 1_000 + i, 2),
                    None,
                    &mut complete,
                );
            }
            let _ = round;
        }
        assert_eq!(store.live_matches(tree.leaf(1)), FAN as usize);
        assert_eq!(store.total_inserted(tree.leaf(1)), FAN);
        // Micro-assert for the join-stage allocation satellite: every stored
        // partial match of this workload-sized query fits the inline binding
        // maps, so the per-insert `m.clone()` above never heap-allocated.
        assert!(store.matches_at(tree.leaf(1)).all(|m| m.bindings_inline()));
        // Joining against the fan still produces every combination once.
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 5, 1),
            None,
            &mut complete,
        );
        assert_eq!(complete.len(), FAN as usize);
        assert!(complete.iter().all(|m| m.bindings_inline()));
    }

    #[test]
    fn purge_recycles_bucket_capacity_into_the_free_list() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        // Distinct cut-vertex bindings → distinct buckets at leaf 0.
        for i in 0..8u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(10 + i, 50 + i, 100 + i, i),
                None,
                &mut complete,
            );
        }
        assert_eq!(store.spare_buckets(), 0);
        // Expire everything: all eight buckets empty out and are recycled.
        let removed = store.purge_expired(Timestamp(1_000), 10);
        assert_eq!(removed, 8);
        assert_eq!(store.spare_buckets(), 8);
        // New inserts at fresh keys draw from the free list instead of the
        // allocator.
        for i in 0..3u64 {
            store.insert(
                &tree,
                tree.leaf(0),
                leaf0_match(200 + i, 300 + i, 400 + i, 2_000),
                None,
                &mut complete,
            );
        }
        assert_eq!(store.spare_buckets(), 5);
        assert_eq!(store.stats().total_live_matches, 3);
        // `clear` recycles too; `release_spare` drops the pool.
        store.clear();
        assert_eq!(store.spare_buckets(), 8);
        store.release_spare();
        assert_eq!(store.spare_buckets(), 0);
    }

    #[test]
    fn stats_and_clear() {
        let tree = two_leaf_tree();
        let mut store = MatchStore::new(&tree);
        let mut complete = Vec::new();
        store.insert(
            &tree,
            tree.leaf(0),
            leaf0_match(10, 11, 100, 1),
            None,
            &mut complete,
        );
        let stats = store.stats();
        assert_eq!(stats.total_live_matches, 1);
        assert_eq!(stats.live_matches_per_node[tree.leaf(0).0], 1);
        assert_eq!(stats.total_inserted_per_node[tree.leaf(0).0], 1);
        store.clear();
        assert_eq!(store.stats().total_live_matches, 0);
        // The inserted counters survive a clear (they are lifetime totals).
        assert_eq!(store.total_inserted(tree.leaf(0)), 1);
        assert_eq!(store.matches_at(tree.leaf(0)).count(), 0);
    }
}
