//! Analytic cost model for SJ-Tree decompositions (Appendix A and the
//! Theorems of Section 5).
//!
//! The model estimates, for a given decomposition and stream statistics:
//!
//! * **space** — `S(T) = Σ_k |E(g_k)| · frequency(g_k)` where the frequency
//!   of an internal node is bounded by the frequency of its more selective
//!   child (the "group" approximation of Section 5.2);
//! * **per-edge work** — the sum of the leaf search costs (`O(1)` for a
//!   single edge, `O(d̄)` for a 2-edge path) plus the expected hash-join work
//!   `(fS(g¹) + fS(g²) + O(n₁) + O(n₂) + min(n₁,n₂)) / N`, computed
//!   recursively from the root as in Appendix A.
//!
//! The model is used by the `costmodel` experiment to compare the analytic
//! prediction against measured runtimes, and by Observation 3-style reasoning
//! about whether decomposing a subgraph further is worthwhile.

use crate::tree::SjTree;
use crate::NodeId;
use serde::{Deserialize, Serialize};
use sp_selectivity::SelectivityEstimator;

/// Cost estimates for one SJ-Tree under given stream statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Estimated number of (partial-match, edge) units stored:
    /// `Σ |E(g_k)| · frequency(g_k)` over all nodes.
    pub space_units: f64,
    /// Estimated number of elementary search + join operations per streaming
    /// edge.
    pub work_per_edge: f64,
    /// The leaf-search share of [`CostModel::work_per_edge`] — the part
    /// shared-leaf evaluation can eliminate when other registered queries
    /// subscribe to the same canonical leaves.
    pub leaf_search_work: f64,
    /// Per-leaf search work in selectivity-rank order
    /// (`leaf_search_cost.iter().sum() == leaf_search_work`).
    pub leaf_search_cost: Vec<f64>,
    /// Per-internal-node hash-join work, bottom-up: `join_work[j]` is the
    /// expected per-edge probe+insert work of the node joining leaves
    /// `0..=j+1`. This is the share the shared **join** stage eliminates
    /// when the registry already maintains the query's depth-`d` prefix
    /// table (`join_work[..d-1]`), on top of the prefix's leaf searches.
    pub join_work: Vec<f64>,
    /// Estimated frequency (expected number of matches over the sampled
    /// stream) per node, indexed by [`NodeId`].
    pub node_frequency: Vec<f64>,
}

impl CostModel {
    /// Builds the cost model for `tree` from stream statistics.
    ///
    /// * `estimator` supplies leaf frequencies (1-edge histogram and 2-edge
    ///   path counts);
    /// * `avg_degree` is the mean vertex degree of the data graph (`d̄`),
    ///   which scales the cost of searching for a 2-edge leaf;
    /// * `stream_len` is the number of edges the statistics were collected
    ///   over (`N` in Appendix A).
    pub fn build(
        tree: &SjTree,
        estimator: &SelectivityEstimator,
        avg_degree: f64,
        stream_len: u64,
    ) -> Self {
        let n = stream_len.max(1) as f64;
        let mut node_frequency = vec![0.0_f64; tree.num_nodes()];

        // Leaf frequencies come straight from the statistics.
        for &leaf in tree.leaves() {
            let prim = tree
                .subgraph(leaf)
                .primitive(tree.query())
                .expect("leaves are primitives");
            node_frequency[leaf.0] = estimator.frequency(&prim) as f64;
        }
        // Internal frequencies: bounded by the more selective child
        // (frequency of the larger subgraph cannot exceed that of its most
        // selective component).
        for node in tree.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                node_frequency[node.id.0] = node_frequency[l.0].min(node_frequency[r.0]);
            }
        }

        // Space: Σ |E(g_k)| * frequency(g_k).
        let mut space_units = 0.0;
        for node in tree.nodes() {
            space_units += node.subgraph.num_edges() as f64 * node_frequency[node.id.0];
        }

        // Work per edge: leaf search costs plus expected hash-join work,
        // accumulated over every internal node.
        let mut leaf_search_cost = Vec::with_capacity(tree.num_leaves());
        for &leaf in tree.leaves() {
            let edges = tree.subgraph(leaf).num_edges();
            // O(1) for a single edge, O(d̄^(k-1)) for a k-edge primitive.
            leaf_search_cost.push(avg_degree.max(1.0).powi(edges as i32 - 1));
        }
        let leaf_search_work: f64 = leaf_search_cost.iter().sum();
        let mut work_per_edge = leaf_search_work;
        // Internal nodes appear after the leaves in bottom-up (prefix-depth)
        // order, so collecting their join work in node order yields
        // `join_work[j]` = the node covering leaves `0..=j+1`.
        let mut join_work = Vec::with_capacity(tree.num_nodes() - tree.num_leaves());
        for node in tree.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                let n1 = node_frequency[l.0];
                let n2 = node_frequency[r.0];
                // (O(n1) + O(n2) + min(n1,n2)) / N probes+inserts per edge.
                let w = (n1 + n2 + n1.min(n2)) / n;
                join_work.push(w);
                work_per_edge += w;
            }
        }

        Self {
            space_units,
            work_per_edge,
            leaf_search_work,
            leaf_search_cost,
            join_work,
            node_frequency,
        }
    }

    /// Estimated frequency of a node.
    pub fn frequency(&self, node: NodeId) -> f64 {
        self.node_frequency[node.0]
    }

    /// Per-edge work after shared-leaf evaluation eliminates
    /// `sharing_benefit` (∈ `[0, 1]`, e.g. from
    /// `SelectivityEstimator::estimate_sharing_benefit`) of this query's
    /// leaf searches: only the search share shrinks — the per-query hash
    /// join always runs.
    pub fn work_per_edge_with_sharing(&self, sharing_benefit: f64) -> f64 {
        let benefit = sharing_benefit.clamp(0.0, 1.0);
        self.work_per_edge - self.leaf_search_work * benefit
    }

    /// This query's *marginal* per-edge work when the registry already
    /// maintains its depth-`shared_depth` prefix in a shared join table:
    /// the prefix's leaf searches **and** the prefix's internal hash joins
    /// (`join_work[..shared_depth-1]`) run once registry-wide, so they drop
    /// out entirely; the remaining (suffix) leaf searches are additionally
    /// discounted by `suffix_leaf_benefit` — the shared-*leaf* elimination
    /// estimate restricted to the suffix leaves. `shared_depth` of 0 or 1
    /// means no shared prefix (a prefix needs at least one internal node)
    /// and reduces to [`CostModel::work_per_edge_with_sharing`] over the
    /// full leaf set.
    pub fn work_per_edge_with_shared_prefix(
        &self,
        suffix_leaf_benefit: f64,
        shared_depth: usize,
    ) -> f64 {
        let benefit = suffix_leaf_benefit.clamp(0.0, 1.0);
        if shared_depth < 2 {
            return self.work_per_edge_with_sharing(benefit);
        }
        let d = shared_depth.min(self.leaf_search_cost.len());
        let prefix_search: f64 = self.leaf_search_cost[..d].iter().sum();
        let prefix_join: f64 = self.join_work[..d - 1].iter().sum();
        let suffix_search: f64 = self.leaf_search_cost[d..].iter().sum();
        (self.work_per_edge - prefix_search - prefix_join - suffix_search * benefit).max(0.0)
    }

    /// Observation 3 of Section 5: decomposing a subgraph `g_k` further is
    /// worthwhile when some sub-subgraph `g` has
    /// `frequency(g) > frequency(g_k) / d̄^{|V(g_k)|}` — i.e. the larger
    /// subgraph is not much rarer than its parts, so searching for the parts
    /// and joining is cheaper than searching for the whole.
    pub fn worth_decomposing(
        frequency_part: f64,
        frequency_whole: f64,
        avg_degree: f64,
        whole_num_vertices: usize,
    ) -> bool {
        frequency_part > frequency_whole / avg_degree.max(1.0).powi(whole_num_vertices as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, PrimitivePolicy};
    use sp_graph::{DynamicGraph, Schema, Timestamp};
    use sp_query::QueryGraph;

    fn skewed_fixture() -> (Schema, SelectivityEstimator, f64, u64) {
        let mut schema = Schema::new();
        let vt = schema.intern_vertex_type("ip");
        let tcp = schema.intern_edge_type("tcp");
        let esp = schema.intern_edge_type("esp");
        let mut g = DynamicGraph::new(schema.clone());
        let nodes: Vec<_> = (0..50).map(|_| g.add_vertex(vt)).collect();
        for i in 0..45 {
            g.add_edge(nodes[i], nodes[i + 1], tcp, Timestamp(i as u64));
        }
        g.add_edge(nodes[49], nodes[0], esp, Timestamp(100));
        let stats = g.degree_stats();
        let len = g.num_edges() as u64;
        (
            schema,
            SelectivityEstimator::from_graph(&g),
            stats.average_degree,
            len,
        )
    }

    fn two_edge_query(schema: &Schema) -> QueryGraph {
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let mut q = QueryGraph::new("esp-tcp");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        let c = q.add_any_vertex();
        q.add_edge(a, b, esp);
        q.add_edge(b, c, tcp);
        q
    }

    #[test]
    fn leaf_frequencies_match_estimator() {
        let (schema, est, d, n) = skewed_fixture();
        let q = two_edge_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let model = CostModel::build(&tree, &est, d, n);
        // Leaf 0 is the esp edge with frequency 1; leaf 1 the tcp edge with 45.
        assert_eq!(model.frequency(tree.leaf(0)), 1.0);
        assert_eq!(model.frequency(tree.leaf(1)), 45.0);
    }

    #[test]
    fn internal_frequency_is_bounded_by_selective_child() {
        let (schema, est, d, n) = skewed_fixture();
        let q = two_edge_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let model = CostModel::build(&tree, &est, d, n);
        assert_eq!(model.frequency(tree.root()), 1.0);
    }

    #[test]
    fn space_estimate_is_positive_and_dominated_by_frequent_leaf() {
        let (schema, est, d, n) = skewed_fixture();
        let q = two_edge_query(&schema);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let model = CostModel::build(&tree, &est, d, n);
        // 1*1 (esp leaf) + 1*45 (tcp leaf) + 2*1 (root) = 48.
        assert!((model.space_units - 48.0).abs() < 1e-9);
    }

    #[test]
    fn single_edge_leaves_cost_unit_search() {
        let (schema, est, d, n) = skewed_fixture();
        let q = two_edge_query(&schema);
        let single = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let model = CostModel::build(&single, &est, d, n);
        // Two 1-edge leaves cost 1 each; join work is small but positive.
        assert!(model.work_per_edge >= 2.0);
        assert!(model.work_per_edge < 5.0);
        assert!((model.leaf_search_work - 2.0).abs() < 1e-9);
        // Full sharing strips exactly the search share; the join remains.
        let shared = model.work_per_edge_with_sharing(1.0);
        assert!((shared - (model.work_per_edge - 2.0)).abs() < 1e-9);
        assert!(shared > 0.0);
        // Half sharing sits in between, and the benefit is clamped.
        assert!(model.work_per_edge_with_sharing(0.5) < model.work_per_edge);
        assert_eq!(model.work_per_edge_with_sharing(7.0), shared);
        assert_eq!(model.work_per_edge_with_sharing(-1.0), model.work_per_edge);
    }

    #[test]
    fn shared_prefix_strips_prefix_search_and_join_work() {
        let (schema, est, d, n) = skewed_fixture();
        // 3-edge chain: 3 leaves, 2 internal joins — a depth-2 shared
        // prefix covers leaves 0..1 and the first join.
        let tcp = schema.edge_type("tcp").unwrap();
        let esp = schema.edge_type("esp").unwrap();
        let mut q = QueryGraph::new("p3");
        let v: Vec<_> = (0..4).map(|_| q.add_any_vertex()).collect();
        q.add_edge(v[0], v[1], esp);
        q.add_edge(v[1], v[2], tcp);
        q.add_edge(v[2], v[3], tcp);
        let tree = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let model = CostModel::build(&tree, &est, d, n);
        assert_eq!(model.leaf_search_cost.len(), 3);
        assert_eq!(model.join_work.len(), 2);
        assert!((model.leaf_search_cost.iter().sum::<f64>() - model.leaf_search_work).abs() < 1e-9);
        // depth < 2 degrades to the leaf-only formula.
        assert_eq!(
            model.work_per_edge_with_shared_prefix(0.0, 0),
            model.work_per_edge_with_sharing(0.0)
        );
        // A depth-2 prefix removes its two leaf searches and one join.
        let expected = model.work_per_edge
            - model.leaf_search_cost[..2].iter().sum::<f64>()
            - model.join_work[0];
        assert!((model.work_per_edge_with_shared_prefix(0.0, 2) - expected).abs() < 1e-9);
        // Deeper sharing is monotonically cheaper, and a fully shared tree
        // leaves only the residual (zero leaf, zero join) work.
        assert!(
            model.work_per_edge_with_shared_prefix(0.0, 3)
                <= model.work_per_edge_with_shared_prefix(0.0, 2)
        );
        assert!(model.work_per_edge_with_shared_prefix(1.0, 3) >= 0.0);
        // Suffix leaf benefit only discounts the leaves outside the prefix.
        let with_suffix = model.work_per_edge_with_shared_prefix(1.0, 2);
        assert!((with_suffix - (expected - model.leaf_search_cost[2])).abs() < 1e-9);
    }

    #[test]
    fn path_decomposition_trades_search_cost_for_space() {
        let (schema, est, d, n) = skewed_fixture();
        // 4-edge query so both decompositions are non-trivial.
        let tcp = schema.edge_type("tcp").unwrap();
        let mut q = QueryGraph::new("tcp-chain");
        let v: Vec<_> = (0..5).map(|_| q.add_any_vertex()).collect();
        for i in 0..4 {
            q.add_edge(v[i], v[i + 1], tcp);
        }
        let single = decompose(&q, PrimitivePolicy::SingleEdge, &est).unwrap();
        let path = decompose(&q, PrimitivePolicy::TwoEdgePath, &est).unwrap();
        let m_single = CostModel::build(&single, &est, d, n);
        let m_path = CostModel::build(&path, &est, d, n);
        // The 2-edge decomposition pays more per leaf search (d̄ vs 1 per
        // leaf) but has fewer leaves and stores fewer partial matches, so its
        // space estimate must not exceed the single-edge one.
        assert!(m_path.work_per_edge > 0.0 && m_single.work_per_edge > 0.0);
        assert!(path.num_leaves() < single.num_leaves());
        assert!(m_path.space_units <= m_single.space_units);
    }

    #[test]
    fn worth_decomposing_heuristic() {
        // Whole subgraph nearly as frequent as its part -> decompose.
        assert!(CostModel::worth_decomposing(100.0, 90.0, 2.0, 3));
        // Whole subgraph vastly rarer than the part -> searching for the
        // whole directly is fine.
        assert!(!CostModel::worth_decomposing(100.0, 1_000_000.0, 2.0, 3));
    }
}
