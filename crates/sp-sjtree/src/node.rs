//! SJ-Tree nodes.

use serde::{Deserialize, Serialize};
use sp_query::{QuerySubgraph, QueryVertexId};
use std::fmt;

/// Index of a node within an [`crate::SjTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the SJ-Tree.
///
/// Leaves correspond to search primitives; internal nodes correspond to the
/// join of their children (Property 2). `cut_vertices` of an internal node is
/// the vertex intersection of its children's subgraphs (Property 4,
/// `CUT-SUBGRAPH`); the hash-join key of a match inserted at either child is
/// its projection onto the parent's `cut_vertices`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SjTreeNode {
    /// Id of this node.
    pub id: NodeId,
    /// The query subgraph this node matches (`VSG{n}`).
    pub subgraph: QuerySubgraph,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Left child (`None` for leaves).
    pub left: Option<NodeId>,
    /// Right child (`None` for leaves).
    pub right: Option<NodeId>,
    /// The other child of this node's parent, `None` for the root.
    pub sibling: Option<NodeId>,
    /// For internal nodes: the query vertices shared by the two children, in
    /// ascending order. Empty for leaves and for cut-free (cross) joins.
    pub cut_vertices: Vec<QueryVertexId>,
    /// For leaves: position in the selectivity order (0 = most selective,
    /// searched unconditionally). `None` for internal nodes.
    pub leaf_rank: Option<usize>,
}

impl SjTreeNode {
    /// Returns `true` when the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }

    /// Returns `true` when the node is the root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_root_predicates() {
        let leaf = SjTreeNode {
            id: NodeId(0),
            subgraph: QuerySubgraph::empty(),
            parent: Some(NodeId(2)),
            left: None,
            right: None,
            sibling: Some(NodeId(1)),
            cut_vertices: vec![],
            leaf_rank: Some(0),
        };
        assert!(leaf.is_leaf());
        assert!(!leaf.is_root());

        let root = SjTreeNode {
            id: NodeId(2),
            subgraph: QuerySubgraph::empty(),
            parent: None,
            left: Some(NodeId(0)),
            right: Some(NodeId(1)),
            sibling: None,
            cut_vertices: vec![QueryVertexId(1)],
            leaf_rank: None,
        };
        assert!(!root.is_leaf());
        assert!(root.is_root());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
