//! The SJ-Tree structure: a left-deep binary tree over query subgraphs.

use crate::node::{NodeId, SjTreeNode};
use serde::{Deserialize, Serialize};
use sp_graph::Schema;
use sp_query::{QueryGraph, QuerySubgraph};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// A Subgraph Join Tree: the decomposition of one query graph into an
/// ordered sequence of leaf subgraphs plus the left-deep join structure above
/// them.
///
/// The tree is immutable once built; the runtime match tables live in
/// [`crate::MatchStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SjTree {
    query: QueryGraph,
    nodes: Vec<SjTreeNode>,
    leaves: Vec<NodeId>,
    root: NodeId,
}

impl SjTree {
    /// Builds a left-deep SJ-Tree from leaf subgraphs given in selectivity
    /// order (most selective first). The leaves must partition the query's
    /// edges.
    ///
    /// For `k` leaves the tree has `k-1` internal nodes:
    /// `((((l0 ⋈ l1) ⋈ l2) ⋈ ...) ⋈ lk-1)`, mirroring Theorem 2's left-deep
    /// construction. A single-leaf tree consists of just that leaf, which is
    /// also the root (the query itself is one primitive).
    ///
    /// # Panics
    /// Panics if `leaves` is empty or does not partition the query edges.
    pub fn from_leaves(query: QueryGraph, leaves: Vec<QuerySubgraph>) -> Self {
        assert!(!leaves.is_empty(), "SJ-Tree needs at least one leaf");
        // Validate that the leaves partition the query edges.
        let mut covered = BTreeSet::new();
        for leaf in &leaves {
            for e in leaf.edges() {
                assert!(
                    covered.insert(e),
                    "leaf subgraphs must be edge-disjoint (edge {e} repeated)"
                );
            }
        }
        assert_eq!(
            covered.len(),
            query.num_edges(),
            "leaf subgraphs must cover every query edge"
        );

        let mut nodes: Vec<SjTreeNode> = Vec::with_capacity(2 * leaves.len() - 1);
        let mut leaf_ids = Vec::with_capacity(leaves.len());

        // Create leaf nodes first.
        for (rank, subgraph) in leaves.into_iter().enumerate() {
            let id = NodeId(nodes.len());
            nodes.push(SjTreeNode {
                id,
                subgraph,
                parent: None,
                left: None,
                right: None,
                sibling: None,
                cut_vertices: Vec::new(),
                leaf_rank: Some(rank),
            });
            leaf_ids.push(id);
        }

        // Chain internal nodes left-deep.
        let mut current = leaf_ids[0];
        for &right in &leaf_ids[1..] {
            let id = NodeId(nodes.len());
            let joined = nodes[current.0].subgraph.join(&nodes[right.0].subgraph);
            let cut = nodes[current.0]
                .subgraph
                .cut_vertices(&nodes[right.0].subgraph);
            nodes.push(SjTreeNode {
                id,
                subgraph: joined,
                parent: None,
                left: Some(current),
                right: Some(right),
                sibling: None,
                cut_vertices: cut,
                leaf_rank: None,
            });
            nodes[current.0].parent = Some(id);
            nodes[current.0].sibling = Some(right);
            nodes[right.0].parent = Some(id);
            nodes[right.0].sibling = Some(current);
            current = id;
        }

        SjTree {
            query,
            nodes,
            leaves: leaf_ids,
            root: current,
        }
    }

    /// The query graph this tree decomposes.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes (leaves first, then internal nodes bottom-up).
    pub fn nodes(&self) -> &[SjTreeNode] {
        &self.nodes
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &SjTreeNode {
        &self.nodes[id.0]
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf node ids in selectivity order (rank 0 first).
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf with the given selectivity rank.
    pub fn leaf(&self, rank: usize) -> NodeId {
        self.leaves[rank]
    }

    /// The query subgraph of a node.
    pub fn subgraph(&self, id: NodeId) -> &QuerySubgraph {
        &self.nodes[id.0].subgraph
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// Sibling of a node (`None` for the root).
    pub fn sibling(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].sibling
    }

    /// `true` when the tree is a single leaf (the query is one primitive).
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }

    /// For a node covering leaves `0..=j`, the "next" leaf in the
    /// selectivity order is leaf `j+1` — the one whose search the Lazy
    /// strategy enables when a match materializes at this node.
    /// Returns `None` when the node already covers every leaf (root) or the
    /// node is a right leaf other than rank 0.
    pub fn next_leaf_to_enable(&self, id: NodeId) -> Option<NodeId> {
        let node = &self.nodes[id.0];
        match node.leaf_rank {
            Some(0) => self.leaves.get(1).copied(),
            Some(_) => None,
            None => {
                // Internal node: covers leaves 0..=r where r is the rank of
                // its right child (which is always a leaf in a left-deep
                // tree).
                let right = node.right.expect("internal node has right child");
                let rank = self.nodes[right.0]
                    .leaf_rank
                    .expect("right child of a left-deep internal node is a leaf");
                self.leaves.get(rank + 1).copied()
            }
        }
    }

    /// Leaf subgraphs in selectivity order.
    pub fn leaf_subgraphs(&self) -> impl Iterator<Item = &QuerySubgraph> + '_ {
        self.leaves.iter().map(move |id| &self.nodes[id.0].subgraph)
    }

    /// Renders the tree with readable names (one line per node).
    pub fn describe(&self, schema: &Schema) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SJ-Tree for \"{}\": {} leaves, {} nodes",
            self.query.name(),
            self.leaves.len(),
            self.nodes.len()
        );
        for node in &self.nodes {
            let kind = if node.is_root() {
                "root"
            } else if node.is_leaf() {
                "leaf"
            } else {
                "join"
            };
            let prim = node
                .subgraph
                .primitive(&self.query)
                .map(|p| p.describe(schema))
                .unwrap_or_else(|| format!("{} edges", node.subgraph.num_edges()));
            let _ = writeln!(
                out,
                "  {} [{kind}{}] {} (cut: {:?})",
                node.id,
                node.leaf_rank
                    .map(|r| format!(" rank {r}"))
                    .unwrap_or_default(),
                prim,
                node.cut_vertices.iter().map(|v| v.0).collect::<Vec<_>>()
            );
        }
        out
    }

    /// Serializes the tree to JSON (the paper stores the decomposition as an
    /// ASCII file between the decomposition and query-processing steps).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes a tree from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Writes the tree to a file as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a tree from a JSON file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::EdgeType;
    use sp_query::QueryEdgeId;

    /// 4-edge path query decomposed into single edges.
    fn path4_single_leaves() -> (QueryGraph, Vec<QuerySubgraph>) {
        let mut q = QueryGraph::new("path4");
        let v: Vec<_> = (0..5).map(|_| q.add_any_vertex()).collect();
        for i in 0..4 {
            q.add_edge(v[i], v[i + 1], EdgeType(i as u32));
        }
        let leaves = (0..4)
            .map(|i| QuerySubgraph::from_edges(&q, [QueryEdgeId(i)]))
            .collect();
        (q, leaves)
    }

    #[test]
    fn left_deep_structure() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.num_nodes(), 7);
        // Root covers the whole query (Property 1).
        assert!(t.subgraph(t.root()).covers(t.query()));
        // Every internal node's subgraph is the join of its children
        // (Property 2).
        for node in t.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                let joined = t.subgraph(l).join(t.subgraph(r));
                assert_eq!(&joined, &node.subgraph);
            }
        }
        // Left-deep: the right child of every internal node is a leaf.
        for node in t.nodes() {
            if let Some(r) = node.right {
                assert!(t.node(r).is_leaf());
            }
        }
    }

    #[test]
    fn sibling_and_parent_links_are_consistent() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        for node in t.nodes() {
            if let Some(p) = node.parent {
                let parent = t.node(p);
                assert!(parent.left == Some(node.id) || parent.right == Some(node.id));
                let sib = node.sibling.expect("non-root nodes have siblings");
                assert!(parent.left == Some(sib) || parent.right == Some(sib));
                assert_ne!(sib, node.id);
            } else {
                assert_eq!(node.id, t.root());
                assert!(node.sibling.is_none());
            }
        }
    }

    #[test]
    fn cut_vertices_are_shared_path_vertices() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        // First internal node joins edge0 (v0-v1) and edge1 (v1-v2): cut {v1}.
        let first_internal = t.parent(t.leaf(0)).unwrap();
        assert_eq!(
            t.node(first_internal)
                .cut_vertices
                .iter()
                .map(|v| v.0)
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn next_leaf_to_enable_progression() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        // Leaf 0 enables leaf 1.
        assert_eq!(t.next_leaf_to_enable(t.leaf(0)), Some(t.leaf(1)));
        // Other leaves do not enable anything directly.
        assert_eq!(t.next_leaf_to_enable(t.leaf(1)), None);
        // The internal node covering leaves 0..=1 enables leaf 2.
        let n1 = t.parent(t.leaf(0)).unwrap();
        assert_eq!(t.next_leaf_to_enable(n1), Some(t.leaf(2)));
        // The root covers everything; nothing left to enable.
        assert_eq!(t.next_leaf_to_enable(t.root()), None);
    }

    #[test]
    fn single_leaf_tree() {
        let mut q = QueryGraph::new("one-edge");
        let a = q.add_any_vertex();
        let b = q.add_any_vertex();
        q.add_edge(a, b, EdgeType(0));
        let leaves = vec![QuerySubgraph::from_edges(&q, q.edge_ids())];
        let t = SjTree::from_leaves(q, leaves);
        assert!(t.is_single_node());
        assert_eq!(t.root(), t.leaf(0));
        assert_eq!(t.next_leaf_to_enable(t.root()), None);
    }

    #[test]
    #[should_panic(expected = "cover every query edge")]
    fn missing_edges_are_rejected() {
        let (q, mut leaves) = path4_single_leaves();
        leaves.pop();
        let _ = SjTree::from_leaves(q, leaves);
    }

    #[test]
    #[should_panic(expected = "edge-disjoint")]
    fn overlapping_leaves_are_rejected() {
        let (q, mut leaves) = path4_single_leaves();
        leaves[1] = leaves[0].clone();
        let _ = SjTree::from_leaves(q, leaves);
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        let json = t.to_json().unwrap();
        let back = SjTree::from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), t.num_nodes());
        assert_eq!(back.root(), t.root());
        assert_eq!(back.leaves(), t.leaves());
    }

    #[test]
    fn describe_mentions_every_node() {
        let (q, leaves) = path4_single_leaves();
        let t = SjTree::from_leaves(q, leaves);
        let schema = Schema::new();
        let text = t.describe(&schema);
        assert!(text.contains("root"));
        assert!(text.contains("leaf"));
        assert_eq!(text.lines().count(), 1 + t.num_nodes());
    }
}
