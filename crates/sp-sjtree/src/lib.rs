//! # sp-sjtree — the Subgraph Join Tree
//!
//! The SJ-Tree (Section 3 of the paper) is the data structure at the heart of
//! the continuous query engine. It plays two roles:
//!
//! 1. **Query decomposition** — a left-deep binary tree whose leaves are the
//!    small query subgraphs ("primitives": single edges or 2-edge paths) that
//!    are searched for on every incoming edge, ordered by selectivity; every
//!    internal node is the join of its children, and the root is the whole
//!    query (Properties 1–2). [`SjTree`] is that static structure, built
//!    either directly from an ordered list of leaf subgraphs
//!    ([`SjTree::from_leaves`]) or by the greedy selectivity-driven
//!    decomposition of Algorithm 4 ([`decompose`]).
//! 2. **Partial-match tracking** — every node owns a hash table of matches of
//!    its subgraph, keyed by the projection of the match onto the parent's
//!    *cut subgraph* (Properties 3–4), so that combining partial matches is a
//!    hash join. [`MatchStore`] owns those tables and
//!    [`MatchStore::insert`] implements the recursive `UPDATE-SJ-TREE`
//!    procedure of Algorithm 2.
//!
//! The analytic space/time cost model of Appendix A is provided by
//! [`cost::CostModel`] and backs the ablation experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod decompose;
mod node;
mod store;
mod tree;

pub use cost::CostModel;
pub use decompose::{decompose, expected_selectivity, DecompositionError, PrimitivePolicy};
pub use node::{NodeId, SjTreeNode};
pub use store::{InsertTrace, MatchStore, StoreStats};
pub use tree::SjTree;
