//! The common output shape of every generator.

use sp_graph::{DynamicGraph, EdgeData, EdgeEvent, EdgeId, Schema, VertexId};
use sp_query::EdgeSignature;
use sp_selectivity::{EdgeDistributionTimeline, SelectivityEstimator, StatsMode};

/// A generated dataset: a schema, an ordered edge stream and the list of
/// valid `(vertex type, edge type, vertex type)` triples that describe which
/// edges can occur (used by the query generators, mirroring how the paper
/// derives LSBench queries from the benchmark schema).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name ("netflow", "lsbench", "nytimes").
    pub name: String,
    /// Schema holding the interned vertex and edge type names.
    pub schema: Schema,
    /// The edge stream in arrival order.
    pub events: Vec<EdgeEvent>,
    /// Valid triples of the dataset's schema.
    pub valid_triples: Vec<EdgeSignature>,
}

impl Dataset {
    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct external vertex ids referenced by the stream.
    pub fn num_vertices(&self) -> usize {
        let mut ids: Vec<u64> = self.events.iter().flat_map(|e| [e.src, e.dst]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Builds a [`SelectivityEstimator`] from the first `prefix` events —
    /// the paper's "processing an initial set of edges from the graph
    /// stream" (Section 5.1). The 2-edge path statistics are collected
    /// incrementally, which matches Algorithm 5 run over the prefix graph.
    pub fn estimator_from_prefix(&self, prefix: usize) -> SelectivityEstimator {
        Self::estimator_from_events(
            &self.events[..prefix.min(self.events.len())],
            StatsMode::Cumulative,
        )
    }

    /// Builds a [`SelectivityEstimator`] with the given [`StatsMode`] over
    /// an arbitrary event slice (edge ids are assigned by slice position).
    /// This is the single seeding path shared by the drift benchmark, tests
    /// and examples: phase-specific statistics come from the matching
    /// segment of the stream, decayed statistics from
    /// [`StatsMode::Decayed`].
    pub fn estimator_from_events(events: &[EdgeEvent], mode: StatsMode) -> SelectivityEstimator {
        let mut est = SelectivityEstimator::new().with_mode(mode);
        for (i, ev) in events.iter().enumerate() {
            est.observe_edge(&EdgeData {
                id: EdgeId(i as u64),
                src: VertexId(ev.src),
                dst: VertexId(ev.dst),
                edge_type: ev.edge_type,
                timestamp: ev.timestamp,
            });
        }
        est
    }

    /// Collects the per-interval edge type distribution of the whole stream
    /// (Figure 6).
    pub fn edge_distribution(&self, interval: u64) -> EdgeDistributionTimeline {
        let mut timeline = EdgeDistributionTimeline::new(interval);
        for ev in &self.events {
            timeline.observe(ev.edge_type);
        }
        timeline.finish();
        timeline
    }

    /// Materializes the whole stream into a [`DynamicGraph`] (used by tests
    /// and the Figure 7 analysis, which runs Algorithm 5 over a graph
    /// snapshot).
    pub fn build_graph(&self) -> DynamicGraph {
        let mut g = DynamicGraph::new(self.schema.clone());
        for ev in &self.events {
            let src = g
                .ensure_vertex(VertexId(ev.src), ev.src_type)
                .unwrap_or(VertexId(ev.src));
            let dst = g
                .ensure_vertex(VertexId(ev.dst), ev.dst_type)
                .unwrap_or(VertexId(ev.dst));
            g.add_edge(src, dst, ev.edge_type, ev.timestamp);
        }
        g
    }

    /// The events of the stream (borrowed).
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::{EdgeType, Timestamp, VertexType};

    fn tiny_dataset() -> Dataset {
        let mut schema = Schema::new();
        let v = schema.intern_vertex_type("v");
        let t0 = schema.intern_edge_type("t0");
        let t1 = schema.intern_edge_type("t1");
        let events = vec![
            EdgeEvent::homogeneous(1, 2, v, t0, Timestamp(1)),
            EdgeEvent::homogeneous(2, 3, v, t1, Timestamp(2)),
            EdgeEvent::homogeneous(1, 3, v, t0, Timestamp(3)),
        ];
        Dataset {
            name: "tiny".into(),
            schema,
            events,
            valid_triples: vec![EdgeSignature::new(
                VertexType(0),
                EdgeType(0),
                VertexType(0),
            )],
        }
    }

    #[test]
    fn counts_vertices_and_events() {
        let d = tiny_dataset();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.num_vertices(), 3);
    }

    #[test]
    fn estimator_prefix_only_sees_prefix() {
        let d = tiny_dataset();
        let est = d.estimator_from_prefix(2);
        assert_eq!(est.num_edges_observed(), 2);
        let full = d.estimator_from_prefix(100);
        assert_eq!(full.num_edges_observed(), 3);
    }

    #[test]
    fn graph_matches_stream() {
        let d = tiny_dataset();
        let g = d.build_graph();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn timeline_covers_stream() {
        let d = tiny_dataset();
        let t = d.edge_distribution(2);
        assert_eq!(t.num_intervals(), 2);
        let total: u64 = t.snapshots().iter().map(|h| h.total()).sum();
        assert_eq!(total, 3);
    }
}
