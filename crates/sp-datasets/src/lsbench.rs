//! LSBench-like synthetic social-media stream.
//!
//! The Linked Stream Benchmark (LSBench / SIB generator) produces an RDF
//! social stream with a *static* part (the social network: profiles,
//! friendships, memberships) and a *streaming* part (GPS check-ins, posts and
//! comments, likes, tags, photos). The paper's Figure 6c shows the resulting
//! edge-type distribution shifting around the middle of the stream, and
//! Figure 7 shows the strongly skewed 2-edge-path distribution over its 45
//! edge types.
//!
//! This generator reproduces those characteristics: 45 relation types over 11
//! vertex types, a static phase followed by an activity phase, Zipf-popular
//! entities and a long tail of rare relations.

use crate::dataset::Dataset;
use crate::zipf::{weighted_index, ZipfSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sp_graph::{EdgeEvent, Schema, Timestamp, VertexType};
use sp_query::EdgeSignature;

/// Which half of the stream a relation appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The static social-network part (first ~40% of the stream).
    Static,
    /// The activity streams (posts, comments, likes, photos, check-ins).
    Activity,
}

/// One relation of the LSBench-like schema:
/// `(name, source vertex type, destination vertex type, weight, phase)`.
pub const RELATIONS: [(&str, &str, &str, f64, Phase); 45] = [
    // --- static social network ---
    ("knows", "person", "person", 10.0, Phase::Static),
    ("follows", "person", "person", 6.0, Phase::Static),
    ("hasInterest", "person", "tag", 4.0, Phase::Static),
    ("studyAt", "person", "organisation", 1.0, Phase::Static),
    ("workAt", "person", "organisation", 1.5, Phase::Static),
    ("basedNear", "person", "place", 1.2, Phase::Static),
    ("hasModerator", "forum", "person", 0.5, Phase::Static),
    ("hasMember", "forum", "person", 3.0, Phase::Static),
    ("hasAccount", "person", "channel", 0.8, Phase::Static),
    ("likesTag", "person", "tag", 1.0, Phase::Static),
    ("memberOfGroup", "person", "group", 1.3, Phase::Static),
    ("friendRequest", "person", "person", 0.7, Phase::Static),
    ("blocks", "person", "person", 0.1, Phase::Static),
    ("endorses", "person", "person", 0.4, Phase::Static),
    ("hasSkill", "person", "tag", 0.9, Phase::Static),
    // --- activity streams ---
    ("createsPost", "person", "post", 8.0, Phase::Activity),
    ("postHasTag", "post", "tag", 6.0, Phase::Activity),
    ("likesPost", "person", "post", 12.0, Phase::Activity),
    ("createsComment", "person", "comment", 7.0, Phase::Activity),
    ("replyOf", "comment", "post", 7.0, Phase::Activity),
    ("commentHasTag", "comment", "tag", 1.5, Phase::Activity),
    ("likesComment", "person", "comment", 3.0, Phase::Activity),
    ("postInForum", "post", "forum", 4.0, Phase::Activity),
    ("subscribes", "person", "forum", 1.5, Phase::Activity),
    ("sharesPost", "person", "post", 2.0, Phase::Activity),
    ("mentionsUser", "post", "person", 2.5, Phase::Activity),
    ("uploadsPhoto", "person", "photo", 3.0, Phase::Activity),
    ("photoHasTag", "photo", "tag", 2.0, Phase::Activity),
    ("likesPhoto", "person", "photo", 4.0, Phase::Activity),
    ("taggedIn", "person", "photo", 1.8, Phase::Activity),
    ("photoTakenAt", "photo", "place", 1.0, Phase::Activity),
    ("checkin", "person", "place", 5.0, Phase::Activity),
    ("checkinWith", "person", "person", 0.8, Phase::Activity),
    ("attendsEvent", "person", "event", 0.9, Phase::Activity),
    ("eventAt", "event", "place", 0.3, Phase::Activity),
    ("invites", "person", "event", 0.5, Phase::Activity),
    ("retweets", "person", "post", 1.7, Phase::Activity),
    ("quotes", "post", "post", 0.6, Phase::Activity),
    ("linksTo", "post", "channel", 0.4, Phase::Activity),
    ("streamsOn", "person", "channel", 0.3, Phase::Activity),
    ("donatesTo", "person", "channel", 0.1, Phase::Activity),
    ("reportsPost", "person", "post", 0.2, Phase::Activity),
    ("editsPost", "person", "post", 0.6, Phase::Activity),
    ("pinsPost", "forum", "post", 0.15, Phase::Activity),
    ("archivesPost", "forum", "post", 0.05, Phase::Activity),
];

/// External-id offset separating entity pools of different vertex types.
const ID_STRIDE: u64 = 100_000_000;

/// Configuration of the social-stream generator.
#[derive(Debug, Clone)]
pub struct LsbenchConfig {
    /// Number of persons (the other entity pools scale from this).
    pub num_persons: usize,
    /// Number of edges to generate.
    pub num_edges: usize,
    /// Fraction of the stream devoted to the static phase.
    pub static_fraction: f64,
    /// Zipf exponent of entity popularity.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LsbenchConfig {
    fn default() -> Self {
        Self {
            num_persons: 10_000,
            num_edges: 200_000,
            static_fraction: 0.4,
            popularity_exponent: 0.8,
            seed: 11,
        }
    }
}

impl LsbenchConfig {
    /// Small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            num_persons: 300,
            num_edges: 5_000,
            ..Self::default()
        }
    }

    /// Pool size for a given vertex type, derived from `num_persons`.
    fn pool_size(&self, vertex_type_name: &str) -> usize {
        let p = self.num_persons.max(10);
        match vertex_type_name {
            "person" => p,
            "post" => p * 2,
            "comment" => p * 2,
            "photo" => p,
            "tag" => (p / 10).max(5),
            "place" => (p / 20).max(5),
            "forum" => (p / 50).max(3),
            "organisation" => (p / 100).max(3),
            "channel" => (p / 100).max(3),
            "group" => (p / 50).max(3),
            "event" => (p / 20).max(3),
            other => unreachable!("unknown vertex type {other}"),
        }
    }

    /// Generates the stream.
    pub fn generate(&self) -> Dataset {
        let mut schema = Schema::new();
        // Intern vertex types first so pools can be indexed by VertexType id.
        let vertex_names = [
            "person",
            "post",
            "comment",
            "photo",
            "tag",
            "place",
            "forum",
            "organisation",
            "channel",
            "group",
            "event",
        ];
        let mut vertex_types = std::collections::HashMap::new();
        for name in vertex_names {
            vertex_types.insert(name, schema.intern_vertex_type(name));
        }
        struct Rel {
            edge_type: sp_graph::EdgeType,
            src: VertexType,
            dst: VertexType,
            src_pool: ZipfSampler,
            dst_pool: ZipfSampler,
            weight: f64,
            phase: Phase,
        }
        let mut rels = Vec::with_capacity(RELATIONS.len());
        for (name, src, dst, weight, phase) in RELATIONS {
            let edge_type = schema.intern_edge_type(name);
            rels.push(Rel {
                edge_type,
                src: vertex_types[src],
                dst: vertex_types[dst],
                src_pool: ZipfSampler::new(self.pool_size(src), self.popularity_exponent),
                dst_pool: ZipfSampler::new(self.pool_size(dst), self.popularity_exponent),
                weight,
                phase,
            });
        }

        let static_weights: Vec<f64> = rels
            .iter()
            .map(|r| {
                if r.phase == Phase::Static {
                    r.weight
                } else {
                    0.0
                }
            })
            .collect();
        let activity_weights: Vec<f64> = rels
            .iter()
            .map(|r| {
                if r.phase == Phase::Activity {
                    r.weight
                } else {
                    0.0
                }
            })
            .collect();

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let static_len = (self.num_edges as f64 * self.static_fraction) as usize;
        let mut events = Vec::with_capacity(self.num_edges);
        for i in 0..self.num_edges {
            let weights = if i < static_len {
                &static_weights
            } else {
                &activity_weights
            };
            let rel = &rels[weighted_index(weights, &mut rng)];
            let src_entity =
                (rel.src.0 as u64 + 1) * ID_STRIDE + rel.src_pool.sample(&mut rng) as u64;
            let dst_entity =
                (rel.dst.0 as u64 + 1) * ID_STRIDE + rel.dst_pool.sample(&mut rng) as u64;
            if src_entity == dst_entity {
                continue;
            }
            events.push(EdgeEvent {
                src: src_entity,
                dst: dst_entity,
                src_type: rel.src,
                dst_type: rel.dst,
                edge_type: rel.edge_type,
                timestamp: Timestamp(i as u64),
                arrival_ns: 0,
            });
        }

        let valid_triples = rels
            .iter()
            .map(|r| EdgeSignature::new(r.src, r.edge_type, r.dst))
            .collect();

        Dataset {
            name: "lsbench".into(),
            schema,
            events,
            valid_triples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_five_edge_types() {
        let d = LsbenchConfig::tiny().generate();
        assert_eq!(d.schema.num_edge_types(), 45);
        assert_eq!(d.valid_triples.len(), 45);
        assert_eq!(d.schema.num_vertex_types(), 11);
    }

    #[test]
    fn distribution_shifts_between_phases() {
        let d = LsbenchConfig::tiny().generate();
        // Interval = half the stream: the first snapshot is static-dominated,
        // the second activity-dominated, so the rank order changes
        // (Figure 6c's mid-stream shift).
        let timeline = d.edge_distribution((d.len() / 2) as u64);
        assert!(timeline.num_intervals() >= 2);
        let knows = d.schema.edge_type("knows").unwrap();
        let likes = d.schema.edge_type("likesPost").unwrap();
        let first = &timeline.snapshots()[0];
        let second = &timeline.snapshots()[1];
        assert!(first.count(knows) > first.count(likes));
        assert!(second.count(likes) > second.count(knows));
        assert!(timeline.rank_stability() < 1.0);
    }

    #[test]
    fn two_edge_path_distribution_is_heavily_skewed() {
        let d = LsbenchConfig::tiny().generate();
        let g = d.build_graph();
        let paths = sp_selectivity::TwoEdgePathCounter::from_graph(&g);
        assert!(
            paths.num_signatures() > 50,
            "got {}",
            paths.num_signatures()
        );
        let desc = paths.descending();
        let top = desc[0].1 as f64;
        let median = desc[desc.len() / 2].1 as f64;
        assert!(top / median > 10.0, "distribution not skewed enough");
    }

    #[test]
    fn vertex_id_pools_do_not_collide() {
        let d = LsbenchConfig::tiny().generate();
        for e in d.events() {
            assert_ne!(e.src / ID_STRIDE, 0);
            assert_ne!(e.dst / ID_STRIDE, 0);
            if e.src_type != e.dst_type {
                assert_ne!(e.src / ID_STRIDE, e.dst / ID_STRIDE);
            }
        }
    }

    #[test]
    fn reproducible_given_seed() {
        let a = LsbenchConfig::tiny().generate();
        let b = LsbenchConfig::tiny().generate();
        assert_eq!(a.events, b.events);
    }
}
