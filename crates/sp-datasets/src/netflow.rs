//! CAIDA-like synthetic network traffic stream.
//!
//! The real dataset ("CAIDA Internet Anonymized Traces 2013", 22M netflow
//! records over one minute) is licence-gated; this generator reproduces the
//! properties the algorithms are sensitive to:
//!
//! * every vertex is an IP host; edges are typed by protocol — the same
//!   seven classes used in the paper's query generation (ICMP, TCP, UDP,
//!   IPv6, AH, ESP, GRE);
//! * the protocol mix is heavily skewed (TCP/UDP dominate, the tunnelling
//!   protocols are orders of magnitude rarer), matching the shape of
//!   Figure 6b;
//! * host popularity is power-law distributed, so the 2-edge-path
//!   distribution is skewed like Figure 7;
//! * the paper filters private-subnet addresses (10.x, 192.168.x) to avoid
//!   artificial mega-hubs — the generator models the same effect with a cap
//!   on how much probability mass the most popular host can take.

use crate::dataset::Dataset;
use crate::zipf::{weighted_index, ZipfSampler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{EdgeEvent, Schema, Timestamp};
use sp_query::EdgeSignature;

/// The seven protocol edge types of the netflow dataset, with their
/// approximate share of the traffic mix (TCP-heavy, tunnelling protocols
/// rare).
pub const PROTOCOLS: [(&str, f64); 7] = [
    ("TCP", 0.55),
    ("UDP", 0.30),
    ("ICMP", 0.08),
    ("IPv6", 0.04),
    ("GRE", 0.02),
    ("ESP", 0.008),
    ("AH", 0.002),
];

/// Configuration of the netflow generator.
#[derive(Debug, Clone)]
pub struct NetflowConfig {
    /// Number of distinct hosts (vertices).
    pub num_hosts: usize,
    /// Number of flow records (edges) to generate.
    pub num_edges: usize,
    /// Zipf exponent of host popularity (0 = uniform, 1 ≈ internet-like).
    pub popularity_exponent: f64,
    /// RNG seed (streams are reproducible given the same config).
    pub seed: u64,
}

impl Default for NetflowConfig {
    fn default() -> Self {
        Self {
            num_hosts: 10_000,
            num_edges: 100_000,
            popularity_exponent: 0.9,
            seed: 42,
        }
    }
}

impl NetflowConfig {
    /// Small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            num_hosts: 200,
            num_edges: 2_000,
            ..Self::default()
        }
    }

    /// Generates the stream.
    pub fn generate(&self) -> Dataset {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let protocol_types: Vec<_> = PROTOCOLS
            .iter()
            .map(|(name, _)| schema.intern_edge_type(name))
            .collect();
        let weights: Vec<f64> = PROTOCOLS.iter().map(|(_, w)| *w).collect();

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let popularity = ZipfSampler::new(self.num_hosts.max(2), self.popularity_exponent);
        let mut events = Vec::with_capacity(self.num_edges);
        for i in 0..self.num_edges {
            let src = popularity.sample(&mut rng) as u64;
            // Destinations mix popular services (Zipf) with random hosts so
            // the graph is not a star.
            let dst = if rng.gen_bool(0.7) {
                popularity.sample(&mut rng) as u64
            } else {
                rng.gen_range(0..self.num_hosts as u64)
            };
            if src == dst {
                continue;
            }
            let proto = protocol_types[weighted_index(&weights, &mut rng)];
            events.push(EdgeEvent::homogeneous(
                src,
                dst,
                ip,
                proto,
                Timestamp(i as u64),
            ));
        }

        let valid_triples = protocol_types
            .iter()
            .map(|&t| EdgeSignature::new(ip, t, ip))
            .collect();

        Dataset {
            name: "netflow".into(),
            schema,
            events,
            valid_triples,
        }
    }
}

/// CAIDA-like traffic whose protocol mix **flips mid-stream** — the drift
/// workload behind the `drift` benchmark and the adaptivity tests.
///
/// Protocols are drawn by *rank* from a [`ZipfSampler`] over the seven
/// protocol classes: before `shift_at` edges, rank 0 maps to TCP (the
/// [`PROTOCOLS`] order — TCP common, AH rare); from `shift_at` on, the rank
/// order is reversed, so AH floods while TCP dries up. A query like
/// `AH → TCP` therefore has its selectivity-optimal leaf order inverted by
/// the shift: exactly the situation the paper's "selectivity order remains
/// the same" assumption (Section 5.1) excludes, and the situation adaptive
/// re-decomposition exists for.
#[derive(Debug, Clone)]
pub struct NetflowDriftConfig {
    /// Number of distinct hosts (vertices).
    pub num_hosts: usize,
    /// Number of flow records (edges) to generate.
    pub num_edges: usize,
    /// Stream position (in generated edges) at which the protocol rank
    /// order reverses.
    pub shift_at: usize,
    /// Zipf exponent of host popularity (matches [`NetflowConfig`]).
    pub popularity_exponent: f64,
    /// Zipf exponent of the protocol *rank* distribution: larger means the
    /// dominant protocol dominates harder, making the flip sharper.
    pub protocol_exponent: f64,
    /// RNG seed (streams are reproducible given the same config).
    pub seed: u64,
}

impl Default for NetflowDriftConfig {
    fn default() -> Self {
        Self {
            num_hosts: 10_000,
            num_edges: 100_000,
            shift_at: 50_000,
            popularity_exponent: 0.9,
            protocol_exponent: 1.8,
            seed: 42,
        }
    }
}

impl NetflowDriftConfig {
    /// Small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            num_hosts: 200,
            num_edges: 3_000,
            shift_at: 1_500,
            ..Self::default()
        }
    }

    /// Generates the shifting stream.
    pub fn generate(&self) -> Dataset {
        let mut schema = Schema::new();
        let ip = schema.intern_vertex_type("ip");
        let protocol_types: Vec<_> = PROTOCOLS
            .iter()
            .map(|(name, _)| schema.intern_edge_type(name))
            .collect();
        let n_protocols = protocol_types.len();

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let popularity = ZipfSampler::new(self.num_hosts.max(2), self.popularity_exponent);
        let protocol_rank = ZipfSampler::new(n_protocols, self.protocol_exponent);
        let mut events = Vec::with_capacity(self.num_edges);
        for i in 0..self.num_edges {
            let src = popularity.sample(&mut rng) as u64;
            let dst = if rng.gen_bool(0.7) {
                popularity.sample(&mut rng) as u64
            } else {
                rng.gen_range(0..self.num_hosts as u64)
            };
            if src == dst {
                continue;
            }
            let rank = protocol_rank.sample(&mut rng);
            // The flip: the same Zipf rank indexes the protocol table from
            // the opposite end after the shift.
            let idx = if i < self.shift_at {
                rank
            } else {
                n_protocols - 1 - rank
            };
            events.push(EdgeEvent::homogeneous(
                src,
                dst,
                ip,
                protocol_types[idx],
                Timestamp(i as u64),
            ));
        }

        let valid_triples = protocol_types
            .iter()
            .map(|&t| EdgeSignature::new(ip, t, ip))
            .collect();

        Dataset {
            name: "netflow-drift".into(),
            schema,
            events,
            valid_triples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_volume() {
        let d = NetflowConfig::tiny().generate();
        // Self-loops are skipped, so allow a small deficit.
        assert!(d.len() > 1_800 && d.len() <= 2_000);
        assert_eq!(d.schema.num_edge_types(), 7);
        assert_eq!(d.valid_triples.len(), 7);
        assert!(d.num_vertices() <= 200);
    }

    #[test]
    fn protocol_mix_is_skewed_like_the_paper() {
        let d = NetflowConfig::tiny().generate();
        let est = d.estimator_from_prefix(d.len());
        let hist = est.edge_histogram();
        let tcp = d.schema.edge_type("TCP").unwrap();
        let ah = d.schema.edge_type("AH").unwrap();
        assert!(
            hist.count(tcp) > 50 * hist.count(ah).max(1) / 10,
            "TCP must dominate AH: {} vs {}",
            hist.count(tcp),
            hist.count(ah)
        );
        // Rarest-first order puts a tunnelling protocol first.
        let order = hist.rank_order();
        let rare_name = d.schema.edge_type_name(order[0]);
        assert!(["AH", "ESP", "GRE", "IPv6"].contains(&rare_name));
    }

    #[test]
    fn streams_are_reproducible() {
        let a = NetflowConfig::tiny().generate();
        let b = NetflowConfig::tiny().generate();
        assert_eq!(a.events, b.events);
        let c = NetflowConfig {
            seed: 7,
            ..NetflowConfig::tiny()
        }
        .generate();
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn timestamps_are_monotone() {
        let d = NetflowConfig::tiny().generate();
        assert!(d
            .events
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn no_self_loops() {
        let d = NetflowConfig::tiny().generate();
        assert!(d.events.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn drift_stream_flips_the_protocol_ranking() {
        let cfg = NetflowDriftConfig::tiny();
        let d = cfg.generate();
        let tcp = d.schema.edge_type("TCP").unwrap();
        let ah = d.schema.edge_type("AH").unwrap();
        // Count per phase by stream position (self-loop skips shift the
        // boundary slightly; timestamps carry the generated index).
        let mut pre = [0u64; 2];
        let mut post = [0u64; 2];
        for ev in &d.events {
            let phase = if (ev.timestamp.0 as usize) < cfg.shift_at {
                &mut pre
            } else {
                &mut post
            };
            if ev.edge_type == tcp {
                phase[0] += 1;
            } else if ev.edge_type == ah {
                phase[1] += 1;
            }
        }
        assert!(
            pre[0] > 10 * pre[1].max(1),
            "phase 1 must be TCP-dominated: tcp={} ah={}",
            pre[0],
            pre[1]
        );
        assert!(
            post[1] > 10 * post[0].max(1),
            "phase 2 must be AH-dominated: tcp={} ah={}",
            post[0],
            post[1]
        );
    }

    #[test]
    fn drift_streams_are_reproducible() {
        let a = NetflowDriftConfig::tiny().generate();
        let b = NetflowDriftConfig::tiny().generate();
        assert_eq!(a.events, b.events);
        assert_eq!(a.name, "netflow-drift");
        assert!(a.len() > 2_500);
    }
}
