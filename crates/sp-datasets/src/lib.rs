//! # sp-datasets — synthetic stream and query generators
//!
//! The paper evaluates on three datasets that cannot be redistributed here:
//! the CAIDA 2013 anonymized internet backbone traces, the LSBench/SIB
//! synthetic RDF social stream and the New York Times annotated corpus. This
//! crate provides **synthetic generators that reproduce the distributional
//! properties the algorithms care about** — the edge-type skew, the degree
//! distribution, the two-phase shift of the social stream and the 2-edge-path
//! skew — so that every experiment of Section 6 can be re-run end to end
//! (see DESIGN.md for the substitution rationale).
//!
//! * [`netflow`] — CAIDA-like network traffic: "ip" vertices, 7 protocol edge
//!   types (ICMP, TCP, UDP, IPv6, AH, ESP, GRE) with a heavy skew and
//!   power-law host popularity.
//! * [`lsbench`] — LSBench-like social stream: a static friendship phase
//!   followed by activity streams (posts, comments, likes, tags, photos, GPS
//!   check-ins), ~45 edge types.
//! * [`nytimes`] — news stream: articles mentioning persons, organizations,
//!   locations and topics (4 edge types).
//! * [`queries`] — the random query generators of Section 6.4: path queries,
//!   binary-tree queries, n-ary tree queries over valid triples and
//!   k-partite queries, plus the filtering/sampling helpers the paper uses
//!   (drop queries with unseen 2-edge paths, sample by Expected Selectivity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod lsbench;
pub mod netflow;
pub mod nytimes;
pub mod queries;
mod zipf;

pub use dataset::Dataset;
pub use lsbench::LsbenchConfig;
pub use netflow::{NetflowConfig, NetflowDriftConfig};
pub use nytimes::NytimesConfig;
pub use queries::{soc_chain_rule, wide_soc_rules, QueryGenerator, QueryKind};
pub use zipf::ZipfSampler;
