//! Online-news stream generator (New York Times-like).
//!
//! The paper's smallest dataset is a stream of news articles annotated with
//! the entities they mention: persons, organizations, locations and topics —
//! four `article_mentions_*` edge types (Figure 6a). The generator emits one
//! article vertex after another, each mentioning a Zipf-distributed set of
//! entities, so the edge-type mix and the entity popularity skew match the
//! original.

use crate::dataset::Dataset;
use crate::zipf::{weighted_index, ZipfSampler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{EdgeEvent, Schema, Timestamp};
use sp_query::EdgeSignature;

/// The four mention relations with their share of all mentions.
pub const MENTION_TYPES: [(&str, &str, f64); 4] = [
    ("article_mentions_person", "person", 0.42),
    ("article_mentions_org", "organization", 0.27),
    ("article_mentions_topic", "topic", 0.19),
    ("article_mentions_geoloc", "geoloc", 0.12),
];

/// External-id offset separating entity pools of different types.
const ID_STRIDE: u64 = 100_000_000;

/// Configuration of the news-stream generator.
#[derive(Debug, Clone)]
pub struct NytimesConfig {
    /// Number of articles in the stream.
    pub num_articles: usize,
    /// Average number of entity mentions per article.
    pub mentions_per_article: usize,
    /// Size of each entity pool (persons, orgs, topics, geolocs).
    pub entities_per_type: usize,
    /// Zipf exponent of entity popularity.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NytimesConfig {
    fn default() -> Self {
        Self {
            num_articles: 20_000,
            mentions_per_article: 8,
            entities_per_type: 5_000,
            popularity_exponent: 1.0,
            seed: 7,
        }
    }
}

impl NytimesConfig {
    /// Small configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            num_articles: 500,
            mentions_per_article: 5,
            entities_per_type: 100,
            ..Self::default()
        }
    }

    /// Generates the stream.
    pub fn generate(&self) -> Dataset {
        let mut schema = Schema::new();
        let article = schema.intern_vertex_type("article");
        let mention_edges: Vec<_> = MENTION_TYPES
            .iter()
            .map(|(edge, vertex, _)| {
                (
                    schema.intern_edge_type(edge),
                    schema.intern_vertex_type(vertex),
                )
            })
            .collect();
        let weights: Vec<f64> = MENTION_TYPES.iter().map(|(_, _, w)| *w).collect();

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let entity_popularity =
            ZipfSampler::new(self.entities_per_type.max(2), self.popularity_exponent);
        let mut events = Vec::new();
        let mut ts = 0u64;
        for a in 0..self.num_articles as u64 {
            // Mentions per article vary between half and 1.5x the mean.
            let lo = (self.mentions_per_article / 2).max(1);
            let hi = (self.mentions_per_article * 3 / 2).max(lo + 1);
            let mentions = rng.gen_range(lo..hi);
            for _ in 0..mentions {
                let k = weighted_index(&weights, &mut rng);
                let (edge_type, vertex_type) = mention_edges[k];
                let entity = (k as u64 + 1) * ID_STRIDE + entity_popularity.sample(&mut rng) as u64;
                events.push(EdgeEvent {
                    src: a,
                    dst: entity,
                    src_type: article,
                    dst_type: vertex_type,
                    edge_type,
                    timestamp: Timestamp(ts),
                    arrival_ns: 0,
                });
                ts += 1;
            }
        }

        let valid_triples = mention_edges
            .iter()
            .map(|&(e, v)| EdgeSignature::new(article, e, v))
            .collect();

        Dataset {
            name: "nytimes".into(),
            schema,
            events,
            valid_triples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_edge_types_with_expected_skew() {
        let d = NytimesConfig::tiny().generate();
        assert_eq!(d.schema.num_edge_types(), 4);
        let est = d.estimator_from_prefix(d.len());
        let person = d.schema.edge_type("article_mentions_person").unwrap();
        let geo = d.schema.edge_type("article_mentions_geoloc").unwrap();
        assert!(est.edge_histogram().count(person) > est.edge_histogram().count(geo));
    }

    #[test]
    fn article_ids_do_not_collide_with_entity_ids() {
        let d = NytimesConfig::tiny().generate();
        for e in d.events() {
            assert!(e.src < ID_STRIDE);
            assert!(e.dst >= ID_STRIDE);
        }
    }

    #[test]
    fn stream_is_reproducible_and_ordered() {
        let a = NytimesConfig::tiny().generate();
        let b = NytimesConfig::tiny().generate();
        assert_eq!(a.events, b.events);
        assert!(a.events.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn mentions_volume_scales_with_articles() {
        let d = NytimesConfig::tiny().generate();
        let per_article = d.len() as f64 / 500.0;
        assert!((2.0..=8.0).contains(&per_article), "got {per_article}");
        assert_eq!(d.valid_triples.len(), 4);
    }
}
