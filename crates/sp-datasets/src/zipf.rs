//! A small Zipf/power-law sampler.
//!
//! Real traffic and social graphs have heavy-tailed vertex popularity; the
//! generators use this sampler to pick sources and destinations so that the
//! resulting degree distribution (and therefore the 2-edge-path distribution)
//! is skewed like the paper's datasets rather than uniform.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s` (typically 0.8–1.2;
    /// larger means more skew).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (the constructor rejects empty samplers); present for
    /// clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN in cumulative weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Samples an index from explicit (unnormalized) weights.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_are_more_likely() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50]);
        assert!(counts[0] > counts[99]);
        // Rank 0 should take roughly 1/H(100) ≈ 19% of the mass.
        assert!(counts[0] > 2_000);
    }

    #[test]
    fn samples_stay_in_range() {
        let sampler = ZipfSampler::new(5, 1.2);
        assert_eq!(sampler.len(), 5);
        assert!(!sampler.is_empty());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn exponent_zero_is_uniform_ish() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "uniform sampler too skewed: {counts:?}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&weights, &mut rng), 1);
        }
        let weights = [1.0, 1.0];
        let mut seen0 = false;
        let mut seen1 = false;
        for _ in 0..200 {
            match weighted_index(&weights, &mut rng) {
                0 => seen0 = true,
                1 => seen1 = true,
                _ => unreachable!(),
            }
        }
        assert!(seen0 && seen1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_sampler_is_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
