//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **join order** — selectivity-ordered leaves (Theorem 1/2) vs the same
//!   leaves in reverse (most frequent primitive first);
//! * **lazy search** — the bitmap-gated search vs track-everything on the
//!   same decomposition;
//! * **window purging** — the cost of maintaining a sliding window with
//!   different purge intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};
use sp_query::QuerySubgraph;
use sp_sjtree::{decompose, PrimitivePolicy, SjTree};
use streampattern::{ContinuousQueryEngine, Strategy, StreamProcessor};

const STREAM_EDGES: usize = 1_000;

fn fixture() -> (
    sp_datasets::Dataset,
    streampattern::SelectivityEstimator,
    Vec<streampattern::QueryGraph>,
) {
    let dataset = NetflowConfig {
        num_hosts: 1_000,
        num_edges: STREAM_EDGES,
        ..NetflowConfig::default()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 0xAB);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 10, &estimator);
    let queries = queries.into_iter().take(2).collect();
    (dataset, estimator, queries)
}

/// Rebuilds an SJ-Tree with the leaf order reversed (a selectivity-agnostic
/// join order).
fn reversed_tree(tree: &SjTree) -> SjTree {
    let query = tree.query().clone();
    let mut leaves: Vec<QuerySubgraph> = tree.leaf_subgraphs().cloned().collect();
    leaves.reverse();
    SjTree::from_leaves(query, leaves)
}

fn join_order_ablation(c: &mut Criterion) {
    let (dataset, estimator, queries) = fixture();
    let mut group = c.benchmark_group("ablation_join_order");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (i, q) in queries.iter().enumerate() {
        let ordered = decompose(q, PrimitivePolicy::SingleEdge, &estimator).unwrap();
        let reversed = reversed_tree(&ordered);
        for (label, tree) in [("selectivity-ordered", &ordered), ("reversed", &reversed)] {
            group.bench_with_input(BenchmarkId::new(label, i), tree, |b, tree| {
                b.iter(|| {
                    let engine =
                        ContinuousQueryEngine::from_tree(tree.clone(), true, None).unwrap();
                    let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine)
                        .with_statistics(false);
                    proc.process_all(dataset.events().iter())
                })
            });
        }
    }
    group.finish();
}

fn lazy_ablation(c: &mut Criterion) {
    let (dataset, estimator, queries) = fixture();
    let mut group = c.benchmark_group("ablation_lazy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (i, q) in queries.iter().enumerate() {
        for strategy in [
            Strategy::Single,
            Strategy::SingleLazy,
            Strategy::Path,
            Strategy::PathLazy,
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.label(), i), q, |b, q| {
                b.iter(|| {
                    let engine =
                        ContinuousQueryEngine::new(q.clone(), strategy, &estimator, None).unwrap();
                    let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine)
                        .with_statistics(false);
                    proc.process_all(dataset.events().iter())
                })
            });
        }
    }
    group.finish();
}

fn window_purge_ablation(c: &mut Criterion) {
    let (dataset, estimator, queries) = fixture();
    let q = &queries[0];
    let mut group = c.benchmark_group("ablation_window_purge");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for purge_interval in [64u64, 1024, 16_384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(purge_interval),
            &purge_interval,
            |b, &interval| {
                b.iter(|| {
                    let engine = ContinuousQueryEngine::new(
                        q.clone(),
                        Strategy::SingleLazy,
                        &estimator,
                        Some(2_000),
                    )
                    .unwrap();
                    let mut proc = StreamProcessor::with_engine(dataset.schema.clone(), engine)
                        .with_statistics(false)
                        .with_purge_interval(interval);
                    proc.process_all(dataset.events().iter())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    join_order_ablation,
    lazy_ablation,
    window_purge_ablation
);
criterion_main!(benches);
