//! Figure 7 / Algorithm 5 benchmark: how fast can the 2-edge path
//! distribution be computed, both as a batch pass over a graph snapshot
//! (`COUNT-2-EDGE-PATHS`) and incrementally as edges stream in? The paper
//! reports ~50 s for 130M edges without optimization; this tracks the same
//! computation at a smaller scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp_datasets::{LsbenchConfig, NetflowConfig};
use sp_graph::{EdgeData, EdgeId, VertexId};
use sp_selectivity::{SelectivityEstimator, TwoEdgePathCounter};

fn batch_vs_incremental(c: &mut Criterion) {
    let datasets = vec![
        (
            "netflow",
            NetflowConfig {
                num_hosts: 2_000,
                num_edges: 20_000,
                ..NetflowConfig::default()
            }
            .generate(),
        ),
        (
            "lsbench",
            LsbenchConfig {
                num_persons: 2_000,
                num_edges: 20_000,
                ..LsbenchConfig::default()
            }
            .generate(),
        ),
    ];

    let mut group = c.benchmark_group("fig7_path_stats");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, dataset) in &datasets {
        group.throughput(Throughput::Elements(dataset.len() as u64));
        let graph = dataset.build_graph();
        group.bench_with_input(
            BenchmarkId::new("algorithm5_batch", name),
            &graph,
            |b, graph| b.iter(|| TwoEdgePathCounter::from_graph(graph).total()),
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_stream", name),
            dataset,
            |b, dataset| {
                b.iter(|| {
                    let mut counter = TwoEdgePathCounter::new();
                    for (i, ev) in dataset.events().iter().enumerate() {
                        counter.observe_edge(&EdgeData {
                            id: EdgeId(i as u64),
                            src: VertexId(ev.src),
                            dst: VertexId(ev.dst),
                            edge_type: ev.edge_type,
                            timestamp: ev.timestamp,
                        });
                    }
                    counter.total()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_estimator_stream", name),
            dataset,
            |b, dataset| {
                b.iter(|| {
                    let mut est = SelectivityEstimator::new();
                    for (i, ev) in dataset.events().iter().enumerate() {
                        est.observe_edge(&EdgeData {
                            id: EdgeId(i as u64),
                            src: VertexId(ev.src),
                            dst: VertexId(ev.dst),
                            edge_type: ev.edge_type,
                            timestamp: ev.timestamp,
                        });
                    }
                    est.num_edges_observed()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_vs_incremental);
criterion_main!(benches);
