//! Micro-benchmarks of the individual components on the hot path: anchored
//! subgraph isomorphism around one edge, the SJ-Tree hash-join insert, the
//! greedy decomposition, and the dataset generators themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind, ZipfSampler};
use sp_iso::find_matches_containing_edge;
use sp_query::QuerySubgraph;
use sp_sjtree::{decompose, MatchStore, PrimitivePolicy};

fn anchored_search(c: &mut Criterion) {
    let dataset = NetflowConfig {
        num_hosts: 2_000,
        num_edges: 20_000,
        ..NetflowConfig::default()
    }
    .generate();
    let graph = dataset.build_graph();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 3);
    let query = generator
        .generate_valid_batch(QueryKind::Path { length: 3 }, 10, &estimator)
        .into_iter()
        .next()
        .expect("at least one valid query");
    let single = QuerySubgraph::from_edges(&query, [query.edge_ids().next().unwrap()]);
    let wedge_edges: Vec<_> = query.edge_ids().take(2).collect();
    let wedge = QuerySubgraph::from_edges(&query, wedge_edges);
    let edges: Vec<_> = graph.edges().copied().take(256).collect();

    let mut group = c.benchmark_group("anchored_search");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("single_edge_leaf", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for e in &edges {
                n += find_matches_containing_edge(&graph, &query, &single, e).len();
            }
            n
        })
    });
    group.bench_function("two_edge_wedge_leaf", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for e in &edges {
                n += find_matches_containing_edge(&graph, &query, &wedge, e).len();
            }
            n
        })
    });
    group.finish();
}

fn sjtree_operations(c: &mut Criterion) {
    let dataset = NetflowConfig {
        num_hosts: 1_000,
        num_edges: 5_000,
        ..NetflowConfig::default()
    }
    .generate();
    let graph = dataset.build_graph();
    let estimator = dataset.estimator_from_prefix(dataset.len());
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 5);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 10, &estimator);
    let query = queries.into_iter().next().expect("valid query");

    let mut group = c.benchmark_group("sjtree");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("decompose_single", |b| {
        b.iter(|| {
            decompose(&query, PrimitivePolicy::SingleEdge, &estimator)
                .unwrap()
                .num_nodes()
        })
    });
    group.bench_function("decompose_path", |b| {
        b.iter(|| {
            decompose(&query, PrimitivePolicy::TwoEdgePath, &estimator)
                .unwrap()
                .num_nodes()
        })
    });

    // Hash-join insert throughput: pre-compute leaf matches for a batch of
    // edges, then measure pushing them through the store.
    let tree = decompose(&query, PrimitivePolicy::SingleEdge, &estimator).unwrap();
    let mut batch = Vec::new();
    for e in graph.edges().take(2_000) {
        for (rank, &leaf) in tree.leaves().iter().enumerate() {
            let found = find_matches_containing_edge(&graph, &query, tree.subgraph(leaf), e);
            for m in found {
                batch.push((rank, m));
            }
        }
    }
    group.throughput(Throughput::Elements(batch.len().max(1) as u64));
    group.bench_function("matchstore_insert", |b| {
        b.iter(|| {
            let mut store = MatchStore::new(&tree);
            let mut complete = Vec::new();
            for (rank, m) in &batch {
                store.insert(&tree, tree.leaf(*rank), m.clone(), None, &mut complete);
            }
            complete.len()
        })
    });
    group.finish();
}

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for edges in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("netflow", edges), &edges, |b, &edges| {
            b.iter(|| {
                NetflowConfig {
                    num_hosts: 2_000,
                    num_edges: edges,
                    ..NetflowConfig::default()
                }
                .generate()
                .len()
            })
        });
    }
    group.bench_function("zipf_sampling_1M", |b| {
        let sampler = ZipfSampler::new(100_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000_000 {
                acc += sampler.sample(&mut rng);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, anchored_search, sjtree_operations, generators);
criterion_main!(benches);
