//! Criterion version of Figure 9c/9d (LSBench-like social stream): runtime of
//! each strategy for path and n-ary tree queries of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_bench::runner::sample_by_expected_selectivity;
use sp_datasets::{LsbenchConfig, QueryGenerator, QueryKind};
use streampattern::{ContinuousQueryEngine, Strategy, StreamProcessor};

const STREAM_EDGES: usize = 1_000;
const BASELINE_EDGES: usize = 200;

fn bench_panel(c: &mut Criterion, panel: &str, kinds: &[(usize, QueryKind)]) {
    let dataset = LsbenchConfig {
        num_persons: 800,
        num_edges: STREAM_EDGES,
        ..LsbenchConfig::default()
    }
    .generate();
    let estimator = dataset.estimator_from_prefix(dataset.len() / 2);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 0x15);

    let mut group = c.benchmark_group(format!("fig9_lsbench_{panel}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for &(size, kind) in kinds {
        let raw = generator.generate_valid_batch(kind, 20, &estimator);
        let queries = sample_by_expected_selectivity(raw, &estimator, 1);
        if queries.is_empty() {
            continue;
        }
        for strategy in Strategy::ALL {
            let limit = if strategy == Strategy::Vf2Baseline {
                BASELINE_EDGES
            } else {
                STREAM_EDGES
            };
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), size),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let mut total = 0u64;
                        for q in queries {
                            let engine =
                                ContinuousQueryEngine::new(q.clone(), strategy, &estimator, None)
                                    .expect("engine builds");
                            let mut proc =
                                StreamProcessor::with_engine(dataset.schema.clone(), engine)
                                    .with_statistics(false);
                            total += proc.process_all(dataset.events()[..limit].iter());
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

fn fig9c_paths(c: &mut Criterion) {
    bench_panel(
        c,
        "paths",
        &[
            (3, QueryKind::Path { length: 3 }),
            (4, QueryKind::Path { length: 4 }),
        ],
    );
}

fn fig9d_trees(c: &mut Criterion) {
    bench_panel(
        c,
        "trees",
        &[
            (4, QueryKind::NaryTree { vertices: 4 }),
            (6, QueryKind::NaryTree { vertices: 6 }),
        ],
    );
}

criterion_group!(benches, fig9c_paths, fig9d_trees);
criterion_main!(benches);
