//! One function per table/figure of the paper's evaluation. Each function
//! returns a rendered markdown section (and, where useful, structured data)
//! so the `reproduce` binary can assemble `EXPERIMENTS.md`.

use crate::report::{
    ascii_histogram, fmt_ratio, fmt_seconds, markdown_table, render_groups,
    render_per_query_profiles,
};
use crate::runner::{
    query_expected_selectivity, query_relative_selectivity, run_drift, run_group,
    run_metrics_overhead, run_multi_query, run_parallel, run_query, run_sharedjoin, run_sharing,
    run_soak, sample_by_expected_selectivity, DriftMeasurement, Scale, SharedJoinMeasurement,
    SharingMeasurement, SoakReport,
};
use sp_datasets::{
    soc_chain_rule, wide_soc_rules, Dataset, LsbenchConfig, NetflowConfig, NetflowDriftConfig,
    NytimesConfig, QueryGenerator, QueryKind,
};
use sp_graph::Schema;
use sp_query::QueryGraph;
use sp_selectivity::{DriftConfig, SelectivityEstimator, TwoEdgePathCounter};
use sp_sjtree::{decompose, CostModel, PrimitivePolicy};
use streampattern::{choose_strategy, Strategy, StrategySpec, RELATIVE_SELECTIVITY_THRESHOLD};

/// Generates the three datasets at the requested scale.
pub fn datasets(scale: Scale) -> Vec<Dataset> {
    let netflow = NetflowConfig {
        num_hosts: scale.entities(),
        num_edges: scale.stream_edges(),
        ..NetflowConfig::default()
    }
    .generate();
    let lsbench = LsbenchConfig {
        num_persons: scale.entities(),
        num_edges: scale.stream_edges(),
        ..LsbenchConfig::default()
    }
    .generate();
    let nytimes = NytimesConfig {
        num_articles: scale.stream_edges() / 6,
        entities_per_type: (scale.entities() / 4).max(100),
        ..NytimesConfig::default()
    }
    .generate();
    vec![netflow, lsbench, nytimes]
}

/// Table 1 — dataset summary (vertices and edges per dataset).
pub fn table1(scale: Scale) -> String {
    let mut rows = Vec::new();
    for d in datasets(scale) {
        rows.push(vec![
            d.name.clone(),
            d.schema.num_vertex_types().to_string(),
            d.schema.num_edge_types().to_string(),
            d.num_vertices().to_string(),
            d.len().to_string(),
        ]);
    }
    format!(
        "## Table 1 — dataset summary (synthetic, scale-dependent)\n\n{}",
        markdown_table(
            &["dataset", "vertex types", "edge types", "vertices", "edges"],
            &rows
        )
    )
}

/// Figure 6 — per-interval edge-type distribution for one dataset.
/// `which` ∈ {"a" (nytimes), "b" (netflow), "c" (lsbench)}.
pub fn fig6(scale: Scale, which: &str) -> String {
    let all = datasets(scale);
    let (dataset, label) = match which {
        "a" => (&all[2], "NYTimes-like news stream"),
        "b" => (&all[0], "CAIDA-like netflow"),
        _ => (&all[1], "LSBench-like social stream"),
    };
    let interval = (dataset.len() as u64 / 10).max(1);
    let timeline = dataset.edge_distribution(interval);
    let mut rows = Vec::new();
    // One row per edge type; columns = interval counts. Limit to the ten most
    // frequent types so the table stays readable for LSBench.
    let mut totals: Vec<(sp_graph::EdgeType, u64)> = dataset
        .schema
        .edge_types()
        .map(|t| (t, timeline.series(t).iter().sum()))
        .collect();
    totals.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (t, _) in totals.iter().take(10) {
        let series = timeline.series(*t);
        let mut row = vec![dataset.schema.edge_type_name(*t).to_owned()];
        row.extend(series.iter().map(u64::to_string));
        rows.push(row);
    }
    let mut header = vec!["edge type".to_owned()];
    header.extend((1..=timeline.num_intervals()).map(|i| format!("interval {i}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    format!(
        "## Figure 6{which} — edge-type distribution over time ({label})\n\n\
         interval = {interval} edges; rank stability across intervals = {:.3}\n\n{}",
        timeline.rank_stability(),
        markdown_table(&header_refs, &rows)
    )
}

/// Figure 7 — 2-edge path distribution of the LSBench-like stream.
pub fn fig7(scale: Scale) -> String {
    let all = datasets(scale);
    let mut out = String::from("## Figure 7 — 2-edge path (wedge) distribution\n\n");
    let mut rows = Vec::new();
    for d in &all {
        let graph = d.build_graph();
        let paths = TwoEdgePathCounter::from_graph(&graph);
        let desc = paths.descending();
        let top = desc.first().map(|&(_, c)| c).unwrap_or(0);
        let median = desc.get(desc.len() / 2).map(|&(_, c)| c).unwrap_or(0);
        rows.push(vec![
            d.name.clone(),
            paths.num_signatures().to_string(),
            paths.total().to_string(),
            top.to_string(),
            median.to_string(),
            fmt_ratio(top as f64 / median.max(1) as f64),
        ]);
        if d.name == "lsbench" {
            let logs: Vec<f64> = desc.iter().map(|&(_, c)| (c as f64).log10()).collect();
            out.push_str(&format!(
                "log10(count) histogram of the {} unique LSBench wedges:\n\n```\n{}```\n\n",
                desc.len(),
                ascii_histogram(&logs, 8)
            ));
        }
    }
    out.push_str(&markdown_table(
        &[
            "dataset",
            "unique wedges",
            "total wedges",
            "top count",
            "median count",
            "top/median skew",
        ],
        &rows,
    ));
    out
}

/// Figure 8 — the 1-edge and 2-edge decompositions of the example netflow
/// path query (ESP, TCP, ICMP, GRE).
pub fn fig8(scale: Scale) -> String {
    let netflow = &datasets(scale)[0];
    let est = netflow.estimator_from_prefix(netflow.len() / 4);
    let schema = &netflow.schema;
    let mut q = QueryGraph::new("fig8-path");
    let v: Vec<_> = (0..5).map(|_| q.add_any_vertex()).collect();
    for (i, proto) in ["ESP", "TCP", "ICMP", "GRE"].iter().enumerate() {
        q.add_edge(
            v[i],
            v[i + 1],
            schema.edge_type(proto).expect("protocol interned"),
        );
    }
    let single = decompose(&q, PrimitivePolicy::SingleEdge, &est).expect("decomposes");
    let path = decompose(&q, PrimitivePolicy::TwoEdgePath, &est).expect("decomposes");
    format!(
        "## Figure 8 — decompositions of the ESP-TCP-ICMP-GRE path query\n\n\
         ### 1-edge decomposition\n\n```\n{}```\n\n### 2-edge decomposition\n\n```\n{}```\n",
        single.describe(schema),
        path.describe(schema)
    )
}

/// The query groups of one Figure 9 panel.
struct Fig9Panel {
    label: &'static str,
    dataset_index: usize,
    groups: Vec<(String, QueryKind)>,
}

fn fig9_panels() -> Vec<Fig9Panel> {
    vec![
        Fig9Panel {
            label: "a — path queries on netflow",
            dataset_index: 0,
            groups: vec![
                ("path-3".into(), QueryKind::Path { length: 3 }),
                ("path-4".into(), QueryKind::Path { length: 4 }),
                ("path-5".into(), QueryKind::Path { length: 5 }),
            ],
        },
        Fig9Panel {
            label: "b — tree queries on netflow",
            dataset_index: 0,
            groups: vec![
                ("tree-5".into(), QueryKind::BinaryTree { vertices: 5 }),
                ("tree-7".into(), QueryKind::BinaryTree { vertices: 7 }),
                ("tree-9".into(), QueryKind::BinaryTree { vertices: 9 }),
            ],
        },
        Fig9Panel {
            label: "c — path queries on lsbench",
            dataset_index: 1,
            groups: vec![
                ("path-3".into(), QueryKind::Path { length: 3 }),
                ("path-4".into(), QueryKind::Path { length: 4 }),
                ("path-5".into(), QueryKind::Path { length: 5 }),
            ],
        },
        Fig9Panel {
            label: "d — tree queries on lsbench",
            dataset_index: 1,
            groups: vec![
                ("tree-4".into(), QueryKind::NaryTree { vertices: 4 }),
                ("tree-6".into(), QueryKind::NaryTree { vertices: 6 }),
                ("tree-8".into(), QueryKind::NaryTree { vertices: 8 }),
            ],
        },
    ]
}

/// Figure 9 — runtime per strategy vs. query size, for the requested panel
/// (`"a"`, `"b"`, `"c"` or `"d"`). The four SJ-Tree strategies run over the
/// full stream; the VF2-per-edge baseline runs over a shorter prefix (its
/// per-edge cost grows with the graph), and all means are reported per group.
pub fn fig9(scale: Scale, panel: &str) -> String {
    let all = datasets(scale);
    let panels = fig9_panels();
    let chosen = panels
        .iter()
        .find(|p| p.label.starts_with(panel))
        .unwrap_or(&panels[0]);
    let dataset = &all[chosen.dataset_index];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator = QueryGenerator::new(
        dataset.schema.clone(),
        dataset.valid_triples.clone(),
        0xF19 + chosen.dataset_index as u64,
    );

    let mut sj_groups = Vec::new();
    let mut baseline_groups = Vec::new();
    for (name, kind) in &chosen.groups {
        let raw = generator.generate_valid_batch(*kind, scale.queries_per_group(), &estimator);
        let queries = sample_by_expected_selectivity(raw, &estimator, scale.sampled_queries());
        if queries.is_empty() {
            continue;
        }
        sj_groups.push(run_group(
            name,
            dataset,
            &estimator,
            &queries,
            &Strategy::SJ_TREE,
            scale.stream_edges(),
            None,
        ));
        baseline_groups.push(run_group(
            name,
            dataset,
            &estimator,
            &queries,
            &Strategy::ALL,
            scale.baseline_edges(),
            None,
        ));
    }

    format!(
        "## Figure 9{} \n\n\
         ### SJ-Tree strategies, full stream ({} edges)\n\n{}\n\
         ### All strategies including the VF2-per-edge baseline, stream prefix ({} edges)\n\n{}\n",
        chosen.label,
        scale.stream_edges(),
        render_groups(&sj_groups, &["Path", "Single", "PathLazy", "SingleLazy"]),
        scale.baseline_edges(),
        render_groups(
            &baseline_groups,
            &["Path", "Single", "PathLazy", "SingleLazy", "VF2"]
        ),
    )
}

/// Figure 10 — distribution of Relative Selectivity across 4-edge queries in
/// the three datasets (log10 scale, like the paper's x-axis).
pub fn fig10(scale: Scale) -> String {
    let all = datasets(scale);
    let mut out =
        String::from("## Figure 10 — Relative Selectivity of 4-edge queries (log10 buckets)\n\n");
    for (i, d) in all.iter().enumerate() {
        let estimator = d.estimator_from_prefix(d.len() / 4);
        let mut generator =
            QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 77 + i as u64);
        let kind = if d.name == "nytimes" {
            QueryKind::KPartite { edges: 4 }
        } else {
            QueryKind::Path { length: 4 }
        };
        let queries = generator.generate_valid_batch(kind, 25, &estimator);
        let xs: Vec<f64> = queries
            .iter()
            .map(|q| query_relative_selectivity(q, &estimator).log10())
            .filter(|x| x.is_finite())
            .collect();
        let below = xs
            .iter()
            .filter(|&&x| x < RELATIVE_SELECTIVITY_THRESHOLD.log10())
            .count();
        out.push_str(&format!(
            "### {} ({} queries, {} below the 10⁻³ threshold)\n\n```\n{}```\n\n",
            d.name,
            xs.len(),
            below,
            ascii_histogram(&xs, 8)
        ));
    }
    out
}

/// §6.4 profiling claim — fraction of time spent in subgraph isomorphism vs
/// SJ-Tree maintenance.
pub fn profile(scale: Scale) -> String {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 555);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 10, &estimator);
    let queries = sample_by_expected_selectivity(queries, &estimator, 3);
    let mut rows = Vec::new();
    for strategy in Strategy::SJ_TREE {
        for q in &queries {
            let m = run_query(dataset, &estimator, q, strategy, scale.stream_edges(), None);
            rows.push(vec![
                q.name().to_owned(),
                strategy.label().to_owned(),
                fmt_seconds(m.elapsed.as_secs_f64()),
                format!("{:.1}%", 100.0 * m.profile.iso_time_fraction()),
                m.profile.iso_searches.to_string(),
                m.profile.searches_skipped.to_string(),
            ]);
        }
    }
    format!(
        "## §6.4 profiling — time split between subgraph isomorphism and SJ-Tree update\n\n{}",
        markdown_table(
            &[
                "query",
                "strategy",
                "runtime",
                "iso share",
                "iso searches",
                "skipped"
            ],
            &rows
        )
    )
}

/// §6.5 — does the ξ < 10⁻³ rule pick the faster lazy strategy?
pub fn strategy_selection(scale: Scale) -> String {
    let all = datasets(scale);
    let mut rows = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    for (i, dataset) in all.iter().take(2).enumerate() {
        let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
        let mut generator = QueryGenerator::new(
            dataset.schema.clone(),
            dataset.valid_triples.clone(),
            900 + i as u64,
        );
        let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 20, &estimator);
        let queries = sample_by_expected_selectivity(queries, &estimator, scale.sampled_queries());
        for q in &queries {
            let choice = match choose_strategy(q, &estimator, RELATIVE_SELECTIVITY_THRESHOLD) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let single = run_query(
                dataset,
                &estimator,
                q,
                Strategy::SingleLazy,
                scale.stream_edges() / 2,
                None,
            );
            let path = run_query(
                dataset,
                &estimator,
                q,
                Strategy::PathLazy,
                scale.stream_edges() / 2,
                None,
            );
            let faster = if path.elapsed < single.elapsed {
                Strategy::PathLazy
            } else {
                Strategy::SingleLazy
            };
            total += 1;
            if faster == choice.strategy {
                hits += 1;
            }
            rows.push(vec![
                dataset.name.clone(),
                q.name().to_owned(),
                format!("{:.2e}", choice.relative_selectivity),
                choice.strategy.label().to_owned(),
                fmt_seconds(single.elapsed.as_secs_f64()),
                fmt_seconds(path.elapsed.as_secs_f64()),
                faster.label().to_owned(),
            ]);
        }
    }
    format!(
        "## §6.5 strategy selection — ξ-rule vs measured fastest lazy strategy\n\n\
         rule agreement: {hits}/{total}\n\n{}",
        markdown_table(
            &[
                "dataset",
                "query",
                "xi",
                "rule picks",
                "SingleLazy",
                "PathLazy",
                "faster"
            ],
            &rows
        )
    )
}

/// Multi-query scaling — the StreamWorks deployment story: N continuous
/// queries watching one stream. Compares one shared-graph processor with
/// edge-type dispatch against N independent single-query processors (the
/// pre-registry architecture: N graph copies, N ingest passes).
pub fn multiquery(scale: Scale) -> String {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 3301);
    let pool = generator.generate_valid_batch(
        QueryKind::Path { length: 3 },
        scale.queries_per_group(),
        &estimator,
    );
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        if pool.len() < n {
            continue;
        }
        let queries = &pool[..n];
        let m = run_multi_query(
            dataset,
            &estimator,
            queries,
            streampattern::Strategy::SingleLazy,
            scale.stream_edges(),
            None,
        );
        rows.push(vec![
            n.to_string(),
            m.edges.to_string(),
            fmt_seconds(m.shared_elapsed.as_secs_f64()),
            fmt_seconds(m.separate_elapsed.as_secs_f64()),
            fmt_ratio(m.speedup()),
            format!("{:.1}%", 100.0 * m.dispatch_savings()),
            m.shared_matches.to_string(),
        ]);
    }
    format!(
        "## Multi-query scaling — shared graph + edge-type dispatch vs N independent processors\n\n\
         Both executions report identical matches (asserted); `dispatch savings` is the\n\
         fraction of engine invocations the edge-type index eliminated.\n\n{}",
        markdown_table(
            &[
                "queries",
                "edges",
                "shared",
                "separate",
                "speedup",
                "dispatch savings",
                "matches",
            ],
            &rows
        )
    )
}

/// A SOC-style netflow rule pack with heavy leaf overlap: scan, beacon,
/// exfiltration and tunnel variants that all decompose into a small pool of
/// shared single-edge / wedge leaves (TCP appears in most rules, ICMP and
/// ESP in several). Returns the first `n` rules of the pack (≤ 12).
pub fn netflow_rule_pack(schema: &Schema, n: usize) -> Vec<QueryGraph> {
    let t = |name: &str| schema.edge_type(name).expect("netflow protocol interned");
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t(p));
            prev = next;
        }
        q
    };
    let rules = [
        chain("scan-tcp", &["ICMP", "TCP"]),
        chain("exfil-esp", &["TCP", "ESP"]),
        chain("scan-udp", &["ICMP", "UDP"]),
        chain("exfil-gre", &["TCP", "GRE"]),
        chain("tunnel", &["GRE", "ESP"]),
        chain("beacon", &["UDP", "UDP"]),
        chain("relay", &["TCP", "TCP"]),
        chain("probe-chain", &["ICMP", "ICMP"]),
        chain("exfil-bounce", &["TCP", "ESP", "TCP"]),
        chain("scan-then-flood", &["ICMP", "TCP", "UDP"]),
        chain("ah-probe", &["AH", "TCP"]),
        chain("v6-relay", &["IPv6", "TCP"]),
    ];
    rules.into_iter().take(n).collect()
}

/// Shared-leaf evaluation measurements for the rule-pack sweep: pack sizes
/// 4/8/12 under the eager and lazy 1-edge strategies. Used by the `sharing`
/// experiment section and serialized to `BENCH_sharing.json` by the
/// `reproduce` binary's `--json` flag.
pub fn sharing_measurements(scale: Scale) -> Vec<SharingMeasurement> {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let window = Some((scale.stream_edges() / 10).max(100) as u64);
    let mut out = Vec::new();
    for &n in &[4usize, 8, 12] {
        let pack = netflow_rule_pack(&dataset.schema, n);
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            out.push(run_sharing(
                dataset,
                &estimator,
                &pack,
                strategy,
                scale.stream_edges(),
                window,
            ));
        }
    }
    out
}

/// Shared-leaf evaluation — one anchored search per distinct leaf shape per
/// edge, versus every engine re-searching. Both arms are asserted to report
/// identical match multisets; `eliminated` is the fraction of would-be leaf
/// searches the shared stage never ran.
pub fn sharing(scale: Scale) -> String {
    render_sharing(&sharing_measurements(scale))
}

/// Renders the `sharing` experiment table from precomputed measurements.
pub fn render_sharing(measurements: &[SharingMeasurement]) -> String {
    let mut rows = Vec::new();
    for m in measurements {
        rows.push(vec![
            m.queries.to_string(),
            m.strategy.clone(),
            m.distinct_leaves.to_string(),
            m.leaf_subscriptions.to_string(),
            m.leaf_searches_run.to_string(),
            m.leaf_searches_eliminated.to_string(),
            format!("{:.1}%", 100.0 * m.elimination_ratio()),
            fmt_seconds(m.unshared_elapsed.as_secs_f64()),
            fmt_seconds(m.shared_elapsed.as_secs_f64()),
            fmt_ratio(m.speedup()),
            format!("{:.0}", m.throughput_eps()),
            m.matches.to_string(),
        ]);
    }
    format!(
        "## Shared-leaf evaluation — one leaf search per shape per edge across the rule pack\n\n\
         SOC-style netflow rules with overlapping leaves (scan / beacon / exfil / tunnel\n\
         variants). Match multisets are asserted identical with sharing on and off;\n\
         `eliminated` counts leaf searches served from another subscriber's search of the\n\
         same edge (`ProfileCounters::leaf_searches_shared`).\n\n{}",
        markdown_table(
            &[
                "queries",
                "strategy",
                "distinct leaves",
                "subscriptions",
                "searches run",
                "eliminated",
                "eliminated %",
                "unshared",
                "shared",
                "speedup",
                "edges/s",
                "matches",
            ],
            &rows
        )
    )
}

/// An overlapping netflow rule pack *with windows*, shaped for the shared
/// **join** stage: it contains identical chains under different windows
/// (the SOC pattern of one detection rule deployed with both a tight
/// alerting window and a wide forensic one — they share one refcounted
/// prefix table, window filtering happens at emit time), proper-prefix
/// extensions (bounce/flood rules extending a 2-step chain — the shorter
/// rule's whole tree is the longer rule's shared prefix), and unrelated
/// rules that must stay private. Returns the first `n` rules (≤ 8).
pub fn sharedjoin_rule_pack(schema: &Schema, n: usize) -> Vec<(QueryGraph, Option<u64>)> {
    let t = |name: &str| schema.edge_type(name).expect("netflow protocol interned");
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t(p));
            prev = next;
        }
        q
    };
    let rules = [
        (chain("exfil-alert", &["TCP", "ESP"]), Some(400u64)),
        (chain("exfil-forensic", &["TCP", "ESP"]), None),
        (chain("exfil-bounce", &["TCP", "ESP", "TCP"]), Some(2_000)),
        (chain("scan-alert", &["ICMP", "TCP"]), Some(400)),
        (chain("scan-forensic", &["ICMP", "TCP"]), Some(4_000)),
        (chain("scan-flood", &["ICMP", "TCP", "UDP"]), Some(2_000)),
        (chain("beacon", &["UDP", "UDP"]), Some(1_000)),
        (chain("tunnel", &["GRE", "ESP"]), Some(1_000)),
    ];
    rules.into_iter().take(n).collect()
}

/// A rule pack where *nesting* dominates: every 2-step chain appears under
/// two windows AND is the proper prefix of a 3-step chain that itself
/// appears under two windows. Registration order is shallow-first, so the
/// shallow pair materializes a depth-2 trie node and the deep pair then
/// creates its depth-3 child — two 2-node tries (`[TCP,ESP]→[TCP,ESP,TCP]`
/// and `[ICMP,TCP]→[ICMP,TCP,UDP]`). Under the flat index the same four
/// signatures get four *independent* tables, each re-running the shared
/// prefix's leaf searches and storing its partials again; the trie-vs-flat
/// columns of the `sharedjoin` experiment measure exactly that delta.
/// Returns the first `n` rules (≤ 8).
pub fn sharedjoin_nested_rule_pack(schema: &Schema, n: usize) -> Vec<(QueryGraph, Option<u64>)> {
    let t = |name: &str| schema.edge_type(name).expect("netflow protocol interned");
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t(p));
            prev = next;
        }
        q
    };
    let rules = [
        (chain("exfil-alert", &["TCP", "ESP"]), Some(400u64)),
        (chain("exfil-forensic", &["TCP", "ESP"]), None),
        (chain("bounce-alert", &["TCP", "ESP", "TCP"]), Some(2_000)),
        (chain("bounce-forensic", &["TCP", "ESP", "TCP"]), None),
        (chain("scan-alert", &["ICMP", "TCP"]), Some(400)),
        (chain("scan-forensic", &["ICMP", "TCP"]), Some(4_000)),
        (chain("flood-alert", &["ICMP", "TCP", "UDP"]), Some(2_000)),
        (chain("flood-forensic", &["ICMP", "TCP", "UDP"]), None),
    ];
    rules.into_iter().take(n).collect()
}

/// The wide-pattern shared-join pack: 8-edge chains (17 bindings — already
/// past the inline capacity of 8) appearing under two windows AND as the
/// proper prefix of a 9-edge extension that itself appears under two
/// windows, mirroring [`sharedjoin_nested_rule_pack`]'s trie shape but in
/// the spilled-match regime, so the trie-vs-flat assertions in the bench
/// smoke exercise the interned row path on rows wider than any inline
/// match. Returns the first `n` rules (≤ 8).
pub fn sharedjoin_wide_rule_pack(schema: &Schema, n: usize) -> Vec<(QueryGraph, Option<u64>)> {
    let lateral = ["TCP", "ESP", "TCP", "GRE", "TCP", "ESP", "TCP", "GRE"];
    let lateral_ext = [
        "TCP", "ESP", "TCP", "GRE", "TCP", "ESP", "TCP", "GRE", "TCP",
    ];
    let staging = ["ICMP", "TCP", "ESP", "UDP", "GRE", "TCP", "ESP", "UDP"];
    let staging_ext = [
        "ICMP", "TCP", "ESP", "UDP", "GRE", "TCP", "ESP", "UDP", "ESP",
    ];
    let rules = [
        (
            soc_chain_rule(schema, "wide-lateral-alert", &lateral),
            Some(400u64),
        ),
        (
            soc_chain_rule(schema, "wide-lateral-forensic", &lateral),
            None,
        ),
        (
            soc_chain_rule(schema, "wide-hop-alert", &lateral_ext),
            Some(2_000),
        ),
        (
            soc_chain_rule(schema, "wide-hop-forensic", &lateral_ext),
            None,
        ),
        (
            soc_chain_rule(schema, "wide-staging-alert", &staging),
            Some(400),
        ),
        (
            soc_chain_rule(schema, "wide-staging-forensic", &staging),
            Some(4_000),
        ),
        (
            soc_chain_rule(schema, "wide-exfil-alert", &staging_ext),
            Some(2_000),
        ),
        (
            soc_chain_rule(schema, "wide-exfil-forensic", &staging_ext),
            None,
        ),
    ];
    rules.into_iter().take(n).collect()
}

/// Shared-join measurements for the windowed rule-pack sweep: pack sizes
/// 4/8 under the eager and lazy 1-edge strategies (the 2-edge
/// decompositions fold the 2-step chains into single leaves — nothing to
/// join — so the 1-edge strategies are where the join stage lives). Used
/// by the `sharedjoin` experiment section and serialized to
/// `BENCH_sharedjoin.json` by the `reproduce` binary's `--json` flag.
pub fn sharedjoin_measurements(scale: Scale) -> Vec<SharedJoinMeasurement> {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let mut out = Vec::new();
    for &n in &[4usize, 8] {
        let pack = sharedjoin_rule_pack(&dataset.schema, n);
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            out.push(run_sharedjoin(
                dataset,
                &estimator,
                &pack,
                strategy,
                scale.stream_edges(),
            ));
        }
    }
    // The nested-prefix packs are where the trie earns its keep over the
    // flat index: the bench smoke fails outright if the trie does not
    // strictly reduce both join-stage inserts and leaf searches there. The
    // wide pack repeats the check in the spilled-match regime (>8 bindings
    // per stored partial), so a regression in the interned wide-row path
    // fails CI the same way a trie regression does.
    for (pack_name, pack) in [
        ("nested", sharedjoin_nested_rule_pack(&dataset.schema, 8)),
        ("wide", sharedjoin_wide_rule_pack(&dataset.schema, 8)),
    ] {
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            let m = run_sharedjoin(dataset, &estimator, &pack, strategy, scale.stream_edges());
            assert!(
                m.sharedjoin_join_inserts < m.flat_join_inserts,
                "{} ({pack_name} pack): trie join index must strictly reduce join-stage \
                 inserts vs flat ({} >= {})",
                m.strategy,
                m.sharedjoin_join_inserts,
                m.flat_join_inserts,
            );
            assert!(
                m.sharedjoin_searches < m.flat_searches,
                "{} ({pack_name} pack): trie join index must strictly reduce leaf \
                 searches vs flat ({} >= {})",
                m.strategy,
                m.sharedjoin_searches,
                m.flat_searches,
            );
            out.push(m);
        }
    }
    out
}

/// Shared join stage — refcounted canonical prefix tables versus leaf-only
/// sharing. Both arms are asserted to report identical match multisets.
pub fn sharedjoin(scale: Scale) -> String {
    render_sharedjoin(&sharedjoin_measurements(scale))
}

/// Renders the `sharedjoin` experiment table from precomputed measurements.
pub fn render_sharedjoin(measurements: &[SharedJoinMeasurement]) -> String {
    let mut rows = Vec::new();
    for m in measurements {
        rows.push(vec![
            m.queries.to_string(),
            m.strategy.clone(),
            format!("{} (d{})", m.trie_nodes, m.trie_max_depth),
            m.join_subscriptions.to_string(),
            m.leafonly_join_inserts.to_string(),
            m.flat_join_inserts.to_string(),
            m.sharedjoin_join_inserts.to_string(),
            format!("{:.1}%", 100.0 * m.insert_reduction()),
            format!("{:.1}%", 100.0 * m.trie_insert_reduction()),
            format!("{:.1}%", 100.0 * m.trie_search_reduction()),
            m.parent_feeds.to_string(),
            fmt_seconds(m.leafonly_elapsed.as_secs_f64()),
            fmt_seconds(m.flat_elapsed.as_secs_f64()),
            fmt_seconds(m.sharedjoin_elapsed.as_secs_f64()),
            fmt_ratio(m.speedup()),
            m.matches.to_string(),
        ]);
    }
    format!(
        "## Shared join stage — trie-structured prefix tables vs flat vs leaf-only\n\n\
         Overlapping windowed netflow rules: identical chains under different windows\n\
         share one canonical prefix table (window filtering at emit time), and rules\n\
         extending a shared chain nest as *child trie nodes* that consume the parent\n\
         node's root emissions instead of re-running its leaf searches and joins\n\
         (`fed` counts those consumed emissions). The flat arm is the PR 5 index —\n\
         one independent table per distinct signature — so `trie vs flat` is the\n\
         marginal benefit of nesting. Match multisets are asserted identical across\n\
         all arms; `inserts` counts every partial-match insert actually performed in\n\
         the join stage (per-engine tables plus each shared node once), `searches`\n\
         every leaf search physically run.\n\n{}",
        markdown_table(
            &[
                "queries",
                "strategy",
                "trie nodes",
                "subscribed",
                "inserts (leaf-only)",
                "inserts (flat)",
                "inserts (trie)",
                "insert reduction",
                "trie vs flat",
                "searches: trie vs flat",
                "fed",
                "leaf-only",
                "flat",
                "trie",
                "speedup",
                "matches",
            ],
            &rows
        )
    )
}

/// A rule pack whose selectivity-optimal leaf orders are *inverted* by the
/// netflow drift stream's protocol flip: every chain pairs a protocol from
/// one end of the phase-1 rank order with one from the other end, so the
/// rare-leaf-first ordering chosen before the shift is exactly wrong after
/// it. Returns the first `n` rules (≤ 5).
pub fn drift_rule_pack(schema: &Schema, n: usize) -> Vec<QueryGraph> {
    let t = |name: &str| schema.edge_type(name).expect("netflow protocol interned");
    let chain = |name: &str, protos: &[&str]| {
        let mut q = QueryGraph::new(name);
        let mut prev = q.add_any_vertex();
        for p in protos {
            let next = q.add_any_vertex();
            q.add_edge(prev, next, t(p));
            prev = next;
        }
        q
    };
    let rules = [
        chain("exfil-ah", &["AH", "TCP"]),
        chain("exfil-esp", &["ESP", "UDP"]),
        chain("tunnel-gre", &["GRE", "ICMP"]),
        chain("deep-exfil", &["AH", "TCP", "UDP"]),
        chain("relay-v6", &["IPv6", "TCP"]),
    ];
    rules.into_iter().take(n).collect()
}

/// Drift measurements for the adaptive-vs-fixed-vs-oracle comparison on the
/// shifting netflow stream, under the fixed lazy strategy and under `Auto`.
/// Used by the `drift` experiment section and serialized to
/// `BENCH_adaptive.json` by the `reproduce` binary's `--json` flag.
pub fn drift_measurements(scale: Scale) -> Vec<DriftMeasurement> {
    let edges = scale.stream_edges();
    // Shift early: the interesting regime is the long steady state *after*
    // the flip, where the frozen plan keeps paying for the wrong leaf order
    // while the adaptive engine has amortized its one-off replay.
    let shift_at = edges / 3;
    let dataset = NetflowDriftConfig {
        // Sparse vertex reuse (≈1 edge per host) and flatter host
        // popularity than the stock netflow stream: lazy gating is the
        // mechanism the leaf order controls, and dense reuse or mega-hubs
        // would saturate the enablement bitmap and let every plan search
        // everything regardless of order.
        num_hosts: edges,
        num_edges: edges,
        shift_at,
        popularity_exponent: 0.5,
        ..NetflowDriftConfig::default()
    }
    .generate();
    let window = Some((edges / 20).max(100) as u64);
    let drift_config = DriftConfig {
        check_interval: (edges as u64 / 64).max(64),
        min_observations: 64,
        confirm_checks: 1,
    };
    let decay_interval = (edges as u64 / 16).max(128);
    let pack = drift_rule_pack(&dataset.schema, 4);
    let mut out = Vec::new();
    for spec in [
        StrategySpec::Fixed(Strategy::SingleLazy),
        StrategySpec::Auto,
    ] {
        out.push(run_drift(
            &dataset,
            &pack,
            spec,
            shift_at,
            edges,
            window,
            drift_config,
            decay_interval,
        ));
    }
    out
}

/// Adaptive re-decomposition — drift-aware selectivity on a stream whose
/// protocol mix flips mid-way. All three arms are asserted to report
/// identical match multisets; the counters compare post-shift engine work.
pub fn drift(scale: Scale) -> String {
    render_drift(&drift_measurements(scale))
}

/// Renders the `drift` experiment table from precomputed measurements.
pub fn render_drift(measurements: &[DriftMeasurement]) -> String {
    let mut rows = Vec::new();
    for m in measurements {
        rows.push(vec![
            m.strategy.clone(),
            m.queries.to_string(),
            format!("{}@{}", m.edges, m.shift_at),
            m.redecompositions.to_string(),
            m.fixed_post_leaf_searches.to_string(),
            m.adaptive_post_leaf_searches.to_string(),
            m.oracle_post_leaf_searches.to_string(),
            format!("{:.1}%", 100.0 * m.search_savings()),
            m.adaptive_replay_searches.to_string(),
            m.fixed_post_leaf_matches.to_string(),
            m.adaptive_post_leaf_matches.to_string(),
            fmt_seconds(m.fixed_post_elapsed.as_secs_f64()),
            fmt_seconds(m.adaptive_post_elapsed.as_secs_f64()),
            fmt_ratio(m.post_speedup()),
            m.matches.to_string(),
        ]);
    }
    format!(
        "## Adaptive re-decomposition — drift-aware selectivity vs a frozen plan\n\n\
         Netflow stream whose protocol rank order reverses at `shift` (Zipf rank flip).\n\
         Both the adaptive and fixed arms share the same decayed estimator and phase-1\n\
         registration statistics; the oracle registered against phase-2 statistics. All\n\
         columns except `redecomp` are **post-shift deltas**; `searches` count the\n\
         steady-state anchored + retroactive leaf searches, `replay` the one-off\n\
         searches spent re-populating the swapped engines' stores (the wall-clock\n\
         columns include them). Match multisets are asserted identical across the\n\
         three arms.\n\n{}",
        markdown_table(
            &[
                "strategy",
                "queries",
                "edges@shift",
                "redecomp",
                "searches (fixed)",
                "searches (adaptive)",
                "searches (oracle)",
                "eliminated",
                "replay",
                "leaf matches (fixed)",
                "leaf matches (adaptive)",
                "post time (fixed)",
                "post time (adaptive)",
                "post speedup",
                "matches",
            ],
            &rows
        )
    )
}

/// Default worker counts swept by the `parallel` experiment (overridable via
/// the `reproduce` binary's `--workers` flag).
pub const DEFAULT_PARALLEL_WORKERS: &[usize] = &[1, 2, 4, 8];

/// Parallel runtime scaling — the sharded `sp-runtime` processor vs the
/// sequential shared-graph processor on the same multi-query workload, on
/// netflow and lsbench. Each row is one worker count; both execution modes
/// of the runtime are reported: full replication (every shard ingests every
/// edge — strict sequential equivalence) and filtered ingest (shards skip
/// edge types none of their queries use). Run under `--release`; debug
/// builds exaggerate transport overhead.
pub fn parallel(scale: Scale, workers_list: &[usize]) -> String {
    let all = datasets(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "## Parallel runtime — sharded workers vs the sequential StreamProcessor\n\n\
         Both runs report identical match counts (asserted). `backpressure` counts\n\
         ingest stalls on the bounded worker channels.\n\n\
         Host parallelism: **{cores} core(s)**. Speedup > 1 requires at least as many\n\
         physical cores as workers; on a smaller host this table measures the\n\
         runtime's transport + replication overhead instead.\n\n",
    );
    let mut netflow_profiles = None;
    for (di, dataset) in all.iter().take(2).enumerate() {
        let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
        let mut generator = QueryGenerator::new(
            dataset.schema.clone(),
            dataset.valid_triples.clone(),
            7701 + di as u64,
        );
        let pool = generator.generate_valid_batch(
            QueryKind::Path { length: 3 },
            scale.queries_per_group(),
            &estimator,
        );
        let n_queries = pool.len().min(8);
        if n_queries < 2 {
            out.push_str(&format!(
                "### {} — skipped (only {n_queries} valid queries)\n\n",
                dataset.name
            ));
            continue;
        }
        let queries = &pool[..n_queries];
        // Continuous-monitoring window: patterns fire only when completed
        // within the last tenth of the stream (timestamps are edge indices
        // in the generators), which keeps the match volume realistic.
        let window = Some((scale.stream_edges() / 10).max(100) as u64);
        // One baseline per dataset: every sweep row compares against the
        // same sequential measurement instead of a fresh (noisy) one.
        let baseline = crate::runner::run_sequential_baseline(
            dataset,
            &estimator,
            queries,
            streampattern::Strategy::SingleLazy,
            scale.stream_edges(),
            window,
        );
        let mut rows = Vec::new();
        for &workers in workers_list {
            let full = run_parallel(
                dataset,
                &estimator,
                queries,
                streampattern::Strategy::SingleLazy,
                scale.stream_edges(),
                window,
                workers,
                false,
                Some(baseline),
            );
            let filtered = run_parallel(
                dataset,
                &estimator,
                queries,
                streampattern::Strategy::SingleLazy,
                scale.stream_edges(),
                window,
                workers,
                true,
                Some(baseline),
            );
            rows.push(vec![
                workers.to_string(),
                fmt_seconds(full.sequential_elapsed.as_secs_f64()),
                fmt_seconds(full.parallel_elapsed.as_secs_f64()),
                fmt_ratio(full.speedup()),
                fmt_ratio(filtered.speedup()),
                format!("{:.0}", full.throughput_eps()),
                format!("{:.0}", filtered.throughput_eps()),
                full.backpressure_events.to_string(),
                full.matches.to_string(),
            ]);
            if dataset.name == "netflow" && workers == *workers_list.last().unwrap_or(&4) {
                netflow_profiles = Some(full.per_query.clone());
            }
        }
        out.push_str(&format!(
            "### {} — {} queries, {} edges\n\n{}\n",
            dataset.name,
            n_queries,
            scale.stream_edges(),
            markdown_table(
                &[
                    "workers",
                    "sequential",
                    "parallel",
                    "speedup",
                    "speedup (filtered)",
                    "edges/s",
                    "edges/s (filtered)",
                    "backpressure",
                    "matches",
                ],
                &rows
            )
        ));
    }
    if let Some(profiles) = netflow_profiles {
        out.push_str(&format!(
            "### Per-query engine counters (netflow, widest sweep point)\n\n{}\n",
            render_per_query_profiles(&profiles)
        ));
    }
    out
}

/// Appendix A — analytic cost model vs measured runtime and memory.
pub fn costmodel(scale: Scale) -> String {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let graph_stats = dataset.build_graph().degree_stats();
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 4242);
    let queries = generator.generate_valid_batch(QueryKind::Path { length: 4 }, 12, &estimator);
    let queries = sample_by_expected_selectivity(queries, &estimator, 4);
    let mut rows = Vec::new();
    for q in &queries {
        for policy in [PrimitivePolicy::SingleEdge, PrimitivePolicy::TwoEdgePath] {
            let Ok(tree) = decompose(q, policy, &estimator) else {
                continue;
            };
            let model = CostModel::build(
                &tree,
                &estimator,
                graph_stats.average_degree,
                estimator.num_edges_observed(),
            );
            let strategy = if policy == PrimitivePolicy::SingleEdge {
                Strategy::Single
            } else {
                Strategy::Path
            };
            let measured = run_query(
                dataset,
                &estimator,
                q,
                strategy,
                scale.stream_edges() / 2,
                None,
            );
            rows.push(vec![
                q.name().to_owned(),
                policy.to_string(),
                format!("{:.1}", model.space_units),
                measured.peak_partial_matches.to_string(),
                format!("{:.2}", model.work_per_edge),
                fmt_seconds(measured.elapsed.as_secs_f64()),
            ]);
        }
    }
    format!(
        "## Appendix A — analytic cost model vs measurement\n\n{}",
        markdown_table(
            &[
                "query",
                "decomposition",
                "predicted space units",
                "measured stored matches",
                "predicted work/edge",
                "measured runtime",
            ],
            &rows
        )
    )
}

/// The soak workload: the full 12-rule netflow pack, the two wide 9-edge
/// spill-regime rules, plus generated 2- and 3-step path queries,
/// most-selective-first, growing the registry far past the hand-written
/// rules (58 queries at [`Scale::Large`]) so the soak run measures
/// sustained *multi-query* throughput — including the spilled-match regime
/// the interned row representation targets — not a boutique rule pack.
pub fn soak_query_pack(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    scale: Scale,
) -> Vec<QueryGraph> {
    let mut pack = netflow_rule_pack(&dataset.schema, 12);
    pack.extend(wide_soc_rules(&dataset.schema, 2));
    let extra = match scale {
        Scale::Small => 4,
        Scale::Medium => 24,
        Scale::Large => 44,
    };
    let mut generator =
        QueryGenerator::new(dataset.schema.clone(), dataset.valid_triples.clone(), 77);
    let mut pool = generator.generate_valid_batch(QueryKind::Path { length: 2 }, extra, estimator);
    pool.extend(generator.generate_valid_batch(QueryKind::Path { length: 3 }, extra, estimator));
    // Most selective first: the generated tail adds registry pressure and
    // dispatch fan-out without letting one promiscuous pattern drown the
    // stream in matches.
    pool.sort_by(|a, b| {
        query_expected_selectivity(a, estimator)
            .partial_cmp(&query_expected_selectivity(b, estimator))
            .expect("selectivities are finite")
    });
    pack.extend(pool.into_iter().take(extra));
    pack
}

/// Soak measurements for the worker sweep, plus the sequential
/// instrumentation-overhead probe. Serialized to `BENCH_soak.json` by the
/// `reproduce` binary's `--json` flag.
pub fn soak_measurements(scale: Scale, workers: &[usize]) -> SoakReport {
    let dataset = &datasets(scale)[0];
    let estimator = dataset.estimator_from_prefix(dataset.len() / 4);
    let window = Some((scale.stream_edges() / 10).max(100) as u64);
    let queries = soak_query_pack(dataset, &estimator, scale);
    let runs = workers
        .iter()
        .map(|&w| {
            run_soak(
                dataset,
                &estimator,
                &queries,
                Strategy::SingleLazy,
                scale.stream_edges(),
                window,
                w,
                10,
            )
        })
        .collect();
    let overhead = run_metrics_overhead(
        dataset,
        &estimator,
        &netflow_rule_pack(&dataset.schema, 12),
        Strategy::SingleLazy,
        scale.stream_edges(),
        window,
    );
    SoakReport { runs, overhead }
}

/// Sustained-throughput soak under live telemetry — the netflow firehose
/// against the full soak query pack at each worker count, with per-interval
/// edges/sec, detection-latency percentiles and the per-stage time split
/// read off the metrics registry. Match multisets are asserted identical to
/// metrics-off runs.
pub fn soak(scale: Scale, workers: &[usize]) -> String {
    render_soak(&soak_measurements(scale, workers))
}

/// Renders the `soak` experiment section from precomputed measurements.
pub fn render_soak(report: &SoakReport) -> String {
    let fmt_ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut rows = Vec::new();
    for m in &report.runs {
        rows.push(vec![
            m.workers.to_string(),
            m.queries.to_string(),
            m.edges.to_string(),
            format!("{:.0}", m.steady_eps),
            format!("{:.0}", m.overall_eps),
            fmt_ms(m.latency_p50_ns),
            fmt_ms(m.latency_p99_ns),
            fmt_ms(m.sojourn_p99_ns),
            m.backpressure_stalls.to_string(),
            format!("{:.1}%", 100.0 * m.metrics_overhead),
            if m.allocs_per_edge < 0.0 {
                "n/a".to_owned()
            } else {
                format!("{:.2}", m.allocs_per_edge)
            },
            if m.allocs_per_match < 0.0 {
                "n/a".to_owned()
            } else {
                format!("{:.3}", m.allocs_per_match)
            },
            m.matches.to_string(),
        ]);
    }
    let main = markdown_table(
        &[
            "workers",
            "queries",
            "edges",
            "steady edges/s",
            "overall edges/s",
            "p50 latency (ms)",
            "p99 latency (ms)",
            "p99 sojourn (ms)",
            "stalls",
            "metrics cost",
            "allocs/edge",
            "allocs/match",
            "matches",
        ],
        &rows,
    );
    let mut split_rows = Vec::new();
    if let Some(first) = report.runs.first() {
        let total: u64 = first.stage_split_ns.iter().map(|(_, ns)| ns).sum();
        for (name, ns) in &first.stage_split_ns {
            split_rows.push(vec![
                name.clone(),
                format!("{:.3}s", *ns as f64 / 1e9),
                format!("{:.1}%", 100.0 * *ns as f64 / (total.max(1)) as f64),
            ]);
        }
    }
    let split = markdown_table(&["stage", "cpu time", "share"], &split_rows);
    format!(
        "## Soak — sustained throughput under live telemetry\n\n\
         Netflow firehose against the soak query pack (12 SOC rules + 2 wide 9-edge\n\
         spill-regime rules + generated path queries), processed in 10 drained\n\
         intervals per worker count with a live\n\
         metrics registry. Match multisets are asserted identical to metrics-off runs;\n\
         `metrics cost` is the throughput the live registry consumed, and the stage\n\
         split (first run, summed over worker replicas) reproduces the §6.4 claim that\n\
         subgraph isomorphism dominates the per-edge budget.\n\n{main}\n\n\
         ### Per-stage time split\n\n{split}\n\n\
         Sequential instrumentation-overhead probe ({oq} queries, {oe} edges):\n\
         metrics off {off:.0} edges/s vs on {on:.0} edges/s — overhead {ov:.2}%.\n",
        oq = report.overhead.queries,
        oe = report.overhead.edges,
        off = report.overhead.off_eps,
        on = report.overhead.on_eps,
        ov = 100.0 * report.overhead.overhead,
    )
}

/// Every experiment id accepted by the `reproduce` binary.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig10",
    "profile",
    "strategy",
    "costmodel",
    "multiquery",
    "sharing",
    "sharedjoin",
    "parallel",
    "drift",
    "soak",
];

/// Runs one experiment by id with the default options, returning its
/// markdown section.
pub fn run_experiment(id: &str, scale: Scale) -> Option<String> {
    run_experiment_with(id, scale, DEFAULT_PARALLEL_WORKERS)
}

/// Runs one experiment by id, with an explicit worker-count sweep for the
/// `parallel` experiment (other experiments ignore it).
pub fn run_experiment_with(id: &str, scale: Scale, workers: &[usize]) -> Option<String> {
    let section = match id {
        "table1" => table1(scale),
        "fig6a" => fig6(scale, "a"),
        "fig6b" => fig6(scale, "b"),
        "fig6c" => fig6(scale, "c"),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9a" => fig9(scale, "a"),
        "fig9b" => fig9(scale, "b"),
        "fig9c" => fig9(scale, "c"),
        "fig9d" => fig9(scale, "d"),
        "fig10" => fig10(scale),
        "profile" => profile(scale),
        "strategy" => strategy_selection(scale),
        "costmodel" => costmodel(scale),
        "multiquery" => multiquery(scale),
        "sharing" => sharing(scale),
        "sharedjoin" => sharedjoin(scale),
        "parallel" => parallel(scale, workers),
        "drift" => drift(scale),
        "soak" => soak(scale, workers),
        _ => return None,
    };
    Some(section)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_exhaustive() {
        for id in ALL_EXPERIMENTS {
            // Only check that the dispatcher knows every id; running them all
            // here would be too slow for a unit test. The cheap ones are run
            // for real below.
            assert!(
                *id == "table1"
                    || id.starts_with("fig")
                    || [
                        "profile",
                        "strategy",
                        "costmodel",
                        "multiquery",
                        "sharing",
                        "sharedjoin",
                        "parallel",
                        "drift",
                        "soak",
                    ]
                    .contains(id)
            );
        }
        assert!(run_experiment("unknown", Scale::Small).is_none());
    }

    #[test]
    fn table1_lists_three_datasets() {
        let t = table1(Scale::Small);
        assert!(t.contains("netflow"));
        assert!(t.contains("lsbench"));
        assert!(t.contains("nytimes"));
    }

    #[test]
    fn fig8_shows_both_decompositions() {
        let t = fig8(Scale::Small);
        assert!(t.contains("1-edge decomposition"));
        assert!(t.contains("2-edge decomposition"));
        assert!(t.contains("ESP"));
    }

    #[test]
    fn fig6_reports_rank_stability() {
        let t = fig6(Scale::Small, "b");
        assert!(t.contains("rank stability"));
        assert!(t.contains("TCP"));
    }

    #[test]
    fn rule_pack_has_twelve_overlapping_rules() {
        let d = &datasets(Scale::Small)[0];
        let pack = netflow_rule_pack(&d.schema, 12);
        assert_eq!(pack.len(), 12);
        assert_eq!(netflow_rule_pack(&d.schema, 3).len(), 3);
        // Heavy overlap: far fewer distinct edge types than edges.
        let mut types: Vec<_> = pack
            .iter()
            .flat_map(|q| q.edges().map(|e| e.edge_type))
            .collect();
        let total = types.len();
        types.sort_unstable();
        types.dedup();
        assert!(types.len() * 3 <= total, "pack is not overlapping enough");
    }

    #[test]
    fn adaptive_eliminates_post_shift_engine_work() {
        // The acceptance bar for drift-adaptive re-decomposition: after the
        // protocol flip, the adaptive engine performs measurably fewer leaf
        // searches (anchored + retroactive) than the frozen plan, at least
        // one re-decomposition actually happened, and the match multisets
        // are identical (asserted inside run_drift).
        let edges = 3_000;
        let shift_at = 1_000;
        let dataset = NetflowDriftConfig {
            num_hosts: edges,
            num_edges: edges,
            shift_at,
            popularity_exponent: 0.5,
            ..NetflowDriftConfig::default()
        }
        .generate();
        let pack = drift_rule_pack(&dataset.schema, 4);
        let m = run_drift(
            &dataset,
            &pack,
            StrategySpec::Fixed(Strategy::SingleLazy),
            shift_at,
            edges,
            Some(300),
            DriftConfig {
                check_interval: 64,
                min_observations: 64,
                confirm_checks: 1,
            },
            128,
        );
        assert!(m.redecompositions >= 1, "no plan ever moved: {m:?}");
        assert!(
            m.search_savings() >= 0.20,
            "adaptive must eliminate ≥20% of post-shift leaf searches: \
             fixed={} adaptive={} ({:.1}%)",
            m.fixed_post_leaf_searches,
            m.adaptive_post_leaf_searches,
            100.0 * m.search_savings(),
        );
        assert!(m.adaptive_post_leaf_matches <= m.fixed_post_leaf_matches);
    }

    #[test]
    fn sharing_eliminates_at_least_30_percent_on_the_8_query_pack() {
        // The acceptance bar for shared-leaf evaluation: on an overlapping
        // ≥8-query netflow rule pack, at least 30% of leaf searches are
        // eliminated, and the match multiset is unchanged (asserted inside
        // run_sharing).
        let d = &datasets(Scale::Small)[0];
        let est = d.estimator_from_prefix(d.len() / 4);
        let pack = netflow_rule_pack(&d.schema, 8);
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            let m = run_sharing(d, &est, &pack, strategy, 2_000, Some(400));
            assert!(
                m.elimination_ratio() >= 0.30,
                "{strategy:?}: only {:.1}% of leaf searches eliminated ({} run, {} shared)",
                100.0 * m.elimination_ratio(),
                m.leaf_searches_run,
                m.leaf_searches_eliminated,
            );
            assert_eq!(m.queries, 8);
            assert!(m.distinct_leaves < m.leaf_subscriptions);
        }
    }

    #[test]
    fn sharedjoin_measurably_reduces_join_inserts_on_the_8_rule_pack() {
        // The acceptance bar for the shared join stage: on the overlapping
        // windowed netflow rule pack, the refcounted prefix tables give a
        // measurable (≥10%) reduction in join-stage inserts over leaf-only
        // sharing, with the match multiset unchanged (asserted inside
        // run_sharedjoin).
        let d = &datasets(Scale::Small)[0];
        let est = d.estimator_from_prefix(d.len() / 4);
        let pack = sharedjoin_rule_pack(&d.schema, 8);
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            let m = run_sharedjoin(d, &est, &pack, strategy, 2_000);
            assert!(
                m.tables >= 2,
                "{strategy:?}: the pack must coalesce into ≥2 tables, got {}",
                m.tables
            );
            assert!(m.join_subscriptions >= 4, "{m:?}");
            assert!(
                m.insert_reduction() >= 0.10,
                "{strategy:?}: only {:.1}% of join-stage inserts eliminated \
                 (leaf-only={} shared={})",
                100.0 * m.insert_reduction(),
                m.leafonly_join_inserts,
                m.sharedjoin_join_inserts,
            );
            assert!(m.prefix_searches_saved > 0);
            assert!(m.emissions > 0);
        }
    }

    #[test]
    fn trie_beats_flat_on_the_nested_prefix_pack() {
        // The acceptance bar for the trie restructure: on the nested-prefix
        // pack (every 2-step chain is also the prefix of a registered
        // 3-step pair), the trie must strictly reduce BOTH join-stage
        // inserts and physically-run leaf searches versus the flat PR 5
        // index, while actually forming depth-3 children that consume
        // parent emissions. Multiset equality across all three arms is
        // asserted inside run_sharedjoin.
        let d = &datasets(Scale::Small)[0];
        let est = d.estimator_from_prefix(d.len() / 4);
        let pack = sharedjoin_nested_rule_pack(&d.schema, 8);
        for strategy in [Strategy::Single, Strategy::SingleLazy] {
            let m = run_sharedjoin(d, &est, &pack, strategy, 2_000);
            assert!(
                m.trie_max_depth >= 3,
                "{strategy:?}: nested pack must materialize a depth-3 trie child, got {}",
                m.trie_max_depth
            );
            assert!(
                m.parent_feeds > 0,
                "{strategy:?}: child nodes consumed no parent emissions"
            );
            assert!(
                m.sharedjoin_join_inserts < m.flat_join_inserts,
                "{strategy:?}: trie inserts {} not < flat inserts {}",
                m.sharedjoin_join_inserts,
                m.flat_join_inserts,
            );
            assert!(
                m.sharedjoin_searches < m.flat_searches,
                "{strategy:?}: trie searches {} not < flat searches {}",
                m.sharedjoin_searches,
                m.flat_searches,
            );
        }
    }
}
