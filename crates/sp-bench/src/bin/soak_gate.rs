//! CI gate over `BENCH_soak.json`: fails (exit 1) when any run's
//! steady-state throughput regresses more than `--tolerance` below the
//! checked-in baseline for its worker count, or when its p99 detection
//! latency lands more than 25% above the baseline ceiling.
//!
//! ```text
//! cargo run --release -p sp-bench --bin soak_gate -- \
//!     --current BENCH_soak.json --baseline ci/soak_baseline.json [--tolerance 0.2]
//! ```
//!
//! The baseline file maps worker counts to conservative steady-eps floors,
//! p99 latency ceilings and allocation ceilings (`{"steady_eps":
//! {"1": 50000.0, ...}, "latency_p99_ns": {...}, "allocs_per_edge": {...},
//! "allocs_per_match": {...}}`), deliberately far from typical hardware so
//! the gates only trip on real regressions, not machine noise. The
//! allocation gates (`allocs_per_edge`, `allocs_per_match`) fail when a
//! metered run lands more than [`ALLOCS_HEADROOM`] above its ceiling; they
//! need a `count-allocs` build — runs without one report −1 and stay
//! informational. Worker counts missing from a baseline map are reported
//! but do not gate.

use sp_bench::SoakReport;
use std::collections::BTreeMap;

/// Fractional headroom over the baseline p99 ceiling before the latency
/// gate fails (a >25% regression trips it).
const LATENCY_P99_HEADROOM: f64 = 0.25;

/// Fractional headroom over the baseline allocation ceilings
/// (`allocs_per_edge`, `allocs_per_match`) before those gates fail.
/// Allocation counts are near-deterministic but channel/report buffer
/// growth varies a little with thread scheduling, so the ceilings get more
/// room than latency.
const ALLOCS_HEADROOM: f64 = 0.5;

#[derive(serde::Deserialize)]
struct Baseline {
    /// Worker count (as a JSON-object string key) → steady edges/s floor.
    steady_eps: BTreeMap<String, f64>,
    /// Worker count → p99 detection-latency ceiling in nanoseconds.
    latency_p99_ns: BTreeMap<String, f64>,
    /// Worker count → steady-state allocations-per-edge ceiling (gates
    /// metered runs; report-only without a `count-allocs` build).
    allocs_per_edge: BTreeMap<String, f64>,
    /// Worker count → steady-state allocations-per-stored-match ceiling
    /// (gates metered runs; report-only without a `count-allocs` build).
    allocs_per_match: BTreeMap<String, f64>,
}

struct Args {
    current: String,
    baseline: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut baseline = None;
    let mut tolerance = 0.2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => current = Some(args.next().ok_or("--current needs a value")?),
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a value")?),
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or(format!("invalid tolerance '{v}' (want 0..1)"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: soak_gate --current BENCH_soak.json --baseline ci/soak_baseline.json \
                     [--tolerance 0.2]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        current: current.ok_or("--current is required")?,
        baseline: baseline.ok_or("--baseline is required")?,
        tolerance,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let current = std::fs::read_to_string(&args.current)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.current));
    let report: SoakReport =
        serde_json::from_str(&current).unwrap_or_else(|e| panic!("parse {}: {e}", args.current));
    let baseline = std::fs::read_to_string(&args.baseline)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.baseline));
    let baseline: Baseline =
        serde_json::from_str(&baseline).unwrap_or_else(|e| panic!("parse {}: {e}", args.baseline));

    let mut failed = false;
    for run in &report.runs {
        let key = run.workers.to_string();
        match baseline.steady_eps.get(&key) {
            Some(&floor) => {
                let gate = floor * (1.0 - args.tolerance);
                let verdict = if run.steady_eps < gate {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "[soak_gate] {} workers: steady {:.0} edges/s vs floor {:.0} (gate {:.0}) — {}",
                    run.workers, run.steady_eps, floor, gate, verdict
                );
            }
            None => println!(
                "[soak_gate] {} workers: steady {:.0} edges/s — no baseline entry, not gated",
                run.workers, run.steady_eps
            ),
        }
        match baseline.latency_p99_ns.get(&key) {
            Some(&ceiling) => {
                let gate = ceiling * (1.0 + LATENCY_P99_HEADROOM);
                let verdict = if (run.latency_p99_ns as f64) > gate {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "[soak_gate] {} workers: p99 latency {:.3} ms vs ceiling {:.3} (gate {:.3}) — {}",
                    run.workers,
                    run.latency_p99_ns as f64 / 1e6,
                    ceiling / 1e6,
                    gate / 1e6,
                    verdict
                );
            }
            None => println!(
                "[soak_gate] {} workers: p99 latency {:.3} ms — no baseline entry, not gated",
                run.workers,
                run.latency_p99_ns as f64 / 1e6
            ),
        }
        // Allocation gates: fail when a metered run exceeds its baseline
        // ceiling by more than the headroom. Unmetered runs (−1: the build
        // lacks `count-allocs`) and missing baseline entries stay
        // informational.
        for (metric, value, ceilings) in [
            (
                "allocs/edge",
                run.allocs_per_edge,
                &baseline.allocs_per_edge,
            ),
            (
                "allocs/match",
                run.allocs_per_match,
                &baseline.allocs_per_match,
            ),
        ] {
            if value < 0.0 {
                println!(
                    "[soak_gate] {} workers: {metric} not metered (build without count-allocs)",
                    run.workers
                );
                continue;
            }
            match ceilings.get(&key) {
                Some(&ceiling) => {
                    let gate = ceiling * (1.0 + ALLOCS_HEADROOM);
                    let verdict = if value > gate {
                        failed = true;
                        "FAIL"
                    } else {
                        "ok"
                    };
                    println!(
                        "[soak_gate] {} workers: {value:.3} {metric} vs ceiling {ceiling:.3} \
                         (gate {gate:.3}) — {verdict}",
                        run.workers
                    );
                }
                None => println!(
                    "[soak_gate] {} workers: {value:.3} {metric} — no baseline entry, not gated",
                    run.workers
                ),
            }
        }
    }
    println!(
        "[soak_gate] instrumentation overhead (sequential probe): {:.2}%",
        100.0 * report.overhead.overhead
    );
    if failed {
        eprintln!("[soak_gate] one or more gates failed (see FAIL lines above)");
        std::process::exit(1);
    }
}
