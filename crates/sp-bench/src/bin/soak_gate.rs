//! CI gate over `BENCH_soak.json`: fails (exit 1) when any run's
//! steady-state throughput regresses more than `--tolerance` below the
//! checked-in baseline for its worker count.
//!
//! ```text
//! cargo run --release -p sp-bench --bin soak_gate -- \
//!     --current BENCH_soak.json --baseline ci/soak_baseline.json [--tolerance 0.2]
//! ```
//!
//! The baseline file maps worker counts to conservative steady-eps floors
//! (`{"steady_eps": {"1": 50000.0, ...}}`), deliberately far below typical
//! hardware so the gate only trips on real regressions, not machine noise.
//! Worker counts missing from the baseline are reported but do not gate.

use sp_bench::SoakReport;
use std::collections::BTreeMap;

#[derive(serde::Deserialize)]
struct Baseline {
    /// Worker count (as a JSON-object string key) → steady edges/s floor.
    steady_eps: BTreeMap<String, f64>,
}

struct Args {
    current: String,
    baseline: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut baseline = None;
    let mut tolerance = 0.2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => current = Some(args.next().ok_or("--current needs a value")?),
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a value")?),
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or(format!("invalid tolerance '{v}' (want 0..1)"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: soak_gate --current BENCH_soak.json --baseline ci/soak_baseline.json \
                     [--tolerance 0.2]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        current: current.ok_or("--current is required")?,
        baseline: baseline.ok_or("--baseline is required")?,
        tolerance,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let current = std::fs::read_to_string(&args.current)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.current));
    let report: SoakReport =
        serde_json::from_str(&current).unwrap_or_else(|e| panic!("parse {}: {e}", args.current));
    let baseline = std::fs::read_to_string(&args.baseline)
        .unwrap_or_else(|e| panic!("read {}: {e}", args.baseline));
    let baseline: Baseline =
        serde_json::from_str(&baseline).unwrap_or_else(|e| panic!("parse {}: {e}", args.baseline));

    let mut failed = false;
    for run in &report.runs {
        let key = run.workers.to_string();
        match baseline.steady_eps.get(&key) {
            Some(&floor) => {
                let gate = floor * (1.0 - args.tolerance);
                let verdict = if run.steady_eps < gate {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "[soak_gate] {} workers: steady {:.0} edges/s vs floor {:.0} (gate {:.0}) — {}",
                    run.workers, run.steady_eps, floor, gate, verdict
                );
            }
            None => println!(
                "[soak_gate] {} workers: steady {:.0} edges/s — no baseline entry, not gated",
                run.workers, run.steady_eps
            ),
        }
    }
    println!(
        "[soak_gate] instrumentation overhead (sequential probe): {:.2}%",
        100.0 * report.overhead.overhead
    );
    if failed {
        eprintln!(
            "[soak_gate] steady-state throughput regressed more than {:.0}% below baseline",
            100.0 * args.tolerance
        );
        std::process::exit(1);
    }
}
