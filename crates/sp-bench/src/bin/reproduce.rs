//! Regenerates the paper's tables and figures on the synthetic datasets.
//!
//! ```text
//! cargo run --release -p sp-bench --bin reproduce -- [--experiment <id>] \
//!     [--scale small|medium|large] [--workers N[,N...]] [--output <file.md>] \
//!     [--json <file.json>]
//! ```
//!
//! Without `--experiment` every experiment is run in order and the combined
//! markdown report is printed (and written to `--output` when given). The
//! experiment ids are listed in `sp_bench::experiments::ALL_EXPERIMENTS`.
//! `--workers` sets the worker-count sweep of the `parallel` experiment
//! (default `1,2,4,8`). `--json` writes the structured measurements of the
//! experiments that have them so the perf trajectory accumulates across
//! runs: the `sharing` measurements go to the given path (e.g.
//! `BENCH_sharing.json`), the `sharedjoin` measurements to
//! `BENCH_sharedjoin.json`, the `drift` measurements to
//! `BENCH_adaptive.json` and the `soak` measurements to `BENCH_soak.json`
//! next to it; with no `--experiment` selected it implies running the
//! sharing/sharedjoin/drift trio (`soak` runs only when asked for, being a
//! sustained-load run).

use sp_bench::experiments::{
    drift_measurements, render_drift, render_sharedjoin, render_sharing, render_soak,
    run_experiment_with, sharedjoin_measurements, sharing_measurements, soak_measurements,
    ALL_EXPERIMENTS, DEFAULT_PARALLEL_WORKERS,
};
use sp_bench::Scale;
use std::io::Write as _;

struct Args {
    experiments: Vec<String>,
    scale: Scale,
    workers: Vec<usize>,
    output: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut scale = Scale::Small;
    let mut workers = DEFAULT_PARALLEL_WORKERS.to_vec();
    let mut output = None;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                let id = args.next().ok_or("--experiment needs a value")?;
                experiments.push(id);
            }
            "--scale" | "-s" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--workers" | "-w" => {
                let v = args.next().ok_or("--workers needs a value")?;
                workers = v
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or(format!("invalid worker count '{p}'"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if workers.is_empty() {
                    return Err("--workers needs at least one count".into());
                }
            }
            "--output" | "-o" => {
                output = Some(args.next().ok_or("--output needs a value")?);
            }
            "--json" | "-j" => {
                json = Some(args.next().ok_or("--json needs a value")?);
            }
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--experiment <id>]... [--scale small|medium|large] \
                     [--workers N[,N...]] [--output file.md] [--json file.json]\n\
                     experiments: {}",
                    ALL_EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if experiments.is_empty() {
        experiments = if json.is_some() {
            vec![
                "sharing".to_string(),
                "sharedjoin".to_string(),
                "drift".to_string(),
            ]
        } else {
            ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
        };
    } else if json.is_some()
        && !experiments
            .iter()
            .any(|e| e == "sharing" || e == "sharedjoin" || e == "drift" || e == "soak")
    {
        // `--json` only has data to write when a structured experiment runs;
        // silently producing no file would be confusing, so run them too.
        eprintln!(
            "[reproduce] --json given: adding the 'sharing', 'sharedjoin' and 'drift' experiments"
        );
        experiments.push("sharing".to_string());
        experiments.push("sharedjoin".to_string());
        experiments.push("drift".to_string());
    }
    Ok(Args {
        experiments,
        scale,
        workers,
        output,
        json,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut report = String::new();
    report.push_str(&format!(
        "# StreamPattern — reproduced evaluation (scale: {:?})\n\n\
         Generated by `cargo run --release -p sp-bench --bin reproduce`.\n\
         Synthetic datasets stand in for CAIDA / LSBench / NYTimes (see DESIGN.md);\n\
         the comparison of interest is the *relative* behaviour of the strategies.\n\n",
        args.scale
    ));

    for id in &args.experiments {
        eprintln!("[reproduce] running {id} ...");
        let started = std::time::Instant::now();
        // Structured experiments run once and feed both the markdown
        // section and the `--json` dump: sharing → the given path, drift →
        // `BENCH_adaptive.json` in the same directory.
        let section = if id == "sharing" && args.json.is_some() {
            let measurements = sharing_measurements(args.scale);
            let json_path = args.json.as_deref().expect("checked above");
            let data = serde_json::to_string_pretty(&measurements).expect("serialize sharing");
            std::fs::write(json_path, data).expect("write sharing json");
            eprintln!("[reproduce] wrote {json_path}");
            Some(render_sharing(&measurements))
        } else if id == "sharedjoin" && args.json.is_some() {
            let measurements = sharedjoin_measurements(args.scale);
            let given = std::path::Path::new(args.json.as_deref().expect("checked above"));
            let path = given.with_file_name("BENCH_sharedjoin.json");
            let data = serde_json::to_string_pretty(&measurements).expect("serialize sharedjoin");
            std::fs::write(&path, data).expect("write sharedjoin json");
            eprintln!("[reproduce] wrote {}", path.display());
            Some(render_sharedjoin(&measurements))
        } else if id == "soak" && args.json.is_some() {
            let measurements = soak_measurements(args.scale, &args.workers);
            let given = std::path::Path::new(args.json.as_deref().expect("checked above"));
            let path = given.with_file_name("BENCH_soak.json");
            let data = serde_json::to_string_pretty(&measurements).expect("serialize soak");
            std::fs::write(&path, data).expect("write soak json");
            eprintln!("[reproduce] wrote {}", path.display());
            Some(render_soak(&measurements))
        } else if id == "drift" && args.json.is_some() {
            let measurements = drift_measurements(args.scale);
            let given = std::path::Path::new(args.json.as_deref().expect("checked above"));
            let drift_path = given.with_file_name("BENCH_adaptive.json");
            let data = serde_json::to_string_pretty(&measurements).expect("serialize drift");
            std::fs::write(&drift_path, data).expect("write drift json");
            eprintln!("[reproduce] wrote {}", drift_path.display());
            Some(render_drift(&measurements))
        } else {
            run_experiment_with(id, args.scale, &args.workers)
        };
        match section {
            Some(section) => {
                eprintln!("[reproduce] {id} finished in {:.1?}", started.elapsed());
                report.push_str(&section);
                report.push('\n');
            }
            None => {
                eprintln!("[reproduce] unknown experiment '{id}' (use --list)");
                std::process::exit(2);
            }
        }
    }

    println!("{report}");
    if let Some(path) = args.output {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("[reproduce] wrote {path}");
    }
}
