//! Workload execution helpers shared by the experiments and the Criterion
//! benches: run a query under a strategy over a stream, sweep a group of
//! random queries, and sample queries by Expected Selectivity as the paper's
//! methodology prescribes.

use serde::{Deserialize, Serialize};
use sp_datasets::Dataset;
use sp_query::QueryGraph;
use sp_selectivity::{DriftConfig, SelectivityEstimator, StatsMode};
use sp_sjtree::{decompose, expected_selectivity, PrimitivePolicy};
use std::time::{Duration, Instant};
use streampattern::{
    ContinuousQueryEngine, ProfileCounters, Strategy, StrategySpec, StreamProcessor,
};

/// Experiment scale: how many stream edges each measurement processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Quick smoke-test scale (seconds end to end).
    Small,
    /// Default scale used by `reproduce` (a few minutes end to end).
    Medium,
    /// Larger scale for closer-to-paper stream sizes.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Stream length (edges) for the SJ-Tree strategies.
    pub fn stream_edges(self) -> usize {
        match self {
            Scale::Small => 4_000,
            Scale::Medium => 20_000,
            Scale::Large => 100_000,
        }
    }

    /// Stream length (edges) for runs that include the non-incremental VF2
    /// baseline, whose per-edge cost grows with the graph.
    pub fn baseline_edges(self) -> usize {
        match self {
            Scale::Small => 800,
            Scale::Medium => 2_500,
            Scale::Large => 5_000,
        }
    }

    /// Number of hosts / persons for the generators.
    pub fn entities(self) -> usize {
        match self {
            Scale::Small => 1_000,
            Scale::Medium => 4_000,
            Scale::Large => 20_000,
        }
    }

    /// Number of random queries generated per group before filtering.
    pub fn queries_per_group(self) -> usize {
        match self {
            Scale::Small => 20,
            Scale::Medium => 50,
            Scale::Large => 100,
        }
    }

    /// Number of queries kept per group after Expected-Selectivity sampling.
    pub fn sampled_queries(self) -> usize {
        match self {
            Scale::Small => 2,
            Scale::Medium => 5,
            Scale::Large => 8,
        }
    }
}

/// One measured run of one query under one strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMeasurement {
    /// Query name.
    pub query: String,
    /// Strategy label ("SingleLazy", "VF2", ...).
    pub strategy: String,
    /// Number of stream edges processed.
    pub edges: usize,
    /// Wall-clock processing time.
    #[serde(with = "serde_duration")]
    pub elapsed: Duration,
    /// Number of complete matches reported.
    pub matches: u64,
    /// Peak number of stored partial matches (0 for the VF2 baseline).
    pub peak_partial_matches: usize,
    /// Engine profile counters.
    pub profile: ProfileCounters,
}

mod serde_duration {
    use serde::{Deserialize, Deserializer, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(d.as_secs_f64())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

/// Aggregated result for one query group (same kind and size), as plotted in
/// Figure 9: mean runtime per strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryGroupResult {
    /// Group label, e.g. "path-3" or "tree-7".
    pub group: String,
    /// Number of queries measured.
    pub queries: usize,
    /// Number of stream edges each query processed.
    pub edges: usize,
    /// `(strategy label, mean seconds, mean matches)` per strategy.
    pub per_strategy: Vec<(String, f64, f64)>,
}

impl QueryGroupResult {
    /// Mean runtime for a strategy label, if present.
    pub fn mean_seconds(&self, label: &str) -> Option<f64> {
        self.per_strategy
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, s, _)| *s)
    }
}

/// Runs one query under one strategy over the first `limit` events of the
/// dataset and reports the measurement.
pub fn run_query(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    query: &QueryGraph,
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
) -> RunMeasurement {
    let engine = ContinuousQueryEngine::new(query.clone(), strategy, estimator, window)
        .expect("query decomposes");
    // Statistics collection stays off: the paper's methodology feeds the
    // estimator from a stream prefix only, and the measurement should not
    // include statistics maintenance.
    let mut proc =
        StreamProcessor::with_engine(dataset.schema.clone(), engine).with_statistics(false);
    let events = &dataset.events()[..limit.min(dataset.len())];
    let start = Instant::now();
    let matches = proc.process_all(events.iter());
    let elapsed = start.elapsed();
    let peak = proc
        .engine()
        .store_stats()
        .map(|s| s.total_live_matches)
        .unwrap_or(0)
        .max(proc.profile().peak_partial_matches);
    RunMeasurement {
        query: query.name().to_owned(),
        strategy: strategy.label().to_owned(),
        edges: events.len(),
        elapsed,
        matches,
        peak_partial_matches: peak,
        profile: proc.profile(),
    }
}

/// One measured multi-query run: the same query set executed once on a
/// shared-graph [`StreamProcessor`] (one ingest pass, edge-type dispatch)
/// and once as N independent single-query processors (N graph copies, N
/// ingest passes — the pre-registry architecture).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiQueryMeasurement {
    /// Number of queries executed.
    pub queries: usize,
    /// Number of stream edges processed (once for shared, per query for
    /// separate).
    pub edges: usize,
    /// Wall-clock time of the shared multi-query processor.
    #[serde(with = "serde_duration")]
    pub shared_elapsed: Duration,
    /// Wall-clock time of the N independent processors, summed.
    #[serde(with = "serde_duration")]
    pub separate_elapsed: Duration,
    /// Matches found by the shared processor (all queries).
    pub shared_matches: u64,
    /// Matches found by the independent processors, summed.
    pub separate_matches: u64,
    /// Sum of per-engine `edges_processed` in the shared run — the edges
    /// that actually reached an engine after edge-type dispatch.
    pub dispatched_edges: u64,
    /// `queries × edges`: the engine invocations the pre-registry
    /// architecture performs.
    pub undispatched_edges: u64,
}

impl MultiQueryMeasurement {
    /// Speedup of the shared processor over the N independent processors.
    pub fn speedup(&self) -> f64 {
        self.shared_elapsed.as_secs_f64().max(1e-12).recip() * self.separate_elapsed.as_secs_f64()
    }

    /// Fraction of engine invocations the dispatch index eliminated.
    pub fn dispatch_savings(&self) -> f64 {
        if self.undispatched_edges == 0 {
            0.0
        } else {
            1.0 - self.dispatched_edges as f64 / self.undispatched_edges as f64
        }
    }
}

/// Runs `queries` over the first `limit` events of the dataset twice — once
/// sharing a single data graph through the registry, once as independent
/// processors — and reports both measurements. The two executions must find
/// the same matches; this is asserted.
pub fn run_multi_query(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
) -> MultiQueryMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];

    // Shared: one graph, one ingest pass, dispatch through the registry.
    // Both executions decompose against the same prefix statistics.
    let mut shared = StreamProcessor::new(dataset.schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    for query in queries {
        shared
            .register(query.clone(), strategy, window)
            .expect("query decomposes");
    }
    let start = Instant::now();
    let shared_matches = shared.process_all(events.iter());
    let shared_elapsed = start.elapsed();
    let dispatched_edges: u64 = shared
        .query_ids()
        .iter()
        .filter_map(|&id| shared.profile_for(id))
        .map(|p| p.edges_processed)
        .sum();

    // Separate: the pre-registry architecture — every query pays a full
    // graph copy and a full ingest pass. Engines are built outside the
    // timed section, mirroring the shared arm where registration (and its
    // SJ-Tree decomposition) happens before the timer starts.
    let mut separate_procs: Vec<StreamProcessor> = queries
        .iter()
        .map(|query| {
            let engine = ContinuousQueryEngine::new(query.clone(), strategy, estimator, window)
                .expect("query decomposes");
            StreamProcessor::with_engine(dataset.schema.clone(), engine).with_statistics(false)
        })
        .collect();
    let mut separate_matches = 0u64;
    let start = Instant::now();
    for proc in &mut separate_procs {
        separate_matches += proc.process_all(events.iter());
    }
    let separate_elapsed = start.elapsed();

    assert_eq!(
        shared_matches, separate_matches,
        "shared and separate execution disagree"
    );
    MultiQueryMeasurement {
        queries: queries.len(),
        edges: events.len(),
        shared_elapsed,
        separate_elapsed,
        shared_matches,
        separate_matches,
        dispatched_edges,
        undispatched_edges: queries.len() as u64 * events.len() as u64,
    }
}

/// One measured shared-vs-unshared leaf-evaluation run: the same rule pack
/// executed on one shared-graph [`StreamProcessor`] with shared-leaf
/// evaluation on, and again with it off (every engine re-running its own
/// anchored leaf searches).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharingMeasurement {
    /// Number of registered queries.
    pub queries: usize,
    /// Stream edges processed by each arm.
    pub edges: usize,
    /// Strategy label the rule pack ran under.
    pub strategy: String,
    /// Wall-clock time with shared-leaf evaluation enabled.
    #[serde(with = "serde_duration")]
    pub shared_elapsed: Duration,
    /// Wall-clock time with sharing disabled (per-engine searches).
    #[serde(with = "serde_duration")]
    pub unshared_elapsed: Duration,
    /// Matches found (asserted identical between the two arms).
    pub matches: u64,
    /// Distinct canonical leaf shapes the pack decomposed into.
    pub distinct_leaves: usize,
    /// Leaf subscriptions across the pack (`>= distinct_leaves`; the gap is
    /// the sharing opportunity).
    pub leaf_subscriptions: usize,
    /// Anchored leaf searches the shared arm actually executed.
    pub leaf_searches_run: u64,
    /// Leaf searches the shared arm eliminated (served from a search another
    /// subscriber triggered on the same edge) — also surfaced per query via
    /// `ProfileCounters::leaf_searches_shared`.
    pub leaf_searches_eliminated: u64,
    /// Leaf searches delegated back to a single-subscriber engine (no
    /// sharing possible for that shape, so no shared-stage overhead paid).
    pub leaf_searches_delegated: u64,
}

impl SharingMeasurement {
    /// Speedup of the shared arm over the unshared arm.
    pub fn speedup(&self) -> f64 {
        self.unshared_elapsed.as_secs_f64() / self.shared_elapsed.as_secs_f64().max(1e-12)
    }

    /// Fraction of would-be leaf searches that sharing eliminated.
    pub fn elimination_ratio(&self) -> f64 {
        let total =
            self.leaf_searches_run + self.leaf_searches_eliminated + self.leaf_searches_delegated;
        if total == 0 {
            0.0
        } else {
            self.leaf_searches_eliminated as f64 / total as f64
        }
    }

    /// Shared-arm throughput in stream edges per second.
    pub fn throughput_eps(&self) -> f64 {
        self.edges as f64 / self.shared_elapsed.as_secs_f64().max(1e-12)
    }

    /// Unshared-arm throughput in stream edges per second.
    pub fn unshared_throughput_eps(&self) -> f64 {
        self.edges as f64 / self.unshared_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs `queries` over the first `limit` events twice on a shared-graph
/// [`StreamProcessor`] — once with shared-leaf evaluation, once without —
/// asserting identical match multisets, and reports both timings plus the
/// shared-leaf index statistics.
pub fn run_sharing(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
) -> SharingMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let run = |sharing: bool| {
        // Join sharing stays off in both arms: this experiment measures
        // shared-*leaf* evaluation against the per-engine path, and the
        // join stage would move prefix searches out of the leaf counters
        // compared here (the shared join stage has its own `sharedjoin`
        // experiment with a leaf-only baseline).
        let mut proc = StreamProcessor::new(dataset.schema.clone())
            .with_estimator(estimator.clone())
            .with_statistics(false)
            .with_sharing(sharing)
            .with_join_sharing(false);
        for query in queries {
            proc.register(query.clone(), strategy, window)
                .expect("query decomposes");
        }
        // Collect raw matches in the timed loop; fingerprint and sort the
        // multiset outside it so the equality check does not skew the
        // shared-vs-unshared timing.
        let mut found: Vec<(streampattern::QueryId, streampattern::SubgraphMatch)> = Vec::new();
        let mut sink = streampattern::FnSink(|q, m: streampattern::SubgraphMatch| {
            found.push((q, m));
        });
        let start = Instant::now();
        for ev in events {
            proc.process_into(ev, &mut sink);
        }
        let elapsed = start.elapsed();
        let mut found: Vec<(streampattern::QueryId, String)> = found
            .into_iter()
            .map(|(q, m)| (q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())))
            .collect();
        found.sort();
        (elapsed, found, proc.shared_leaf_stats())
    };
    // Interleave two passes per arm and keep the faster one, so allocator /
    // page-cache warm-up does not systematically favor whichever arm runs
    // second (the counter-based statistics are identical across passes).
    let (unshared_first, unshared_matches, _) = run(false);
    let (shared_first, shared_matches, stats) = run(true);
    let (unshared_second, _, _) = run(false);
    let (shared_second, _, _) = run(true);
    assert_eq!(
        shared_matches, unshared_matches,
        "shared-leaf evaluation changed the match multiset"
    );
    SharingMeasurement {
        queries: queries.len(),
        edges: events.len(),
        strategy: strategy.label().to_owned(),
        shared_elapsed: shared_first.min(shared_second),
        unshared_elapsed: unshared_first.min(unshared_second),
        matches: shared_matches.len() as u64,
        distinct_leaves: stats.distinct_leaves,
        leaf_subscriptions: stats.total_subscriptions,
        leaf_searches_run: stats.searches_run,
        leaf_searches_eliminated: stats.searches_shared,
        leaf_searches_delegated: stats.searches_delegated,
    }
}

/// One measured shared-join run: the same rule pack executed on one
/// shared-graph [`StreamProcessor`] three times — leaf-only sharing (the
/// PR 3 architecture), the flat join index (PR 5: one canonical table per
/// distinct prefix signature, nested prefixes independent), and the trie
/// join index (nested prefixes share storage, parent emissions feed child
/// nodes) — with identical match multisets asserted across all arms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedJoinMeasurement {
    /// Number of registered queries.
    pub queries: usize,
    /// Stream edges processed by each arm.
    pub edges: usize,
    /// Strategy label the rule pack ran under.
    pub strategy: String,
    /// Wall-clock time with leaf-only sharing.
    #[serde(with = "serde_duration")]
    pub leafonly_elapsed: Duration,
    /// Wall-clock time with the flat (PR 5) shared join index.
    #[serde(with = "serde_duration")]
    pub flat_elapsed: Duration,
    /// Wall-clock time with the trie-structured shared join index.
    #[serde(with = "serde_duration")]
    pub sharedjoin_elapsed: Duration,
    /// Matches found (asserted identical between the two arms).
    pub matches: u64,
    /// Live shared prefix tables at end of run.
    pub tables: usize,
    /// Queries subscribed to a shared prefix table.
    pub join_subscriptions: usize,
    /// Join-stage partial-match inserts of the leaf-only arm (every
    /// engine's own tables).
    pub leafonly_join_inserts: u64,
    /// Join-stage inserts of the flat arm (engines' remaining private
    /// tables plus one canonical table per distinct prefix signature).
    pub flat_join_inserts: u64,
    /// Join-stage inserts of the trie arm (engines' remaining private
    /// tables plus each trie node once; a nested prefix's partials live
    /// only in its deepest covering node).
    pub sharedjoin_join_inserts: u64,
    /// Total leaf searches the flat arm physically ran (engines' private
    /// leaf searches plus the shared stage's prefix leaf searches).
    pub flat_searches: u64,
    /// Total leaf searches the trie arm physically ran, accounted the same
    /// way — a child trie node consumes its parent's emissions instead of
    /// re-running the parent's leaf searches.
    pub sharedjoin_searches: u64,
    /// Prefix leaf searches the shared stage executed.
    pub prefix_searches_run: u64,
    /// Prefix leaf searches subscribers no longer run (per advance,
    /// `searches × (subscribers − 1)`).
    pub prefix_searches_saved: u64,
    /// Shared-table inserts subscribers no longer perform, accounted the
    /// same way.
    pub prefix_inserts_saved: u64,
    /// Prefix-root matches emitted by the shared tables.
    pub emissions: u64,
    /// Live trie nodes at end of run (equals `tables`; named for the
    /// trie-vs-flat comparison in the report).
    pub trie_nodes: usize,
    /// Deepest live trie node (> the flat arm's deepest table exactly when
    /// nesting prefixes folded into one trie path).
    pub trie_max_depth: usize,
    /// Parent-node emissions child trie nodes consumed in place of
    /// re-running the parent's leaf searches and joins (0 in the flat arm
    /// by construction).
    pub parent_feeds: u64,
}

impl SharedJoinMeasurement {
    /// Fraction of the leaf-only arm's join-stage inserts the trie-shared
    /// join stage eliminated.
    pub fn insert_reduction(&self) -> f64 {
        if self.leafonly_join_inserts == 0 {
            0.0
        } else {
            1.0 - self.sharedjoin_join_inserts as f64 / self.leafonly_join_inserts as f64
        }
    }

    /// Fraction of the *flat* index's join-stage inserts the trie
    /// eliminated — the marginal benefit of nesting prefixes sharing
    /// storage, over and above PR 5's signature-level sharing.
    pub fn trie_insert_reduction(&self) -> f64 {
        if self.flat_join_inserts == 0 {
            0.0
        } else {
            1.0 - self.sharedjoin_join_inserts as f64 / self.flat_join_inserts as f64
        }
    }

    /// Fraction of the flat index's physically-run leaf searches the trie
    /// eliminated (child nodes consume parent emissions instead of
    /// re-searching the shared prefix ranks).
    pub fn trie_search_reduction(&self) -> f64 {
        if self.flat_searches == 0 {
            0.0
        } else {
            1.0 - self.sharedjoin_searches as f64 / self.flat_searches as f64
        }
    }

    /// Speedup of the trie-shared arm over the leaf-only arm.
    pub fn speedup(&self) -> f64 {
        self.leafonly_elapsed.as_secs_f64() / self.sharedjoin_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs `rules` (query, window) over the first `limit` events three times
/// on a shared-graph [`StreamProcessor`] — leaf-only sharing, the flat
/// join index, and the trie join index — asserting identical match
/// multisets and reporting all timings plus the join-stage work deltas.
pub fn run_sharedjoin(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    rules: &[(QueryGraph, Option<u64>)],
    strategy: Strategy,
    limit: usize,
) -> SharedJoinMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];
    struct Arm {
        elapsed: Duration,
        matches: Vec<(streampattern::QueryId, String)>,
        join_inserts: u64,
        searches: u64,
        stats: streampattern::SharedJoinStats,
    }
    let run = |join_sharing: bool, trie: bool| -> Arm {
        let mut proc = StreamProcessor::new(dataset.schema.clone())
            .with_estimator(estimator.clone())
            .with_statistics(false)
            .with_join_sharing(join_sharing)
            .with_join_trie(trie);
        for (query, window) in rules {
            proc.register(query.clone(), strategy, *window)
                .expect("query decomposes");
        }
        let mut found: Vec<(streampattern::QueryId, streampattern::SubgraphMatch)> = Vec::new();
        let mut sink = streampattern::FnSink(|q, m: streampattern::SubgraphMatch| {
            found.push((q, m));
        });
        let start = Instant::now();
        for ev in events {
            proc.process_into(ev, &mut sink);
        }
        let elapsed = start.elapsed();
        let mut matches: Vec<(streampattern::QueryId, String)> = found
            .into_iter()
            .map(|(q, m)| (q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())))
            .collect();
        matches.sort();
        // Join-stage inserts actually performed: every engine's private
        // tables plus (shared arm) each canonical table once.
        let engine_inserts: u64 = proc
            .query_ids()
            .iter()
            .filter_map(|&id| proc.engine_for(id))
            .filter_map(|e| e.store_stats())
            .map(|s| s.total_inserted_per_node.iter().sum::<u64>())
            .sum();
        let stats = proc.shared_join_stats();
        Arm {
            elapsed,
            matches,
            join_inserts: engine_inserts + stats.inserts_run,
            searches: proc.profile().iso_searches + stats.searches_run,
            stats,
        }
    };
    // Interleave two passes per arm and keep the faster one, so allocator /
    // page-cache warm-up does not systematically favor whichever arm runs
    // last (the counter-based statistics are identical across passes).
    let leafonly_first = run(false, true);
    let flat_first = run(true, false);
    let trie_first = run(true, true);
    let leafonly_second = run(false, true);
    let flat_second = run(true, false);
    let trie_second = run(true, true);
    assert_eq!(
        trie_first.matches, leafonly_first.matches,
        "the trie join stage changed the match multiset"
    );
    assert_eq!(
        flat_first.matches, leafonly_first.matches,
        "the flat join stage changed the match multiset"
    );
    assert!(
        trie_first.join_inserts <= flat_first.join_inserts,
        "the trie join index performed MORE join-stage inserts than the flat index \
         ({} > {})",
        trie_first.join_inserts,
        flat_first.join_inserts,
    );
    SharedJoinMeasurement {
        queries: rules.len(),
        edges: events.len(),
        strategy: strategy.label().to_owned(),
        leafonly_elapsed: leafonly_first.elapsed.min(leafonly_second.elapsed),
        flat_elapsed: flat_first.elapsed.min(flat_second.elapsed),
        sharedjoin_elapsed: trie_first.elapsed.min(trie_second.elapsed),
        matches: trie_first.matches.len() as u64,
        tables: trie_first.stats.tables,
        join_subscriptions: trie_first.stats.subscriptions,
        leafonly_join_inserts: leafonly_first.join_inserts,
        flat_join_inserts: flat_first.join_inserts,
        sharedjoin_join_inserts: trie_first.join_inserts,
        flat_searches: flat_first.searches,
        sharedjoin_searches: trie_first.searches,
        prefix_searches_run: trie_first.stats.searches_run,
        prefix_searches_saved: trie_first.stats.searches_saved,
        prefix_inserts_saved: trie_first.stats.inserts_saved,
        emissions: trie_first.stats.emissions,
        trie_nodes: trie_first.stats.tables,
        trie_max_depth: trie_first.stats.max_depth,
        parent_feeds: trie_first.stats.parent_feeds,
    }
}

/// One measured drift run: the same rule pack over the same shifting stream
/// executed three ways — drift-adaptive, fixed-plan (adaptivity off), and
/// an oracle whose plans were built from the *post-shift* statistics. All
/// per-arm counters below are **post-shift deltas**, so they measure how
/// each plan copes with the distribution the stream actually has after the
/// flip.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMeasurement {
    /// Number of registered queries.
    pub queries: usize,
    /// Stream edges processed by each arm.
    pub edges: usize,
    /// Stream position of the distribution flip.
    pub shift_at: usize,
    /// Edges processed after the flip (the delta window).
    pub post_edges: usize,
    /// Strategy-spec label the pack ran under ("SingleLazy", "Auto", ...).
    pub strategy: String,
    /// Matches found (asserted identical across all three arms).
    pub matches: u64,
    /// Engine rebuilds the adaptive arm performed.
    pub redecompositions: u64,
    /// Post-shift searches spent inside re-decomposition replays (adaptive
    /// arm only) — the one-off switching cost, kept separate from the
    /// steady-state leaf-search counters below.
    pub adaptive_replay_searches: u64,
    /// Post-shift wall time of those replays.
    #[serde(with = "serde_duration")]
    pub adaptive_replay_time: Duration,
    /// Post-shift wall time of the adaptive arm (includes drift checks and
    /// replays).
    #[serde(with = "serde_duration")]
    pub adaptive_post_elapsed: Duration,
    /// Post-shift wall time of the fixed-plan arm.
    #[serde(with = "serde_duration")]
    pub fixed_post_elapsed: Duration,
    /// Post-shift wall time of the oracle arm.
    #[serde(with = "serde_duration")]
    pub oracle_post_elapsed: Duration,
    /// Post-shift anchored + retroactive leaf searches, adaptive arm.
    pub adaptive_post_leaf_searches: u64,
    /// Post-shift anchored + retroactive leaf searches, fixed arm.
    pub fixed_post_leaf_searches: u64,
    /// Post-shift anchored + retroactive leaf searches, oracle arm.
    pub oracle_post_leaf_searches: u64,
    /// Post-shift leaf matches stored, adaptive arm.
    pub adaptive_post_leaf_matches: u64,
    /// Post-shift leaf matches stored, fixed arm.
    pub fixed_post_leaf_matches: u64,
    /// Post-shift leaf matches stored, oracle arm.
    pub oracle_post_leaf_matches: u64,
}

impl DriftMeasurement {
    /// Fraction of the fixed arm's post-shift leaf searches the adaptive
    /// arm eliminated.
    pub fn search_savings(&self) -> f64 {
        if self.fixed_post_leaf_searches == 0 {
            0.0
        } else {
            1.0 - self.adaptive_post_leaf_searches as f64 / self.fixed_post_leaf_searches as f64
        }
    }

    /// Post-shift speedup of the adaptive arm over the fixed arm.
    pub fn post_speedup(&self) -> f64 {
        self.fixed_post_elapsed.as_secs_f64() / self.adaptive_post_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs `queries` over a shifting stream three times — adaptive, fixed, and
/// post-shift oracle — asserting identical match multisets and reporting
/// post-shift work deltas. `shift_at` is the stream *position* of the flip
/// (the generators carry it in the timestamps); `decay_interval` configures
/// the decayed estimator both the adaptive and fixed arms share, so the only
/// difference between those two arms is whether anyone acts on the moving
/// statistics.
#[allow(clippy::too_many_arguments)]
pub fn run_drift(
    dataset: &Dataset,
    queries: &[QueryGraph],
    spec: StrategySpec,
    shift_at: usize,
    limit: usize,
    window: Option<u64>,
    drift_config: DriftConfig,
    decay_interval: u64,
) -> DriftMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let split = events.partition_point(|ev| (ev.timestamp.0 as usize) < shift_at);
    let (pre, post) = events.split_at(split);

    // Phase-1 statistics seed (first half of the pre-shift segment), decayed
    // so the estimator keeps moving while the arms process the stream.
    let mode = StatsMode::Decayed(decay_interval);
    let phase1_est = Dataset::estimator_from_events(&pre[..pre.len() / 2], mode);
    // The oracle registers against the post-shift distribution and keeps its
    // statistics frozen (no live collection) so its plan never degrades.
    let phase2_est = Dataset::estimator_from_events(&post[..(post.len() / 2).max(1)], mode);

    struct ArmResult {
        matches: Vec<(streampattern::QueryId, String)>,
        post_elapsed: Duration,
        post_leaf_searches: u64,
        post_leaf_matches: u64,
        redecompositions: u64,
        replay_searches: u64,
        replay_time: Duration,
    }
    let run_arm = |adaptive: bool, est: SelectivityEstimator, collect: bool| -> ArmResult {
        // Join sharing moves prefix searches off the per-engine counters
        // this experiment compares (and re-decomposition churns table
        // subscriptions), so it stays off here: the drift experiment
        // isolates *private-engine* adaptivity. The shared join stage has
        // its own experiment (`sharedjoin`) and its own drift-interplay
        // parity tests.
        let mut proc = StreamProcessor::new(dataset.schema.clone())
            .with_estimator(est)
            .with_statistics(collect)
            .with_join_sharing(false);
        if adaptive {
            proc = proc.with_adaptive(drift_config);
        }
        for query in queries {
            proc.register(query.clone(), spec, window)
                .expect("query decomposes");
        }
        let mut found: Vec<(streampattern::QueryId, streampattern::SubgraphMatch)> = Vec::new();
        let mut sink = streampattern::FnSink(|q, m: streampattern::SubgraphMatch| {
            found.push((q, m));
        });
        for ev in pre {
            proc.process_into(ev, &mut sink);
        }
        let at_shift = proc.profile();
        let start = Instant::now();
        for ev in post {
            proc.process_into(ev, &mut sink);
        }
        let post_elapsed = start.elapsed();
        let end = proc.profile();
        let mut matches: Vec<(streampattern::QueryId, String)> = found
            .into_iter()
            .map(|(q, m)| (q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())))
            .collect();
        matches.sort();
        ArmResult {
            matches,
            post_elapsed,
            post_leaf_searches: (end.iso_searches + end.retroactive_searches)
                - (at_shift.iso_searches + at_shift.retroactive_searches),
            post_leaf_matches: end.leaf_matches - at_shift.leaf_matches,
            redecompositions: end.redecompositions,
            replay_searches: end.replay_searches - at_shift.replay_searches,
            replay_time: end.replay_time - at_shift.replay_time,
        }
    };

    let adaptive = run_arm(true, phase1_est.clone(), true);
    let fixed = run_arm(false, phase1_est, true);
    let oracle = run_arm(false, phase2_est, false);

    assert_eq!(
        adaptive.matches, fixed.matches,
        "drift-adaptive re-decomposition changed the match multiset"
    );
    assert_eq!(
        adaptive.matches, oracle.matches,
        "the oracle plan changed the match multiset"
    );

    let spec_label = match spec {
        StrategySpec::Fixed(s) => s.label().to_owned(),
        StrategySpec::Auto => "Auto".to_owned(),
    };
    DriftMeasurement {
        queries: queries.len(),
        edges: events.len(),
        shift_at,
        post_edges: post.len(),
        strategy: spec_label,
        matches: adaptive.matches.len() as u64,
        redecompositions: adaptive.redecompositions,
        adaptive_replay_searches: adaptive.replay_searches,
        adaptive_replay_time: adaptive.replay_time,
        adaptive_post_elapsed: adaptive.post_elapsed,
        fixed_post_elapsed: fixed.post_elapsed,
        oracle_post_elapsed: oracle.post_elapsed,
        adaptive_post_leaf_searches: adaptive.post_leaf_searches,
        fixed_post_leaf_searches: fixed.post_leaf_searches,
        oracle_post_leaf_searches: oracle.post_leaf_searches,
        adaptive_post_leaf_matches: adaptive.post_leaf_matches,
        fixed_post_leaf_matches: fixed.post_leaf_matches,
        oracle_post_leaf_matches: oracle.post_leaf_matches,
    }
}

/// One measured run of the parallel runtime against the sequential
/// [`StreamProcessor`] on the same multi-query workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelMeasurement {
    /// Worker threads in the parallel run.
    pub workers: usize,
    /// Number of registered queries.
    pub queries: usize,
    /// Stream edges processed.
    pub edges: usize,
    /// Wall-clock time of the sequential shared-graph processor.
    #[serde(with = "serde_duration")]
    pub sequential_elapsed: Duration,
    /// Wall-clock time of the parallel runtime (including ingest, transport
    /// and the final drain).
    #[serde(with = "serde_duration")]
    pub parallel_elapsed: Duration,
    /// Matches found (asserted identical between the two runs).
    pub matches: u64,
    /// Backpressure events recorded by the parallel ingest loop.
    pub backpressure_events: u64,
    /// Per-query engine counters from the parallel run, labelled with the
    /// query name (aggregated across shards by the facade).
    pub per_query: Vec<(String, ProfileCounters)>,
}

impl ParallelMeasurement {
    /// Speedup of the parallel runtime over the sequential processor.
    pub fn speedup(&self) -> f64 {
        self.sequential_elapsed.as_secs_f64() / self.parallel_elapsed.as_secs_f64().max(1e-12)
    }

    /// Parallel throughput in stream edges per second.
    pub fn throughput_eps(&self) -> f64 {
        self.edges as f64 / self.parallel_elapsed.as_secs_f64().max(1e-12)
    }

    /// Sequential throughput in stream edges per second.
    pub fn sequential_throughput_eps(&self) -> f64 {
        self.edges as f64 / self.sequential_elapsed.as_secs_f64().max(1e-12)
    }
}

/// Runs `queries` over the first `limit` events on the sequential
/// shared-graph [`StreamProcessor`] and returns `(elapsed, matches)` — the
/// baseline a worker-count sweep measures [`run_parallel`] against once,
/// instead of re-timing it for every sweep point.
pub fn run_sequential_baseline(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
) -> (Duration, u64) {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let mut seq = StreamProcessor::new(dataset.schema.clone())
        .with_estimator(estimator.clone())
        .with_statistics(false);
    for query in queries {
        seq.register(query.clone(), strategy, window)
            .expect("query decomposes");
    }
    let start = Instant::now();
    let matches = seq.process_all(events.iter());
    (start.elapsed(), matches)
}

/// Runs `queries` over the first `limit` events on the sharded
/// [`ParallelStreamProcessor`](sp_runtime::ParallelStreamProcessor) with
/// `workers` threads and reports the measurement against a sequential
/// baseline. `baseline` is the [`run_sequential_baseline`] result to
/// compare (and assert match-count equality) against; pass `None` to
/// measure it in place. `ingest_filter` enables shard-local graph filtering
/// in the parallel arm (safe here: queries are registered before the stream
/// starts).
#[allow(clippy::too_many_arguments)]
pub fn run_parallel(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
    workers: usize,
    ingest_filter: bool,
    baseline: Option<(Duration, u64)>,
) -> ParallelMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let (sequential_elapsed, seq_matches) = baseline.unwrap_or_else(|| {
        run_sequential_baseline(dataset, estimator, queries, strategy, limit, window)
    });

    // Parallel arm: same queries, same prefix statistics, N shards.
    let config = sp_runtime::RuntimeConfig::with_workers(workers)
        .statistics(false)
        .ingest_filtering(ingest_filter);
    let mut par = sp_runtime::ParallelStreamProcessor::new(dataset.schema.clone(), config)
        .with_estimator(estimator.clone());
    let mut ids = Vec::with_capacity(queries.len());
    for query in queries {
        ids.push(
            par.register(query.clone(), strategy, window)
                .expect("query decomposes"),
        );
    }
    let start = Instant::now();
    let par_matches = par.process_all(events.iter());
    let parallel_elapsed = start.elapsed();

    assert_eq!(
        seq_matches, par_matches,
        "sequential and parallel execution disagree at {workers} workers"
    );
    let per_query = ids
        .iter()
        .zip(queries)
        .filter_map(|(&id, q)| par.profile_for(id).map(|p| (q.name().to_owned(), p)))
        .collect();
    let backpressure_events = par.stats().backpressure_events;
    ParallelMeasurement {
        workers,
        queries: queries.len(),
        edges: events.len(),
        sequential_elapsed,
        parallel_elapsed,
        matches: par_matches,
        backpressure_events,
        per_query,
    }
}

/// One soak interval: a fixed-size slice of the stream, timed end to end
/// (including the pipeline drain at the slice boundary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakInterval {
    /// Interval index, starting at 0.
    pub index: usize,
    /// Stream edges processed in this interval.
    pub edges: usize,
    /// Wall-clock time of the interval.
    #[serde(with = "serde_duration")]
    pub elapsed: Duration,
    /// Interval throughput in stream edges per second.
    pub eps: f64,
    /// Matches delivered during this interval.
    pub matches: u64,
}

/// One sustained-throughput soak run of the parallel runtime under a live
/// [`MetricsRegistry`](sp_metrics::MetricsRegistry): the stream is processed
/// in fixed-size intervals (each ending on a full pipeline drain, so the
/// per-interval throughput is honest), and the per-stage counters plus the
/// detection-latency histogram are read off the registry at the end. A
/// second, metrics-off pass over the same stream asserts the match multiset
/// is unchanged and prices the instrumentation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakMeasurement {
    /// Worker threads.
    pub workers: usize,
    /// Registered queries.
    pub queries: usize,
    /// Total stream edges processed.
    pub edges: usize,
    /// Per-interval throughput time series.
    pub intervals: Vec<SoakInterval>,
    /// Total wall-clock time of the metered pass.
    #[serde(with = "serde_duration")]
    pub total_elapsed: Duration,
    /// Whole-run throughput of the metered pass (edges/s).
    pub overall_eps: f64,
    /// Steady-state throughput: the median interval eps (robust to the cold
    /// first interval and to drain jitter).
    pub steady_eps: f64,
    /// Matches found (asserted identical to the metrics-off pass).
    pub matches: u64,
    /// Detection latency (event arrival at the facade → match emission on a
    /// worker), in nanoseconds, from the `match.latency_ns` histogram.
    pub latency_p50_ns: u64,
    /// 90th percentile detection latency.
    pub latency_p90_ns: u64,
    /// 99th percentile detection latency.
    pub latency_p99_ns: u64,
    /// 99.9th percentile detection latency.
    pub latency_p999_ns: u64,
    /// 99th percentile batch channel sojourn (`runtime.batch_sojourn_ns`).
    pub sojourn_p99_ns: u64,
    /// Ingest-loop stalls on full worker channels
    /// (`runtime.backpressure_stalls_total`).
    pub backpressure_stalls: u64,
    /// Cumulative per-stage nanoseconds across all worker replicas, in
    /// pipeline order (`stage.*` counters).
    pub stage_split_ns: Vec<(String, u64)>,
    /// Steady-state heap allocations per stream edge, metered by a third,
    /// metrics-off pass with the counting global allocator (`count-allocs`
    /// feature): the first half of the stream warms every scratch buffer,
    /// the second half is differenced. `-1` when the feature is off.
    pub allocs_per_edge: f64,
    /// Steady-state heap bytes requested per stream edge over the same
    /// metering slice. `-1` when the `count-allocs` feature is off.
    pub bytes_per_edge: f64,
    /// Steady-state heap allocations per **stored partial match** over the
    /// same metering slice: the allocation delta divided by the growth of
    /// the lifetime-inserted counters across every worker replica's match
    /// stores (engines plus shared prefix tables). With interned match
    /// storage this stays near zero even when matches spill the inline
    /// binding width — each stored match is a fixed-width arena row, and
    /// steady-state rows recycle through the arena free list. `-1` when the
    /// `count-allocs` feature is off.
    pub allocs_per_match: f64,
    /// Whole-run throughput of the metrics-off pass over the same stream,
    /// same interval structure (edges/s).
    pub metrics_off_eps: f64,
    /// Fractional throughput cost of live metrics:
    /// `1 − overall_eps / metrics_off_eps`. Negative values are noise.
    pub metrics_overhead: f64,
}

/// The full soak artifact serialized to `BENCH_soak.json`: one
/// [`SoakMeasurement`] per worker count plus the sequential-processor
/// instrumentation-overhead probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakReport {
    /// One soak run per worker count, in sweep order.
    pub runs: Vec<SoakMeasurement>,
    /// Metrics-on vs metrics-off throughput on the `sharing` workload.
    pub overhead: MetricsOverhead,
}

/// Metrics-off overhead probe on the sequential processor: the `sharing`
/// workload run with the instrumentation compiled in but disabled, against
/// the same run with a live registry attached. With metrics off the hot path
/// pays exactly one `Option` branch per edge, so `off` here is the honest
/// stand-in for the pre-instrumentation baseline the <2 % budget is written
/// against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsOverhead {
    /// Registered queries.
    pub queries: usize,
    /// Stream edges processed per pass.
    pub edges: usize,
    /// Throughput with metrics disabled (edges/s, best of two interleaved
    /// passes).
    pub off_eps: f64,
    /// Throughput with a live registry attached (edges/s, best of two
    /// interleaved passes).
    pub on_eps: f64,
    /// `1 − on_eps / off_eps`; negative values are noise.
    pub overhead: f64,
}

/// Runs the `sharing`-shaped workload on the sequential [`StreamProcessor`]
/// twice per arm (interleaved, keeping the faster pass) — metrics off versus
/// a live [`MetricsRegistry`](sp_metrics::MetricsRegistry) — asserting equal
/// match counts and reporting the throughput delta.
pub fn run_metrics_overhead(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
) -> MetricsOverhead {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let run = |metered: bool| -> (Duration, u64) {
        let mut proc = StreamProcessor::new(dataset.schema.clone())
            .with_estimator(estimator.clone())
            .with_statistics(false);
        if metered {
            let registry = sp_metrics::MetricsRegistry::new();
            proc = proc.with_metrics(streampattern::PipelineMetrics::register(&registry));
        }
        for query in queries {
            proc.register(query.clone(), strategy, window)
                .expect("query decomposes");
        }
        let start = Instant::now();
        let matches = proc.process_all(events.iter());
        (start.elapsed(), matches)
    };
    let (off_a, off_matches) = run(false);
    let (on_a, on_matches) = run(true);
    let (off_b, _) = run(false);
    let (on_b, _) = run(true);
    assert_eq!(off_matches, on_matches, "metrics changed the match count");
    let off_eps = events.len() as f64 / off_a.min(off_b).as_secs_f64().max(1e-12);
    let on_eps = events.len() as f64 / on_a.min(on_b).as_secs_f64().max(1e-12);
    MetricsOverhead {
        queries: queries.len(),
        edges: events.len(),
        off_eps,
        on_eps,
        overhead: 1.0 - on_eps / off_eps.max(1e-12),
    }
}

/// Runs `queries` over the first `limit` events on the parallel runtime with
/// `workers` threads and a live metrics registry, in `num_intervals` drained
/// slices, then re-runs the same stream metrics-off and asserts the match
/// multiset is identical. See [`SoakMeasurement`] for what is reported.
#[allow(clippy::too_many_arguments)]
pub fn run_soak(
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategy: Strategy,
    limit: usize,
    window: Option<u64>,
    workers: usize,
    num_intervals: usize,
) -> SoakMeasurement {
    let events = &dataset.events()[..limit.min(dataset.len())];
    let num_intervals = num_intervals.clamp(1, events.len().max(1));
    let chunk = events.len().div_ceil(num_intervals).max(1);

    let build = |registry: Option<&sp_metrics::MetricsRegistry>| {
        let config = sp_runtime::RuntimeConfig::with_workers(workers).statistics(false);
        let mut par = sp_runtime::ParallelStreamProcessor::new(dataset.schema.clone(), config)
            .with_estimator(estimator.clone());
        if let Some(registry) = registry {
            par.enable_metrics(registry);
        }
        for query in queries {
            par.register(query.clone(), strategy, window)
                .expect("query decomposes");
        }
        par
    };
    // Both arms run the identical interval structure (process_all_into
    // drains the pipeline at each slice boundary), so the off arm prices
    // exactly the instrumentation, not a different barrier pattern.
    let run =
        |par: &mut sp_runtime::ParallelStreamProcessor| -> (Vec<SoakInterval>, Vec<(streampattern::QueryId, String)>) {
            let mut intervals = Vec::with_capacity(num_intervals);
            let mut found: Vec<(streampattern::QueryId, String)> = Vec::new();
            for (index, slice) in events.chunks(chunk).enumerate() {
                let mut matches = 0u64;
                let mut sink = streampattern::FnSink(|q, m: streampattern::SubgraphMatch| {
                    matches += 1;
                    found.push((q, format!("{:?}", m.edge_pairs().collect::<Vec<_>>())));
                });
                let start = Instant::now();
                par.process_all_into(slice.iter(), &mut sink);
                let elapsed = start.elapsed();
                intervals.push(SoakInterval {
                    index,
                    edges: slice.len(),
                    elapsed,
                    eps: slice.len() as f64 / elapsed.as_secs_f64().max(1e-12),
                    matches,
                });
            }
            found.sort();
            (intervals, found)
        };

    let registry = sp_metrics::MetricsRegistry::new();
    let mut metered = build(Some(&registry));
    let (intervals, metered_matches) = run(&mut metered);
    let stats = metered.stats();
    drop(metered.shutdown());
    let snapshot = registry.snapshot();

    let mut plain = build(None);
    let (plain_intervals, plain_matches) = run(&mut plain);
    drop(plain.shutdown());
    assert_eq!(
        metered_matches, plain_matches,
        "live metrics changed the match multiset at {workers} workers"
    );

    // Allocation metering (count-allocs builds): a dedicated metrics-off
    // pass with a counting sink — the collecting sinks above format every
    // match into a `String`, which would drown the hot path's allocator
    // traffic in reporting noise. The first half of the stream warms the
    // scratch buffers and channels; only the second half is differenced.
    #[cfg(feature = "count-allocs")]
    let (allocs_per_edge, bytes_per_edge, allocs_per_match) = {
        let mut par = build(None);
        let warm = events.len() / 2;
        let mut sink = streampattern::CountSink::new();
        par.process_all_into(events[..warm].iter(), &mut sink);
        // The stored-match snapshots bracket the alloc counters from the
        // *outside* (s0 before a0, s1 after a1): collecting worker reports
        // allocates, and that reporting traffic must not land in the metered
        // window.
        let s0 = par.stored_matches();
        let (a0, b0) = sp_metrics::alloc_counts();
        par.process_all_into(events[warm..].iter(), &mut sink);
        let (a1, b1) = sp_metrics::alloc_counts();
        let s1 = par.stored_matches();
        drop(par.shutdown());
        let metered_edges = (events.len() - warm).max(1) as f64;
        (
            (a1 - a0) as f64 / metered_edges,
            (b1 - b0) as f64 / metered_edges,
            (a1 - a0) as f64 / (s1 - s0).max(1) as f64,
        )
    };
    #[cfg(not(feature = "count-allocs"))]
    let (allocs_per_edge, bytes_per_edge, allocs_per_match) = (-1.0, -1.0, -1.0);

    let total_elapsed: Duration = intervals.iter().map(|i| i.elapsed).sum();
    let plain_elapsed: Duration = plain_intervals.iter().map(|i| i.elapsed).sum();
    let overall_eps = events.len() as f64 / total_elapsed.as_secs_f64().max(1e-12);
    let metrics_off_eps = events.len() as f64 / plain_elapsed.as_secs_f64().max(1e-12);
    let steady_eps = {
        let mut eps: Vec<f64> = intervals.iter().map(|i| i.eps).collect();
        eps.sort_by(|a, b| a.partial_cmp(b).expect("eps is finite"));
        eps[eps.len() / 2]
    };
    let latency = snapshot
        .histogram("match.latency_ns")
        .map(|h| h.percentiles())
        .unwrap_or_default();
    let sojourn = snapshot
        .histogram("runtime.batch_sojourn_ns")
        .map(|h| h.percentiles())
        .unwrap_or_default();
    let stage_split_ns = [
        "stage.ingest_ns",
        "stage.dispatch_ns",
        "stage.shared_join_ns",
        "stage.shared_leaf_ns",
        "stage.private_engine_ns",
        "stage.emit_ns",
        "stage.purge_ns",
    ]
    .iter()
    .map(|&name| (name.to_owned(), snapshot.counter(name).unwrap_or(0)))
    .collect();
    SoakMeasurement {
        workers,
        queries: queries.len(),
        edges: events.len(),
        intervals,
        total_elapsed,
        overall_eps,
        steady_eps,
        matches: metered_matches.len() as u64,
        latency_p50_ns: latency.p50,
        latency_p90_ns: latency.p90,
        latency_p99_ns: latency.p99,
        latency_p999_ns: latency.p999,
        sojourn_p99_ns: sojourn.p99,
        backpressure_stalls: stats.backpressure_events,
        stage_split_ns,
        allocs_per_edge,
        bytes_per_edge,
        allocs_per_match,
        metrics_off_eps,
        metrics_overhead: 1.0 - overall_eps / metrics_off_eps.max(1e-12),
    }
}

/// Expected Selectivity of a query under the 2-edge-path decomposition —
/// the quantity the paper samples query groups by.
pub fn query_expected_selectivity(query: &QueryGraph, estimator: &SelectivityEstimator) -> f64 {
    decompose(query, PrimitivePolicy::TwoEdgePath, estimator)
        .map(|tree| expected_selectivity(&tree, estimator).expected)
        .unwrap_or(1.0)
}

/// Relative Selectivity ξ of a query (2-edge vs 1-edge decomposition).
pub fn query_relative_selectivity(query: &QueryGraph, estimator: &SelectivityEstimator) -> f64 {
    let single = decompose(query, PrimitivePolicy::SingleEdge, estimator);
    let path = decompose(query, PrimitivePolicy::TwoEdgePath, estimator);
    match (single, path) {
        (Ok(s), Ok(p)) => {
            expected_selectivity(&p, estimator).relative_to(&expected_selectivity(&s, estimator))
        }
        _ => 1.0,
    }
}

/// The paper's sampling step: order the valid queries by Expected Selectivity
/// and keep `k` of them spread (near-)uniformly across that range.
pub fn sample_by_expected_selectivity(
    mut queries: Vec<QueryGraph>,
    estimator: &SelectivityEstimator,
    k: usize,
) -> Vec<QueryGraph> {
    if queries.len() <= k {
        return queries;
    }
    queries.sort_by(|a, b| {
        query_expected_selectivity(a, estimator)
            .partial_cmp(&query_expected_selectivity(b, estimator))
            .expect("selectivities are finite")
    });
    let n = queries.len();
    let mut picked = Vec::with_capacity(k);
    for i in 0..k {
        let idx = i * (n - 1) / (k - 1).max(1);
        picked.push(queries[idx].clone());
    }
    picked
}

/// Runs a whole query group (already generated and sampled) under the given
/// strategies and aggregates mean runtimes — one point per strategy on a
/// Figure 9 plot.
pub fn run_group(
    group: &str,
    dataset: &Dataset,
    estimator: &SelectivityEstimator,
    queries: &[QueryGraph],
    strategies: &[Strategy],
    limit: usize,
    window: Option<u64>,
) -> QueryGroupResult {
    let mut per_strategy = Vec::new();
    for &strategy in strategies {
        let mut total_time = 0.0;
        let mut total_matches = 0.0;
        for query in queries {
            let m = run_query(dataset, estimator, query, strategy, limit, window);
            total_time += m.elapsed.as_secs_f64();
            total_matches += m.matches as f64;
        }
        let n = queries.len().max(1) as f64;
        per_strategy.push((
            strategy.label().to_owned(),
            total_time / n,
            total_matches / n,
        ));
    }
    QueryGroupResult {
        group: group.to_owned(),
        queries: queries.len(),
        edges: limit.min(dataset.len()),
        per_strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_datasets::{NetflowConfig, QueryGenerator, QueryKind};

    fn tiny() -> (Dataset, SelectivityEstimator) {
        let d = NetflowConfig {
            num_hosts: 200,
            num_edges: 1_500,
            ..NetflowConfig::tiny()
        }
        .generate();
        let est = d.estimator_from_prefix(d.len() / 2);
        (d, est)
    }

    #[test]
    fn scale_parsing_and_sizes() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("MEDIUM"), Some(Scale::Medium));
        assert_eq!(Scale::parse("nope"), None);
        assert!(Scale::Small.stream_edges() < Scale::Large.stream_edges());
        assert!(Scale::Small.baseline_edges() <= Scale::Small.stream_edges());
        assert!(Scale::Medium.sampled_queries() <= Scale::Medium.queries_per_group());
        assert!(Scale::Large.entities() > Scale::Small.entities());
    }

    #[test]
    fn run_query_produces_consistent_measurement() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 5);
        let q = gen.generate(QueryKind::Path { length: 3 });
        let m = run_query(&d, &est, &q, Strategy::SingleLazy, 1_000, None);
        assert_eq!(m.edges, 1_000);
        assert_eq!(m.strategy, "SingleLazy");
        assert!(m.elapsed > Duration::ZERO);
        assert_eq!(m.profile.edges_processed, 1_000);
    }

    #[test]
    fn sampling_spreads_across_the_selectivity_range() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 5);
        let all = gen.generate_valid_batch(QueryKind::Path { length: 3 }, 30, &est);
        let sampled = sample_by_expected_selectivity(all.clone(), &est, 4);
        assert!(sampled.len() <= 4);
        if all.len() >= 4 {
            assert_eq!(sampled.len(), 4);
            let s: Vec<f64> = sampled
                .iter()
                .map(|q| query_expected_selectivity(q, &est))
                .collect();
            assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn group_run_aggregates_all_strategies() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 9);
        let queries = gen.generate_valid_batch(QueryKind::Path { length: 3 }, 10, &est);
        let sampled = sample_by_expected_selectivity(queries, &est, 2);
        let result = run_group(
            "path-3",
            &d,
            &est,
            &sampled,
            &[Strategy::SingleLazy, Strategy::PathLazy],
            800,
            None,
        );
        assert_eq!(result.group, "path-3");
        assert_eq!(result.per_strategy.len(), 2);
        assert!(result.mean_seconds("SingleLazy").unwrap() > 0.0);
        assert!(result.mean_seconds("VF2").is_none());
    }

    #[test]
    fn multi_query_shared_and_separate_agree() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 21);
        let queries = gen.generate_valid_batch(QueryKind::Path { length: 3 }, 4, &est);
        assert!(queries.len() >= 2, "generator produced too few queries");
        let m = run_multi_query(&d, &est, &queries, Strategy::SingleLazy, 1_000, None);
        assert_eq!(m.queries, queries.len());
        assert_eq!(m.edges, 1_000);
        assert_eq!(m.shared_matches, m.separate_matches);
        // The dispatch index can only reduce engine invocations.
        assert!(m.dispatched_edges <= m.undispatched_edges);
        assert!(m.dispatch_savings() >= 0.0);
        assert!(m.speedup() > 0.0);
    }

    #[test]
    fn parallel_runner_matches_sequential_and_times_both() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 31);
        let queries = gen.generate_valid_batch(QueryKind::Path { length: 3 }, 4, &est);
        assert!(queries.len() >= 2, "generator produced too few queries");
        let m = run_parallel(
            &d,
            &est,
            &queries,
            Strategy::SingleLazy,
            1_000,
            None,
            2,
            false,
            None,
        );
        assert_eq!(m.workers, 2);
        assert_eq!(m.edges, 1_000);
        assert!(m.parallel_elapsed > Duration::ZERO);
        assert!(m.sequential_elapsed > Duration::ZERO);
        assert!(m.speedup() > 0.0);
        assert!(m.throughput_eps() > 0.0);
        assert_eq!(m.per_query.len(), queries.len());
        // Each query's engine saw only its dispatched edges.
        for (_, p) in &m.per_query {
            assert!(p.edges_processed <= 1_000);
        }
    }

    #[test]
    fn relative_selectivity_is_finite_for_generated_queries() {
        let (d, est) = tiny();
        let mut gen = QueryGenerator::new(d.schema.clone(), d.valid_triples.clone(), 13);
        for q in gen.generate_valid_batch(QueryKind::Path { length: 4 }, 10, &est) {
            let xi = query_relative_selectivity(&q, &est);
            assert!(xi.is_finite() && xi > 0.0);
        }
    }
}
