//! Markdown rendering of experiment results.

use crate::runner::QueryGroupResult;
use streampattern::ProfileCounters;

/// Renders a markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a runtime in seconds with adaptive precision.
pub fn fmt_seconds(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a ratio such as a speedup factor.
pub fn fmt_ratio(r: f64) -> String {
    if !r.is_finite() {
        "∞".to_owned()
    } else if r >= 100.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.1}x")
    }
}

/// Renders the Figure-9-style table: one row per query group, one column per
/// strategy, plus the speedup of the best lazy strategy over the baseline
/// column (the last strategy listed is treated as the baseline).
pub fn render_groups(groups: &[QueryGroupResult], strategies: &[&str]) -> String {
    let mut header: Vec<&str> = vec!["group", "queries", "edges"];
    header.extend(strategies);
    header.push("best-lazy vs last");
    let mut rows = Vec::new();
    for g in groups {
        let mut row = vec![g.group.clone(), g.queries.to_string(), g.edges.to_string()];
        for s in strategies {
            row.push(
                g.mean_seconds(s)
                    .map(fmt_seconds)
                    .unwrap_or_else(|| "-".to_owned()),
            );
        }
        let best_lazy = ["SingleLazy", "PathLazy"]
            .iter()
            .filter_map(|s| g.mean_seconds(s))
            .fold(f64::INFINITY, f64::min);
        let baseline = strategies
            .last()
            .and_then(|s| g.mean_seconds(s))
            .unwrap_or(f64::NAN);
        row.push(
            if best_lazy.is_finite() && baseline.is_finite() && best_lazy > 0.0 {
                fmt_ratio(baseline / best_lazy)
            } else {
                "-".to_owned()
            },
        );
        rows.push(row);
    }
    markdown_table(&header, &rows)
}

/// Renders the per-query profiling breakdown of a multi-query run: one row
/// per query with its own engine counters, plus a `TOTAL` row aggregated
/// with [`ProfileCounters::merge`]. Earlier reports only showed the global
/// counters, hiding which query dominated; this is the per-query
/// aggregation path.
pub fn render_per_query_profiles(rows: &[(String, ProfileCounters)]) -> String {
    let mut total = ProfileCounters::new();
    let mut table_rows = Vec::with_capacity(rows.len() + 1);
    for (name, p) in rows {
        total.merge(p);
        table_rows.push(profile_row(name, p));
    }
    table_rows.push(profile_row("TOTAL", &total));
    markdown_table(
        &[
            "query",
            "edges seen",
            "iso searches",
            "skipped",
            "shared",
            "leaf matches",
            "complete",
            "iso share",
        ],
        &table_rows,
    )
}

fn profile_row(name: &str, p: &ProfileCounters) -> Vec<String> {
    vec![
        name.to_owned(),
        p.edges_processed.to_string(),
        p.iso_searches.to_string(),
        p.searches_skipped.to_string(),
        p.leaf_searches_shared.to_string(),
        p.leaf_matches.to_string(),
        p.complete_matches.to_string(),
        format!("{:.1}%", 100.0 * p.iso_time_fraction()),
    ]
}

/// Renders a log-scale histogram row for distribution figures: bucket counts
/// as text so the skew is visible in a terminal.
pub fn ascii_histogram(values: &[f64], buckets: usize) -> String {
    if values.is_empty() || buckets == 0 {
        return String::from("(no data)");
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / buckets as f64).max(f64::EPSILON);
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let b = (((v - min) / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, c) in counts.iter().enumerate() {
        let lo = min + i as f64 * width;
        let bar = "#".repeat((c * 40 / peak).max(usize::from(*c > 0)));
        out.push_str(&format!("{lo:>10.2} | {bar} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a |"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("| 1 |"));
    }

    #[test]
    fn seconds_formatting() {
        assert!(fmt_seconds(0.0000005).contains("µs"));
        assert!(fmt_seconds(0.005).contains("ms"));
        assert!(fmt_seconds(2.5).contains("s"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(2.0), "2.0x");
        assert_eq!(fmt_ratio(250.0), "250x");
        assert_eq!(fmt_ratio(f64::INFINITY), "∞");
    }

    #[test]
    fn group_rendering_includes_speedup_column() {
        let g = QueryGroupResult {
            group: "path-3".into(),
            queries: 3,
            edges: 1000,
            per_strategy: vec![("SingleLazy".into(), 0.01, 5.0), ("VF2".into(), 1.0, 5.0)],
        };
        let table = render_groups(&[g], &["SingleLazy", "VF2"]);
        assert!(table.contains("path-3"));
        assert!(table.contains("100x"));
    }

    #[test]
    fn per_query_profile_table_has_merged_total_row() {
        let mut a = ProfileCounters::new();
        a.edges_processed = 10;
        a.iso_searches = 4;
        a.complete_matches = 2;
        let mut b = ProfileCounters::new();
        b.edges_processed = 5;
        b.iso_searches = 1;
        b.complete_matches = 1;
        let table = render_per_query_profiles(&[("q0".into(), a), ("q1".into(), b)]);
        assert!(table.contains("| q0 |"));
        assert!(table.contains("| q1 |"));
        // The TOTAL row is the merge of both queries' counters.
        assert!(table.contains("| TOTAL | 15 | 5 |"));
    }

    #[test]
    fn histogram_renders_buckets() {
        let h = ascii_histogram(&[-3.0, -3.0, -1.0, 0.0], 4);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('#'));
        assert_eq!(ascii_histogram(&[], 3), "(no data)");
    }
}
