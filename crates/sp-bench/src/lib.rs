//! # sp-bench — experiment harness
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Section 6) on the synthetic datasets of `sp-datasets`:
//!
//! | experiment | paper artifact | harness entry point |
//! |---|---|---|
//! | `table1`   | Table 1 — dataset summary | [`experiments::table1`] |
//! | `fig6a/b/c` | Figure 6 — edge-type distribution over time | [`experiments::fig6`] |
//! | `fig7`     | Figure 7 — 2-edge-path distribution | [`experiments::fig7`] |
//! | `fig8`     | Figure 8 — 1- vs 2-edge decomposition of a path query | [`experiments::fig8`] |
//! | `fig9a-d`  | Figure 9 — runtime per strategy vs query size | [`experiments::fig9`] |
//! | `fig10`    | Figure 10 — Relative Selectivity distribution | [`experiments::fig10`] |
//! | `profile`  | §6.4 — time split between isomorphism and SJ-Tree update | [`experiments::profile`] |
//! | `strategy` | §6.5 — ξ-rule vs measured fastest strategy | [`experiments::strategy_selection`] |
//! | `costmodel`| Appendix A — analytic cost model vs measurement | [`experiments::costmodel`] |
//! | `multiquery` | Multi-query scaling: shared graph + edge-type dispatch vs N independent processors | [`experiments::multiquery`] |
//! | `sharing`  | Shared-leaf evaluation: one leaf search per shape per edge vs per-engine searches | [`experiments::sharing`] |
//! | `soak`     | Sustained-throughput soak under live telemetry: per-interval edges/s, latency percentiles, stage split | [`experiments::soak`] |
//!
//! The `reproduce` binary drives these functions and renders markdown tables
//! (the basis of `EXPERIMENTS.md`); the Criterion benches under `benches/`
//! cover the same code paths at a smaller scale for regression tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use runner::{
    MetricsOverhead, MultiQueryMeasurement, QueryGroupResult, RunMeasurement, Scale,
    SharedJoinMeasurement, SharingMeasurement, SoakInterval, SoakMeasurement, SoakReport,
};
