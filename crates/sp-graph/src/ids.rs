//! Strongly typed identifiers used throughout the workspace.
//!
//! All ids are thin newtypes over integers so that the matcher's hot path
//! works on `Copy` values and the compiler prevents mixing up vertex ids with
//! edge ids or type ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`crate::DynamicGraph`] or a query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u64);

/// Identifier of an edge. Edge ids are unique for the lifetime of a graph and
/// never reused, even after window expiry removes the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// Interned vertex type ("ip", "person", "article", ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexType(pub u32);

impl Default for VertexType {
    /// The default vertex type is the wildcard: vertices created without an
    /// explicit type accept any type constraint.
    fn default() -> Self {
        VertexType::ANY
    }
}

impl VertexType {
    /// Wildcard vertex type: matches any vertex type during isomorphism
    /// checks. The paper's netflow and LSBench queries leave vertex labels
    /// unconstrained ("all our query graphs are unlabeled"), which this
    /// sentinel models.
    pub const ANY: VertexType = VertexType(u32::MAX);

    /// Returns `true` if this is the wildcard type.
    #[inline]
    pub fn is_any(self) -> bool {
        self == Self::ANY
    }

    /// Returns `true` if a data vertex of type `other` satisfies this type
    /// constraint.
    #[inline]
    pub fn accepts(self, other: VertexType) -> bool {
        self.is_any() || self == other
    }
}

/// Interned edge type ("tcp", "likes", "article_mentions_person", ...).
///
/// In the paper the edge type is produced by a `Map()` function that can fold
/// arbitrary edge attributes (protocol, port class, ...) into a single integer;
/// the interning layer in [`crate::Schema`] plays that role here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeType(pub u32);

/// Logical timestamp attached to every streaming edge.
///
/// The unit is irrelevant to the algorithms (the paper uses seconds for CAIDA
/// and event counters for LSBench); only ordering and differences matter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// Direction of an edge relative to an anchor vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// The anchor vertex is the source of the edge.
    Outgoing,
    /// The anchor vertex is the destination of the edge.
    Incoming,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
        }
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_vertex_type_accepts_everything() {
        assert!(VertexType::ANY.accepts(VertexType(0)));
        assert!(VertexType::ANY.accepts(VertexType(12345)));
        assert!(VertexType::ANY.is_any());
    }

    #[test]
    fn concrete_vertex_type_only_accepts_itself() {
        let t = VertexType(3);
        assert!(t.accepts(VertexType(3)));
        assert!(!t.accepts(VertexType(4)));
        assert!(!t.is_any());
    }

    #[test]
    fn timestamp_saturating_since() {
        assert_eq!(Timestamp(10).saturating_since(Timestamp(4)), 6);
        assert_eq!(Timestamp(4).saturating_since(Timestamp(10)), 0);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Outgoing.reverse(), Direction::Incoming);
        assert_eq!(Direction::Incoming.reverse().reverse(), Direction::Incoming);
    }

    #[test]
    fn ids_are_ordered_by_inner_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(7) > EdgeId(3));
        assert!(Timestamp(5) <= Timestamp(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(EdgeId(9).to_string(), "e9");
        assert_eq!(Timestamp(1).to_string(), "t1");
    }
}
