//! Interning of vertex- and edge-type names.
//!
//! The paper's `Map()` function (Section 5.1) maps arbitrary edge attributes
//! (protocol, port class, relation name, ...) to a single integer edge type so
//! that distributional statistics can be collected cheaply. [`Schema`] is that
//! mapping: it owns two string interners, one for vertex types and one for
//! edge types, and is shared by the data graph, the query graphs, the
//! selectivity estimator and the dataset generators so that the same name
//! always resolves to the same id.

use crate::ids::{EdgeType, VertexType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional mapping between type names and compact integer ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    vertex_names: Vec<String>,
    vertex_ids: HashMap<String, VertexType>,
    edge_names: Vec<String>,
    edge_ids: HashMap<String, EdgeType>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex type name, returning its id. Idempotent.
    pub fn intern_vertex_type(&mut self, name: &str) -> VertexType {
        if let Some(&id) = self.vertex_ids.get(name) {
            return id;
        }
        let id = VertexType(self.vertex_names.len() as u32);
        self.vertex_names.push(name.to_owned());
        self.vertex_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns an edge type name, returning its id. Idempotent.
    pub fn intern_edge_type(&mut self, name: &str) -> EdgeType {
        if let Some(&id) = self.edge_ids.get(name) {
            return id;
        }
        let id = EdgeType(self.edge_names.len() as u32);
        self.edge_names.push(name.to_owned());
        self.edge_ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up a previously interned vertex type by name.
    pub fn vertex_type(&self, name: &str) -> Option<VertexType> {
        self.vertex_ids.get(name).copied()
    }

    /// Looks up a previously interned edge type by name.
    pub fn edge_type(&self, name: &str) -> Option<EdgeType> {
        self.edge_ids.get(name).copied()
    }

    /// Returns the name of a vertex type, or `"*"` for the wildcard.
    pub fn vertex_type_name(&self, ty: VertexType) -> &str {
        if ty.is_any() {
            return "*";
        }
        self.vertex_names
            .get(ty.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Returns the name of an edge type.
    pub fn edge_type_name(&self, ty: EdgeType) -> &str {
        self.edge_names
            .get(ty.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Number of distinct vertex types interned so far.
    pub fn num_vertex_types(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of distinct edge types interned so far.
    pub fn num_edge_types(&self) -> usize {
        self.edge_names.len()
    }

    /// Iterates over all interned edge types in id order.
    pub fn edge_types(&self) -> impl Iterator<Item = EdgeType> + '_ {
        (0..self.edge_names.len() as u32).map(EdgeType)
    }

    /// Iterates over all interned vertex types in id order.
    pub fn vertex_types(&self) -> impl Iterator<Item = VertexType> + '_ {
        (0..self.vertex_names.len() as u32).map(VertexType)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.intern_edge_type("tcp");
        let b = s.intern_edge_type("tcp");
        assert_eq!(a, b);
        assert_eq!(s.num_edge_types(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut s = Schema::new();
        let tcp = s.intern_edge_type("tcp");
        let udp = s.intern_edge_type("udp");
        assert_ne!(tcp, udp);
        assert_eq!(s.edge_type_name(tcp), "tcp");
        assert_eq!(s.edge_type_name(udp), "udp");
    }

    #[test]
    fn vertex_and_edge_namespaces_are_independent() {
        let mut s = Schema::new();
        let v = s.intern_vertex_type("ip");
        let e = s.intern_edge_type("ip");
        assert_eq!(v.0, 0);
        assert_eq!(e.0, 0);
        assert_eq!(s.vertex_type_name(v), "ip");
        assert_eq!(s.edge_type_name(e), "ip");
    }

    #[test]
    fn lookup_of_missing_name_returns_none() {
        let s = Schema::new();
        assert!(s.vertex_type("ip").is_none());
        assert!(s.edge_type("tcp").is_none());
    }

    #[test]
    fn wildcard_vertex_type_renders_as_star() {
        let s = Schema::new();
        assert_eq!(s.vertex_type_name(VertexType::ANY), "*");
    }

    #[test]
    fn unknown_ids_render_as_unknown() {
        let s = Schema::new();
        assert_eq!(s.edge_type_name(EdgeType(99)), "<unknown>");
        assert_eq!(s.vertex_type_name(VertexType(99)), "<unknown>");
    }

    #[test]
    fn iterators_cover_all_types() {
        let mut s = Schema::new();
        s.intern_edge_type("a");
        s.intern_edge_type("b");
        s.intern_vertex_type("x");
        assert_eq!(s.edge_types().count(), 2);
        assert_eq!(s.vertex_types().count(), 1);
    }

    #[test]
    fn schema_roundtrips_through_serde() {
        let mut s = Schema::new();
        s.intern_edge_type("tcp");
        s.intern_vertex_type("ip");
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back.edge_type("tcp"), s.edge_type("tcp"));
        assert_eq!(back.vertex_type("ip"), s.vertex_type("ip"));
    }
}
