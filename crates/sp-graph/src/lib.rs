//! # sp-graph — dynamic multi-relational graph store
//!
//! This crate provides the streaming-graph substrate used by the
//! StreamPattern engine (a reproduction of *"A Selectivity based approach to
//! Continuous Pattern Detection in Streaming Graphs"*, EDBT 2015).
//!
//! The data model follows Section 2 of the paper:
//!
//! * the graph is **directed**, **labeled** (typed vertices and typed edges)
//!   and allows **multi-edges** between the same vertex pair;
//! * every edge carries a **timestamp**; the graph is maintained as a sliding
//!   time window: given a window `tW`, edges older than `t_last - tW` are
//!   expired, where `t_last` is the timestamp of the newest edge;
//! * vertex and edge type names are interned through a [`Schema`] so that the
//!   hot path only ever compares small integer ids.
//!
//! The central type is [`DynamicGraph`]. A typical interaction:
//!
//! ```
//! use sp_graph::{DynamicGraph, Schema, Timestamp};
//!
//! let mut schema = Schema::new();
//! let ip = schema.intern_vertex_type("ip");
//! let tcp = schema.intern_edge_type("tcp");
//!
//! let mut g = DynamicGraph::new(schema);
//! let a = g.ensure_vertex_named("10.0.0.1", ip);
//! let b = g.ensure_vertex_named("10.0.0.2", ip);
//! let e = g.add_edge(a, b, tcp, Timestamp(42));
//! assert_eq!(g.edge(e).unwrap().edge_type, tcp);
//! assert_eq!(g.num_edges(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod event;
mod graph;
mod ids;
mod schema;
mod window;

pub use clock::monotonic_nanos;
pub use error::GraphError;
pub use event::EdgeEvent;
pub use graph::{DegreeStats, DynamicGraph, EdgeData, IncidentEdge, VertexData};
pub use ids::{Direction, EdgeId, EdgeType, Timestamp, VertexId, VertexType};
pub use schema::Schema;
pub use window::ExpiryQueue;

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
