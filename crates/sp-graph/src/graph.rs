//! The dynamic multi-relational graph.
//!
//! [`DynamicGraph`] is an in-memory, directed, typed multigraph optimized for
//! the access pattern of the continuous matcher:
//!
//! * edge insertion must be cheap (the stream calls it for every arriving
//!   edge);
//! * iteration over the edges incident to a single vertex must be cheap
//!   (the anchored isomorphism routines only ever look at local
//!   neighborhoods);
//! * expiring edges that fall out of the time window must be cheap and must
//!   report what was removed so that the engine can drop stale partial
//!   matches.

use crate::error::GraphError;
use crate::ids::{Direction, EdgeId, EdgeType, Timestamp, VertexId, VertexType};
use crate::schema::Schema;
use crate::window::ExpiryQueue;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Payload of a single directed, typed, timestamped edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeData {
    /// Unique id of the edge.
    pub id: EdgeId,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Interned edge type (output of the schema `Map()` function).
    pub edge_type: EdgeType,
    /// Arrival timestamp.
    pub timestamp: Timestamp,
}

impl EdgeData {
    /// Returns the endpoint opposite to `v`, or `None` if `v` is not an
    /// endpoint of this edge.
    pub fn other_endpoint(&self, v: VertexId) -> Option<VertexId> {
        if self.src == v {
            Some(self.dst)
        } else if self.dst == v {
            Some(self.src)
        } else {
            None
        }
    }

    /// Returns `true` if `v` is one of the endpoints.
    pub fn touches(&self, v: VertexId) -> bool {
        self.src == v || self.dst == v
    }
}

/// Per-vertex adjacency record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VertexData {
    /// Interned vertex type.
    pub vertex_type: VertexType,
    /// Ids of edges whose source is this vertex.
    pub out_edges: Vec<EdgeId>,
    /// Ids of edges whose destination is this vertex.
    pub in_edges: Vec<EdgeId>,
}

impl VertexData {
    /// Total degree (in + out) counting multi-edges.
    pub fn degree(&self) -> usize {
        self.out_edges.len() + self.in_edges.len()
    }
}

/// An edge described relative to an anchor vertex, as produced by
/// [`DynamicGraph::incident_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentEdge {
    /// Id of the edge.
    pub edge: EdgeId,
    /// The endpoint of the edge that is not the anchor (for self-loops this
    /// equals the anchor).
    pub neighbor: VertexId,
    /// Whether the anchor is the source (`Outgoing`) or destination
    /// (`Incoming`) of the edge.
    pub direction: Direction,
    /// Edge type.
    pub edge_type: EdgeType,
    /// Edge timestamp.
    pub timestamp: Timestamp,
}

/// Aggregate degree statistics used by the analytic cost model (Appendix A of
/// the paper, and Observation 3 in Section 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Mean total degree over all vertices.
    pub average_degree: f64,
    /// Maximum total degree observed.
    pub max_degree: usize,
    /// Mean degree per vertex type.
    pub per_type: HashMap<u32, f64>,
}

/// Directed, typed, timestamped multigraph maintained over a sliding time
/// window.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    schema: Schema,
    vertices: HashMap<VertexId, VertexData>,
    edges: HashMap<EdgeId, EdgeData>,
    names: HashMap<String, VertexId>,
    expiry: ExpiryQueue,
    window: Option<u64>,
    next_vertex_id: u64,
    next_edge_id: u64,
    latest_ts: Timestamp,
    total_edges_seen: u64,
}

impl DynamicGraph {
    /// Creates an empty graph with the given schema and no time window
    /// (edges are never expired).
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            vertices: HashMap::new(),
            edges: HashMap::new(),
            names: HashMap::new(),
            expiry: ExpiryQueue::new(),
            window: None,
            next_vertex_id: 0,
            next_edge_id: 0,
            latest_ts: Timestamp(0),
            total_edges_seen: 0,
        }
    }

    /// Creates an empty graph with a sliding window of width `window`: when a
    /// new edge with timestamp `t` arrives, edges older than `t - window` are
    /// removed by the next [`DynamicGraph::expire`] call.
    pub fn with_window(schema: Schema, window: u64) -> Self {
        let mut g = Self::new(schema);
        g.window = Some(window);
        g
    }

    /// Returns the shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (used by loaders that discover new types
    /// mid-stream).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Sets or clears the sliding window width.
    pub fn set_window(&mut self, window: Option<u64>) {
        self.window = window;
    }

    /// Returns the configured window width, if any.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// Allocates a fresh vertex with the given type.
    pub fn add_vertex(&mut self, vertex_type: VertexType) -> VertexId {
        let id = VertexId(self.next_vertex_id);
        self.next_vertex_id += 1;
        self.vertices.insert(
            id,
            VertexData {
                vertex_type,
                ..VertexData::default()
            },
        );
        id
    }

    /// Ensures a vertex with an externally chosen id exists, creating it with
    /// the given type when absent. Returns an error when the vertex exists
    /// with a different concrete type.
    pub fn ensure_vertex(&mut self, id: VertexId, vertex_type: VertexType) -> Result<VertexId> {
        if let Some(data) = self.vertices.get(&id) {
            if data.vertex_type != vertex_type && !vertex_type.is_any() {
                return Err(GraphError::VertexTypeConflict {
                    vertex: id,
                    existing: data.vertex_type.0,
                    requested: vertex_type.0,
                });
            }
            return Ok(id);
        }
        self.vertices.insert(
            id,
            VertexData {
                vertex_type,
                ..VertexData::default()
            },
        );
        self.next_vertex_id = self.next_vertex_id.max(id.0 + 1);
        Ok(id)
    }

    /// Looks up (or creates) a vertex by external name, e.g. an IP address or
    /// a user id string.
    pub fn ensure_vertex_named(&mut self, name: &str, vertex_type: VertexType) -> VertexId {
        if let Some(&id) = self.names.get(name) {
            // The vertex may have been dropped by window expiry while the
            // name mapping was retained; re-materialize it under the same id
            // so external names stay stable across the stream.
            self.vertices.entry(id).or_insert_with(|| VertexData {
                vertex_type,
                ..VertexData::default()
            });
            return id;
        }
        let id = self.add_vertex(vertex_type);
        self.names.insert(name.to_owned(), id);
        id
    }

    /// Resolves a previously registered vertex name.
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        self.names.get(name).copied()
    }

    /// Inserts a new directed edge and returns its id. Both endpoints must
    /// already exist (see [`DynamicGraph::ensure_vertex`] /
    /// [`DynamicGraph::ensure_vertex_named`] / [`DynamicGraph::add_vertex`]).
    ///
    /// The edge is *not* checked against the window here; call
    /// [`DynamicGraph::expire`] to slide the window forward.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        edge_type: EdgeType,
        timestamp: Timestamp,
    ) -> EdgeId {
        debug_assert!(self.vertices.contains_key(&src), "unknown source vertex");
        debug_assert!(
            self.vertices.contains_key(&dst),
            "unknown destination vertex"
        );
        let id = EdgeId(self.next_edge_id);
        self.next_edge_id += 1;
        let data = EdgeData {
            id,
            src,
            dst,
            edge_type,
            timestamp,
        };
        self.edges.insert(id, data);
        self.vertices
            .get_mut(&src)
            .expect("source vertex must exist")
            .out_edges
            .push(id);
        self.vertices
            .get_mut(&dst)
            .expect("destination vertex must exist")
            .in_edges
            .push(id);
        self.expiry.push(id, timestamp);
        if timestamp > self.latest_ts {
            self.latest_ts = timestamp;
        }
        self.total_edges_seen += 1;
        id
    }

    /// Checked variant of [`DynamicGraph::add_edge`] that verifies both
    /// endpoints exist and that the edge is not already outside the window.
    pub fn try_add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        edge_type: EdgeType,
        timestamp: Timestamp,
    ) -> Result<EdgeId> {
        if !self.vertices.contains_key(&src) {
            return Err(GraphError::UnknownVertex(src));
        }
        if !self.vertices.contains_key(&dst) {
            return Err(GraphError::UnknownVertex(dst));
        }
        if let Some(w) = self.window {
            let start = self.latest_ts.0.saturating_sub(w);
            if timestamp.0 < start {
                return Err(GraphError::StaleEdge {
                    timestamp: timestamp.0,
                    window_start: start,
                });
            }
        }
        Ok(self.add_edge(src, dst, edge_type, timestamp))
    }

    /// Slides the window forward to the newest edge seen so far, removing all
    /// edges older than `latest - window`. Returns the removed edges.
    ///
    /// Vertices whose last incident edge is removed are also removed
    /// (mirroring `REMOVE-SUBGRAPH`'s "disconnected vertex" rule).
    pub fn expire(&mut self) -> Vec<EdgeData> {
        let Some(w) = self.window else {
            return Vec::new();
        };
        let cutoff = Timestamp(self.latest_ts.0.saturating_sub(w));
        let expired = self.expiry.expire_older_than(cutoff);
        let mut removed = Vec::with_capacity(expired.len());
        for (edge_id, _) in expired {
            if let Some(data) = self.detach_edge(edge_id) {
                removed.push(data);
            }
        }
        removed
    }

    /// Removes a single edge from the adjacency structures, dropping now
    /// isolated endpoints. Returns the removed edge data.
    fn detach_edge(&mut self, edge_id: EdgeId) -> Option<EdgeData> {
        let data = self.edges.remove(&edge_id)?;
        for (vertex, incoming) in [(data.src, false), (data.dst, true)] {
            let remove_vertex = if let Some(vd) = self.vertices.get_mut(&vertex) {
                let list = if incoming {
                    &mut vd.in_edges
                } else {
                    &mut vd.out_edges
                };
                if let Some(pos) = list.iter().position(|&e| e == edge_id) {
                    list.swap_remove(pos);
                }
                vd.degree() == 0
            } else {
                false
            };
            if remove_vertex {
                self.vertices.remove(&vertex);
            }
        }
        Some(data)
    }

    /// Explicitly removes an edge (outside of window expiry).
    pub fn remove_edge(&mut self, edge_id: EdgeId) -> Result<EdgeData> {
        let ts = self
            .edges
            .get(&edge_id)
            .map(|e| e.timestamp)
            .ok_or(GraphError::UnknownEdge(edge_id))?;
        self.expiry.remove(edge_id, ts);
        self.detach_edge(edge_id)
            .ok_or(GraphError::UnknownEdge(edge_id))
    }

    /// Returns edge data by id, `None` if unknown or expired.
    pub fn edge(&self, id: EdgeId) -> Option<&EdgeData> {
        self.edges.get(&id)
    }

    /// Returns vertex data by id.
    pub fn vertex(&self, id: VertexId) -> Option<&VertexData> {
        self.vertices.get(&id)
    }

    /// Returns the type of a vertex.
    pub fn vertex_type(&self, id: VertexId) -> Option<VertexType> {
        self.vertices.get(&id).map(|v| v.vertex_type)
    }

    /// Returns `true` if the vertex is present.
    pub fn contains_vertex(&self, id: VertexId) -> bool {
        self.vertices.contains_key(&id)
    }

    /// Returns `true` if the edge is present (not expired).
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.contains_key(&id)
    }

    /// Number of live vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total number of edges ever inserted (including expired ones).
    pub fn total_edges_seen(&self) -> u64 {
        self.total_edges_seen
    }

    /// Timestamp of the newest edge inserted so far.
    pub fn latest_timestamp(&self) -> Timestamp {
        self.latest_ts
    }

    /// Iterates over all live vertices.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &VertexData)> + '_ {
        self.vertices.iter().map(|(&id, data)| (id, data))
    }

    /// Iterates over all live edges.
    pub fn edges(&self) -> impl Iterator<Item = &EdgeData> + '_ {
        self.edges.values()
    }

    /// Total degree of a vertex (0 for unknown vertices).
    pub fn degree(&self, v: VertexId) -> usize {
        self.vertices.get(&v).map(VertexData::degree).unwrap_or(0)
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.vertices
            .get(&v)
            .map(|d| d.out_edges.len())
            .unwrap_or(0)
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.vertices.get(&v).map(|d| d.in_edges.len()).unwrap_or(0)
    }

    /// Iterates over every edge incident to `v` (both directions), yielding
    /// the edge together with the opposite endpoint and the direction of the
    /// edge relative to `v`.
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = IncidentEdge> + '_ {
        let data = self.vertices.get(&v);
        let out = data.map(|d| d.out_edges.as_slice()).unwrap_or(&[]);
        let inc = data.map(|d| d.in_edges.as_slice()).unwrap_or(&[]);
        let out_iter = out.iter().filter_map(move |id| {
            self.edges.get(id).map(|e| IncidentEdge {
                edge: e.id,
                neighbor: e.dst,
                direction: Direction::Outgoing,
                edge_type: e.edge_type,
                timestamp: e.timestamp,
            })
        });
        let in_iter = inc.iter().filter_map(move |id| {
            self.edges.get(id).map(|e| IncidentEdge {
                edge: e.id,
                neighbor: e.src,
                direction: Direction::Incoming,
                edge_type: e.edge_type,
                timestamp: e.timestamp,
            })
        });
        out_iter.chain(in_iter)
    }

    /// Iterates over the outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = &EdgeData> + '_ {
        self.vertices
            .get(&v)
            .map(|d| d.out_edges.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |id| self.edges.get(id))
    }

    /// Iterates over the incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = &EdgeData> + '_ {
        self.vertices
            .get(&v)
            .map(|d| d.in_edges.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter_map(move |id| self.edges.get(id))
    }

    /// Iterates over all edges from `src` to `dst` (there may be several in a
    /// multigraph).
    pub fn edges_between(
        &self,
        src: VertexId,
        dst: VertexId,
    ) -> impl Iterator<Item = &EdgeData> + '_ {
        self.out_edges(src).filter(move |e| e.dst == dst)
    }

    /// Computes aggregate degree statistics over the live graph.
    pub fn degree_stats(&self) -> DegreeStats {
        let mut total = 0usize;
        let mut max = 0usize;
        let mut per_type_sum: HashMap<u32, (usize, usize)> = HashMap::new();
        for data in self.vertices.values() {
            let d = data.degree();
            total += d;
            max = max.max(d);
            let entry = per_type_sum.entry(data.vertex_type.0).or_insert((0, 0));
            entry.0 += d;
            entry.1 += 1;
        }
        let n = self.vertices.len().max(1);
        let per_type = per_type_sum
            .into_iter()
            .map(|(ty, (sum, count))| (ty, sum as f64 / count.max(1) as f64))
            .collect();
        DegreeStats {
            average_degree: total as f64 / n as f64,
            max_degree: max,
            per_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> (Schema, VertexType, EdgeType, EdgeType) {
        let mut s = Schema::new();
        let ip = s.intern_vertex_type("ip");
        let tcp = s.intern_edge_type("tcp");
        let udp = s.intern_edge_type("udp");
        (s, ip, tcp, udp)
    }

    #[test]
    fn add_edge_updates_adjacency_and_counts() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        let e = g.add_edge(a, b, tcp, Timestamp(1));
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 1);
        assert_eq!(g.edge(e).unwrap().src, a);
        assert_eq!(g.edge(e).unwrap().dst, b);
    }

    #[test]
    fn multi_edges_between_same_pair_are_kept() {
        let (s, ip, tcp, udp) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(a, b, tcp, Timestamp(2));
        g.add_edge(a, b, udp, Timestamp(3));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edges_between(a, b).count(), 3);
        assert_eq!(
            g.edges_between(a, b).filter(|e| e.edge_type == tcp).count(),
            2
        );
    }

    #[test]
    fn incident_edges_reports_both_directions() {
        let (s, ip, tcp, udp) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        let c = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(c, b, udp, Timestamp(2));
        let incident: Vec<_> = g.incident_edges(b).collect();
        assert_eq!(incident.len(), 2);
        assert!(incident
            .iter()
            .any(|i| i.direction == Direction::Incoming && i.neighbor == a));
        assert!(incident
            .iter()
            .any(|i| i.direction == Direction::Incoming && i.neighbor == c));
        assert_eq!(g.incident_edges(a).count(), 1);
        assert_eq!(
            g.incident_edges(a).next().unwrap().direction,
            Direction::Outgoing
        );
    }

    #[test]
    fn window_expiry_removes_old_edges_and_isolated_vertices() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::with_window(s, 10);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        let c = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(b, c, tcp, Timestamp(20));
        let removed = g.expire();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].src, a);
        assert_eq!(g.num_edges(), 1);
        // a became isolated and is dropped; b and c stay.
        assert!(!g.contains_vertex(a));
        assert!(g.contains_vertex(b));
        assert!(g.contains_vertex(c));
    }

    #[test]
    fn expire_without_window_is_a_noop() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(a, b, tcp, Timestamp(1_000_000));
        assert!(g.expire().is_empty());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn try_add_edge_rejects_unknown_vertices_and_stale_edges() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::with_window(s, 5);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        assert!(matches!(
            g.try_add_edge(VertexId(999), b, tcp, Timestamp(1)),
            Err(GraphError::UnknownVertex(_))
        ));
        g.add_edge(a, b, tcp, Timestamp(100));
        assert!(matches!(
            g.try_add_edge(a, b, tcp, Timestamp(10)),
            Err(GraphError::StaleEdge { .. })
        ));
        assert!(g.try_add_edge(a, b, tcp, Timestamp(99)).is_ok());
    }

    #[test]
    fn ensure_vertex_conflicting_type_is_an_error() {
        let mut s = Schema::new();
        let ip = s.intern_vertex_type("ip");
        let person = s.intern_vertex_type("person");
        let mut g = DynamicGraph::new(s);
        g.ensure_vertex(VertexId(7), ip).unwrap();
        assert!(g.ensure_vertex(VertexId(7), ip).is_ok());
        assert!(matches!(
            g.ensure_vertex(VertexId(7), person),
            Err(GraphError::VertexTypeConflict { .. })
        ));
        // wildcard re-ensure is allowed
        assert!(g.ensure_vertex(VertexId(7), VertexType::ANY).is_ok());
    }

    #[test]
    fn named_vertices_are_deduplicated() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.ensure_vertex_named("10.0.0.1", ip);
        let a2 = g.ensure_vertex_named("10.0.0.1", ip);
        let b = g.ensure_vertex_named("10.0.0.2", ip);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(g.vertex_by_name("10.0.0.1"), Some(a));
        assert_eq!(g.vertex_by_name("10.0.0.9"), None);
        g.add_edge(a, b, tcp, Timestamp(1));
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn remove_edge_detaches_and_errors_on_double_remove() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::new(s);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        let e = g.add_edge(a, b, tcp, Timestamp(1));
        let data = g.remove_edge(e).unwrap();
        assert_eq!(data.id, e);
        assert_eq!(g.num_edges(), 0);
        assert!(matches!(g.remove_edge(e), Err(GraphError::UnknownEdge(_))));
    }

    #[test]
    fn degree_stats_average_and_max() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::new(s);
        let hub = g.add_vertex(ip);
        for _ in 0..4 {
            let leaf = g.add_vertex(ip);
            g.add_edge(hub, leaf, tcp, Timestamp(1));
        }
        let stats = g.degree_stats();
        assert_eq!(stats.max_degree, 4);
        // 5 vertices, total degree 8.
        assert!((stats.average_degree - 1.6).abs() < 1e-9);
        assert_eq!(stats.per_type.len(), 1);
    }

    #[test]
    fn other_endpoint_and_touches() {
        let e = EdgeData {
            id: EdgeId(0),
            src: VertexId(1),
            dst: VertexId(2),
            edge_type: EdgeType(0),
            timestamp: Timestamp(0),
        };
        assert_eq!(e.other_endpoint(VertexId(1)), Some(VertexId(2)));
        assert_eq!(e.other_endpoint(VertexId(2)), Some(VertexId(1)));
        assert_eq!(e.other_endpoint(VertexId(3)), None);
        assert!(e.touches(VertexId(1)));
        assert!(!e.touches(VertexId(3)));
    }

    #[test]
    fn total_edges_seen_counts_expired_edges() {
        let (s, ip, tcp, _) = schema();
        let mut g = DynamicGraph::with_window(s, 1);
        let a = g.add_vertex(ip);
        let b = g.add_vertex(ip);
        g.add_edge(a, b, tcp, Timestamp(1));
        g.add_edge(a, b, tcp, Timestamp(100));
        g.expire();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.total_edges_seen(), 2);
    }
}
