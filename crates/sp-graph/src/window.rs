//! Sliding time-window bookkeeping.
//!
//! The paper maintains the data graph "as a window in time": given a window
//! `tW`, edges are deleted once they become older than `t_last - tW`, where
//! `t_last` is the timestamp of the newest edge (Section 2). [`ExpiryQueue`]
//! tracks edge arrival in timestamp order and yields the edges that fall out
//! of the window as new edges arrive.
//!
//! Streaming edges are *mostly* ordered by timestamp but real traces contain
//! small reorderings, so the queue orders by `(timestamp, edge id)` rather
//! than assuming monotone arrival. It is a Vec-backed min-heap, not an
//! ordered map: a B-tree splits and frees nodes as the window boundary
//! rolls through it, putting an allocation on the ingest path every few
//! edges, while the heap's backing storage is reused once warmed up — the
//! steady-state `add_edge` path allocates nothing.

use crate::ids::{EdgeId, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tracks live edges in timestamp order and computes which edges expire when
/// the window slides forward.
#[derive(Debug, Clone, Default)]
pub struct ExpiryQueue {
    live: BinaryHeap<Reverse<(Timestamp, EdgeId)>>,
}

impl ExpiryQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new live edge.
    pub fn push(&mut self, edge: EdgeId, ts: Timestamp) {
        self.live.push(Reverse((ts, edge)));
    }

    /// Removes an edge that is being deleted for a reason other than expiry
    /// (the explicit-deletion path — O(n), never on the streaming path).
    pub fn remove(&mut self, edge: EdgeId, ts: Timestamp) -> bool {
        let before = self.live.len();
        self.live.retain(|&Reverse(entry)| entry != (ts, edge));
        before != self.live.len()
    }

    /// Pops every edge strictly older than `cutoff` and returns them in
    /// timestamp order.
    pub fn expire_older_than(&mut self, cutoff: Timestamp) -> Vec<(EdgeId, Timestamp)> {
        let mut expired = Vec::new();
        while let Some(&Reverse((ts, edge))) = self.live.peek() {
            if ts < cutoff {
                self.live.pop();
                expired.push((edge, ts));
            } else {
                break;
            }
        }
        expired
    }

    /// Number of live (non-expired) edges tracked.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` when no live edges are tracked.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Timestamp of the oldest live edge, if any.
    pub fn oldest(&self) -> Option<Timestamp> {
        self.live.peek().map(|&Reverse((ts, _))| ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_only_strictly_older_edges() {
        let mut q = ExpiryQueue::new();
        q.push(EdgeId(1), Timestamp(10));
        q.push(EdgeId(2), Timestamp(20));
        q.push(EdgeId(3), Timestamp(30));
        let expired = q.expire_older_than(Timestamp(20));
        assert_eq!(expired, vec![(EdgeId(1), Timestamp(10))]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn expiry_is_in_timestamp_order_even_with_out_of_order_insertion() {
        let mut q = ExpiryQueue::new();
        q.push(EdgeId(5), Timestamp(50));
        q.push(EdgeId(1), Timestamp(10));
        q.push(EdgeId(3), Timestamp(30));
        let expired = q.expire_older_than(Timestamp(100));
        let ts: Vec<u64> = expired.iter().map(|(_, t)| t.0).collect();
        assert_eq!(ts, vec![10, 30, 50]);
        assert!(q.is_empty());
    }

    #[test]
    fn remove_drops_a_specific_edge() {
        let mut q = ExpiryQueue::new();
        q.push(EdgeId(1), Timestamp(10));
        assert!(q.remove(EdgeId(1), Timestamp(10)));
        assert!(!q.remove(EdgeId(1), Timestamp(10)));
        assert!(q.is_empty());
    }

    #[test]
    fn oldest_reports_minimum_timestamp() {
        let mut q = ExpiryQueue::new();
        assert_eq!(q.oldest(), None);
        q.push(EdgeId(2), Timestamp(25));
        q.push(EdgeId(1), Timestamp(5));
        assert_eq!(q.oldest(), Some(Timestamp(5)));
    }

    #[test]
    fn same_timestamp_edges_are_distinguished_by_id() {
        let mut q = ExpiryQueue::new();
        q.push(EdgeId(1), Timestamp(10));
        q.push(EdgeId(2), Timestamp(10));
        assert_eq!(q.len(), 2);
        let expired = q.expire_older_than(Timestamp(11));
        assert_eq!(expired.len(), 2);
    }
}
