//! External stream events.
//!
//! Dataset loaders and synthetic generators describe the stream as a sequence
//! of [`EdgeEvent`]s using *external* numeric vertex ids (an IP address index,
//! a user id, ...). The engine maps external ids onto graph vertices on
//! ingestion; using plain integers keeps generators independent of the
//! graph's internal id allocation.

use crate::ids::{EdgeType, Timestamp, VertexType};
use serde::{Deserialize, Serialize};

/// One edge arriving on the stream, described with external vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// External id of the source vertex.
    pub src: u64,
    /// External id of the destination vertex.
    pub dst: u64,
    /// Type of the source vertex.
    pub src_type: VertexType,
    /// Type of the destination vertex.
    pub dst_type: VertexType,
    /// Edge type (output of the dataset's `Map()` function).
    pub edge_type: EdgeType,
    /// Event timestamp.
    pub timestamp: Timestamp,
    /// Arrival instant on the process monotonic clock
    /// ([`monotonic_nanos`](crate::monotonic_nanos)), or 0 when unstamped.
    /// Set by the ingest path when metrics are enabled so detection latency
    /// can be measured per match; never serialized (stream files carry only
    /// logical time).
    #[serde(skip)]
    pub arrival_ns: u64,
}

impl EdgeEvent {
    /// Convenience constructor for homogeneous-vertex streams (e.g. netflow,
    /// where every vertex is an "ip").
    pub fn homogeneous(
        src: u64,
        dst: u64,
        vertex_type: VertexType,
        edge_type: EdgeType,
        timestamp: Timestamp,
    ) -> Self {
        Self {
            src,
            dst,
            src_type: vertex_type,
            dst_type: vertex_type,
            edge_type,
            timestamp,
            arrival_ns: 0,
        }
    }

    /// Copy of this event stamped with the current monotonic-clock instant.
    #[inline]
    pub fn stamped_now(mut self) -> Self {
        self.arrival_ns = crate::clock::monotonic_nanos();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_constructor_sets_both_types() {
        let e = EdgeEvent::homogeneous(1, 2, VertexType(3), EdgeType(4), Timestamp(5));
        assert_eq!(e.src_type, VertexType(3));
        assert_eq!(e.dst_type, VertexType(3));
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.edge_type, EdgeType(4));
        assert_eq!(e.timestamp, Timestamp(5));
    }

    #[test]
    fn event_roundtrips_through_serde() {
        let e = EdgeEvent::homogeneous(7, 8, VertexType(0), EdgeType(1), Timestamp(2));
        let json = serde_json::to_string(&e).unwrap();
        let back: EdgeEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn arrival_stamp_is_transient() {
        let e = EdgeEvent::homogeneous(7, 8, VertexType(0), EdgeType(1), Timestamp(2));
        // Exercise the clock once so a subsequent stamp is non-zero.
        let _ = crate::clock::monotonic_nanos();
        let stamped = e.stamped_now();
        assert!(stamped.arrival_ns > 0);
        // The stamp never reaches serialized streams, and deserialized
        // events come back unstamped.
        let json = serde_json::to_string(&stamped).unwrap();
        assert!(!json.contains("arrival_ns"));
        let back: EdgeEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.arrival_ns, 0);
        assert_eq!(back, e);
    }
}
