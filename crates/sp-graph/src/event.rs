//! External stream events.
//!
//! Dataset loaders and synthetic generators describe the stream as a sequence
//! of [`EdgeEvent`]s using *external* numeric vertex ids (an IP address index,
//! a user id, ...). The engine maps external ids onto graph vertices on
//! ingestion; using plain integers keeps generators independent of the
//! graph's internal id allocation.

use crate::ids::{EdgeType, Timestamp, VertexType};
use serde::{Deserialize, Serialize};

/// One edge arriving on the stream, described with external vertex ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// External id of the source vertex.
    pub src: u64,
    /// External id of the destination vertex.
    pub dst: u64,
    /// Type of the source vertex.
    pub src_type: VertexType,
    /// Type of the destination vertex.
    pub dst_type: VertexType,
    /// Edge type (output of the dataset's `Map()` function).
    pub edge_type: EdgeType,
    /// Event timestamp.
    pub timestamp: Timestamp,
}

impl EdgeEvent {
    /// Convenience constructor for homogeneous-vertex streams (e.g. netflow,
    /// where every vertex is an "ip").
    pub fn homogeneous(
        src: u64,
        dst: u64,
        vertex_type: VertexType,
        edge_type: EdgeType,
        timestamp: Timestamp,
    ) -> Self {
        Self {
            src,
            dst,
            src_type: vertex_type,
            dst_type: vertex_type,
            edge_type,
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_constructor_sets_both_types() {
        let e = EdgeEvent::homogeneous(1, 2, VertexType(3), EdgeType(4), Timestamp(5));
        assert_eq!(e.src_type, VertexType(3));
        assert_eq!(e.dst_type, VertexType(3));
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.edge_type, EdgeType(4));
        assert_eq!(e.timestamp, Timestamp(5));
    }

    #[test]
    fn event_roundtrips_through_serde() {
        let e = EdgeEvent::homogeneous(7, 8, VertexType(0), EdgeType(1), Timestamp(2));
        let json = serde_json::to_string(&e).unwrap();
        let back: EdgeEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
