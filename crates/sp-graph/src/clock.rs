//! Process-wide monotonic clock for arrival timestamps.
//!
//! Detection latency (edge arrival → match emission) needs one time base
//! that is valid across threads: the facade stamps events on ingest and the
//! runtime workers read the clock again at emission, so both sides must
//! measure against the same epoch. [`monotonic_nanos`] provides that —
//! nanoseconds since the first call in this process, from the OS monotonic
//! clock (never affected by wall-clock adjustments).
//!
//! The stream's own [`Timestamp`](crate::Timestamp)s are *logical* dataset
//! time and keep driving window expiry; arrival nanos are purely an
//! observability axis alongside them.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed on the monotonic clock since the first call in this
/// process. The first call returns 0; the value is comparable across
/// threads. Saturates at `u64::MAX` (after ~584 years).
#[inline]
pub fn monotonic_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_shared_across_threads() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
        let c = std::thread::spawn(monotonic_nanos).join().unwrap();
        assert!(c >= a);
    }
}
